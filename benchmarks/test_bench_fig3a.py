"""Fig. 3a — throughput of the bare-metal Linux router (pos).

Paper's series: offered rate vs achieved rate for 64 B and 1500 B
frames on real hardware.  Shape to reproduce:

* 64 B saturates at ~1.75 Mpps (CPU-bound),
* 1500 B saturates at ~0.82 Mpps (10 Gbit/s line-rate-bound),
* below the respective ceiling both curves follow offered = achieved.
"""

from __future__ import annotations

import pytest

from repro.casestudy import POS_RATES
from repro.evaluation.plotter import plot_experiment

from conftest import print_series, run_and_load, sweep, throughput_rows


@pytest.fixture(scope="module")
def fig3a_results(tmp_path_factory):
    return run_and_load(
        "pos",
        tmp_path_factory.mktemp("fig3a"),
        rates=sweep(POS_RATES, keep_every=3),
        sizes=(64, 1500),
        duration_s=0.05,
        interval_s=0.01,
    )


def test_bench_fig3a(benchmark, fig3a_results, tmp_path):
    rows = benchmark.pedantic(
        lambda: throughput_rows(fig3a_results), rounds=1, iterations=1
    )
    print_series("Fig. 3a: pos (bare-metal Linux router)", rows)

    series64 = rows[64]
    series1500 = rows[1500]

    # 64 B: linear region then a CPU ceiling near 1.75 Mpps.
    peak64 = max(rx for __, rx in series64)
    assert peak64 == pytest.approx(1.75, rel=0.05)
    for offered, rx in series64:
        if offered <= 1.5:
            assert rx == pytest.approx(offered, rel=0.02)

    # 1500 B: linear region then the 10 G line-rate ceiling near 0.82.
    peak1500 = max(rx for __, rx in series1500)
    assert peak1500 == pytest.approx(0.822, rel=0.05)
    for offered, rx in series1500:
        if offered <= 0.7:
            assert rx == pytest.approx(offered, rel=0.02)

    # The crossover: the 64 B ceiling is ~2.1x the 1500 B ceiling.
    assert 1.8 <= peak64 / peak1500 <= 2.6

    # And the paper's figure regenerates from the same data.
    written = plot_experiment(
        fig3a_results, output_dir=str(tmp_path / "figures"), formats=("svg",)
    )
    assert any(path.endswith("throughput.svg") for path in written)
