"""Distributed execution plane — fan-out throughput and crash overhead.

Measures (1) wall-clock for a thinned Fig. 3a sweep executed serially
vs on the distributed plane with 4 pipe-transport node agents (real
subprocess fan-out), and (2) the wall-clock cost of surviving a seeded
crash schedule — an agent SIGKILL plus a dropped result envelope — on
the deterministic loopback transport, relative to the same fleet with
no chaos.  Both land in ``benchmarks/BENCH_dist.json``.

Correctness rides along, because it is the plane's whole claim: the
parsed throughput series must be *identical* — serial vs fan-out, and
chaos vs fault-free — not merely close.
"""

from __future__ import annotations

import json
import os
import time

from repro.casestudy import POS_RATES, run_case_study
from repro.evaluation.loader import load_experiment
from repro.faults.plan import FaultPlan, FaultSpec

from conftest import sweep, throughput_rows

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_dist.json")

SWEEP = dict(
    rates=sweep(POS_RATES, keep_every=3),
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.01,
)

CHAOS = FaultPlan([
    FaultSpec(kind="agent", operation="kill", node="agent-00", times=1),
    FaultSpec(kind="transport", operation="drop:result", times=1),
])


def _update_bench_json(section, payload):
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timed_sweep(root, **kwargs):
    start = time.perf_counter()
    handle = run_case_study("pos", str(root), **SWEEP, **kwargs)
    elapsed = time.perf_counter() - start
    assert handle.failed_runs == 0
    return elapsed, load_experiment(handle.result_path)


def test_bench_dist_fanout_speedup(tmp_path_factory):
    serial_s, serial = _timed_sweep(tmp_path_factory.mktemp("serial"))
    fanout_s, fanout = _timed_sweep(
        tmp_path_factory.mktemp("fanout"), agents=4, transport="pipe",
    )

    # The plane's contract: fan-out changes wall-clock, never results.
    rows = throughput_rows(serial)
    assert throughput_rows(fanout) == rows

    cpu_count = os.cpu_count() or 1
    speedup = serial_s / fanout_s
    runs = len(SWEEP["rates"]) * len(SWEEP["sizes"])
    print(f"\n=== dist plane: thinned Fig. 3a sweep ({runs} runs) ===")
    print(f"serial: {serial_s:6.2f} s   agents=4 (pipe): {fanout_s:6.2f} s   "
          f"speedup: {speedup:.2f}x   (cpus: {cpu_count})")
    _update_bench_json("fanout", {
        "sweep_runs": runs,
        "serial_s": round(serial_s, 3),
        "agents4_pipe_s": round(fanout_s, 3),
        "speedup": round(speedup, 3),
        "cpu_count": cpu_count,
    })

    # Agent processes cost a spawn and a pipe round-trip per shard, so
    # the floor sits below the in-process pool's; it still must beat
    # serial outright on any box with cores to spare.
    floor = 1.5 if cpu_count >= 4 else 1.0
    assert speedup >= floor, (
        f"agents=4 speedup {speedup:.2f}x below {floor}x on {cpu_count} cpus"
    )


def test_bench_redispatch_overhead(tmp_path_factory):
    clean_s, clean = _timed_sweep(
        tmp_path_factory.mktemp("clean"), agents=2,
    )
    chaos_s, chaos = _timed_sweep(
        tmp_path_factory.mktemp("chaos"), agents=2, dist_fault_plan=CHAOS,
    )

    # Byte-level determinism under crashes, reduced to the series that
    # feed the paper's figures: chaos must change nothing.
    rows = throughput_rows(clean)
    assert throughput_rows(chaos) == rows

    overhead = chaos_s / clean_s
    print("\n=== dist plane: seeded crash schedule overhead ===")
    print(f"clean: {clean_s:6.2f} s   chaos: {chaos_s:6.2f} s   "
          f"overhead: {overhead:.2f}x")
    _update_bench_json("redispatch_overhead", {
        "clean_s": round(clean_s, 3),
        "chaos_s": round(chaos_s, 3),
        "overhead": round(overhead, 3),
        "schedule": ["agent-00 kill x1", "drop:result x1"],
    })

    # Re-executing one orphaned shard and re-sending one result must
    # stay in the same ballpark — re-dispatch is surgical, not a restart.
    assert overhead <= 3.0, (
        f"crash schedule cost {overhead:.2f}x the fault-free fleet"
    )
