"""Appendix A — the 60-run cross product and the serialized schedule.

"pos calculates the cross product, which results in a total of 60
individual measurements … pos automatically queues one run after
another … The entire experiment runs for approximately 3 h."

This bench expands the appendix's loop file, checks the run count and
ordering, and reconstructs the serialized schedule length from the
per-run duration implied by the paper's 3 h figure.
"""

from __future__ import annotations

import pytest

from repro.casestudy import VPOS_RATES, build_case_study_experiment
from repro.core.variables import expand_loop_variables


def test_bench_crossproduct(benchmark):
    loop = {"pkt_sz": [64, 1500], "pkt_rate": VPOS_RATES}
    runs = benchmark.pedantic(
        lambda: expand_loop_variables(loop), rounds=1, iterations=1
    )
    print("\n=== Appendix A: measurement-run cross product ===")
    print(f"loop variables: pkt_sz x{len(loop['pkt_sz'])}, "
          f"pkt_rate x{len(loop['pkt_rate'])}")
    print(f"runs: {len(runs)} (paper: 60)")
    assert len(runs) == 60

    # Full coverage and deterministic order.
    combinations = {(run["pkt_sz"], run["pkt_rate"]) for run in runs}
    assert len(combinations) == 60
    assert runs[0] == {"pkt_sz": 64, "pkt_rate": 10_000}
    assert runs[-1] == {"pkt_sz": 1500, "pkt_rate": 300_000}

    # Serialized schedule: one run after another; the 3 h figure implies
    # ~3 minutes per run including setup amortization.
    per_run_s = 3 * 3600 / 60
    print(f"implied per-run duration: {per_run_s / 60:.0f} min")
    experiment = build_case_study_experiment("vpos")
    assert experiment.variables.run_count() == 60
    assert experiment.duration_s == pytest.approx(3 * 3600)

    # Exponential growth warning from the paper: adding one more 10-value
    # loop variable would 10x the schedule.
    bigger = dict(loop)
    bigger["burst"] = list(range(10))
    assert len(expand_loop_variables(bigger)) == 600
