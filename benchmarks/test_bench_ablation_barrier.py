"""Ablation — setup-phase synchronization barrier (R4).

Design choice under test: "pos synchronizes the end of the setup phase
between the two hosts, i.e., the experiment continues only after all
the experiment hosts have completed their setup."  Ablating the
barrier lets the measurement start against a half-configured DuT: the
early part of the run measures a black hole, corrupting the result
without any error being raised.
"""

from __future__ import annotations

import pytest

from repro.testbed.scenarios import build_pos_pair


def run_with_setup_delay(synchronized: bool) -> float:
    """The DuT finishes its setup 10 ms *after* the LoadGen.

    With the barrier, the measurement starts after both are ready; the
    ablation starts it as soon as the LoadGen is ready.  Returns the
    measured loss fraction.
    """
    setup = build_pos_pair()
    for node in setup.nodes.values():
        node.set_image(setup.images.resolve("debian-buster"))
        node.reset()
    lg = setup.nodes["riga"]
    lg.execute("ip link set eno1 up")
    lg.execute("ip link set eno2 up")

    dut = setup.nodes["tartu"]
    dut_ready_at = 0.010

    def finish_dut_setup():
        for command in (
            "sysctl -w net.ipv4.ip_forward=1",
            "ip link set eno1 up",
            "ip link set eno2 up",
        ):
            assert dut.execute(command).ok

    setup.sim.schedule(dut_ready_at, finish_dut_setup)
    start_at = dut_ready_at if synchronized else 0.0
    job = None

    def start_measurement():
        nonlocal job
        job = setup.loadgen.start(
            rate_pps=100_000, frame_size=64, duration_s=0.05
        )

    setup.sim.schedule(start_at, start_measurement)
    setup.sim.run(until=0.2)
    return job.loss_fraction


def test_bench_ablation_barrier(benchmark):
    with_barrier, without_barrier = benchmark.pedantic(
        lambda: (run_with_setup_delay(True), run_with_setup_delay(False)),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: setup-phase barrier ===")
    print(f"with barrier:    loss = {with_barrier * 100:5.2f}% "
          "(measurement starts after all hosts are ready)")
    print(f"without barrier: loss = {without_barrier * 100:5.2f}% "
          "(early packets hit a half-configured DuT)")
    assert with_barrier < 0.01
    # 10 ms of a 50 ms run against a dead DuT: ~20% of packets vanish.
    assert without_barrier == pytest.approx(0.2, abs=0.05)
