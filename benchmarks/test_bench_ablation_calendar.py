"""Ablation — calendar-enforced temporal isolation.

Design choice under test: the booking calendar guarantees a node is
never part of two experiments at once.  Ablating it (naive allocation
that ignores bookings) lets a second user's traffic share the DuT
mid-experiment, visibly distorting the first user's measurement.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.errors import AllocationError
from repro.netsim.packet import Packet
from repro.testbed.scenarios import build_pos_pair
from tests.conftest import boot_and_configure


def alice_throughput(bob_interferes: bool) -> float:
    """Alice measures the DuT at 1.5 Mpps; Bob may inject 1 Mpps more
    directly at the DuT's ingress port (sharing the node)."""
    setup = build_pos_pair()
    boot_and_configure(setup)
    if bob_interferes:
        ingress = setup.router.ports[0]
        count = int(1_000_000 * 0.05)
        for seq in range(count):
            setup.sim.schedule(
                seq / 1_000_000,
                ingress.deliver,
                Packet(seq=10_000_000 + seq, frame_size=64),
            )
    job = setup.loadgen.start(rate_pps=1_500_000, frame_size=64, duration_s=0.05)
    setup.sim.run(until=0.12)
    return job.rx_mpps


def test_bench_ablation_calendar(benchmark):
    def measure():
        # First: the calendar actually prevents the double allocation.
        setup = build_pos_pair()
        calendar = Calendar(clock=lambda: 0.0)
        allocator = Allocator(calendar, setup.nodes)
        allocator.allocate("alice", ["riga", "tartu"], duration=3600.0)
        try:
            allocator.allocate("bob", ["tartu"], duration=600.0)
            double_allocation_blocked = False
        except AllocationError:
            double_allocation_blocked = True
        # Second: what the measurement would look like if it didn't.
        return (
            double_allocation_blocked,
            alice_throughput(bob_interferes=False),
            alice_throughput(bob_interferes=True),
        )

    blocked, exclusive, shared = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print("\n=== Ablation: calendar-enforced exclusive allocation ===")
    print(f"double allocation blocked by calendar: {blocked}")
    print(f"alice measures (exclusive node):       {exclusive:.3f} Mpps "
          "(offered: 1.500)")
    print(f"alice measures (node shared with bob): {shared:.3f} Mpps "
          "(bob's frames pollute the count, alice's own frames are dropped)")
    assert blocked, "the calendar must reject the overlapping allocation"
    # Exclusive use measures the offered load exactly; sharing distorts
    # the measurement (foreign frames counted + own frames lost at the
    # saturated DuT) by far more than any acceptable tolerance.
    assert abs(exclusive - 1.5) < 0.03
    assert abs(shared - 1.5) > 0.1
