"""Health-plane overhead on the batched fast path — the < 5% budget.

The health plane polls every node's BMC once per run (sensor read, SEL
slice, classification) and folds the result in the parent, so its cost
must be invisible next to the measurement itself.  The bench times a
thinned Fig. 3a sweep with the plane enabled (default) and disabled
(``POS_HEALTH=0``), takes the best of three repetitions per
configuration to shed scheduler noise, and gates the ratio at 1.05.

Correctness rides along: the parsed throughput rows must be identical
with health monitoring on and off — out-of-band observation must not
perturb the in-band measurement — and the health artifacts must exist
exactly when the plane is on.
"""

from __future__ import annotations

import json
import os
import time

from repro.casestudy import POS_RATES, run_case_study
from repro.evaluation.loader import load_experiment

from conftest import sweep, throughput_rows

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_health.json")

#: The ISSUE's health budget: enabled may cost at most 5% wall time.
OVERHEAD_GATE = 1.05

REPS = 3

SWEEP = dict(
    rates=sweep(POS_RATES, keep_every=3),
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.01,
)


def _update_bench_json(section, payload):
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timed_sweep(root, health):
    os.environ["POS_NETSIM_BATCH"] = "1"
    os.environ["POS_HEALTH"] = "1" if health else "0"
    try:
        start = time.perf_counter()
        handle = run_case_study("pos", str(root), jobs=1, **SWEEP)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        os.environ.pop("POS_HEALTH", None)
    assert handle.failed_runs == 0
    return elapsed, handle


def _best_of(tmp_path_factory, label, health):
    best, last_handle = None, None
    for rep in range(REPS):
        root = tmp_path_factory.mktemp(f"{label}{rep}")
        elapsed, last_handle = _timed_sweep(root, health)
        best = elapsed if best is None else min(best, elapsed)
    return best, last_handle


def test_bench_health_overhead(tmp_path_factory):
    off_s, off_handle = _best_of(tmp_path_factory, "hoff", health=False)
    on_s, on_handle = _best_of(tmp_path_factory, "hon", health=True)

    # Out-of-band observation must not perturb the in-band measurement.
    rows = throughput_rows(load_experiment(off_handle.result_path))
    assert throughput_rows(load_experiment(on_handle.result_path)) == rows

    # Health artifacts exist exactly when the plane is on.
    assert os.path.isfile(os.path.join(on_handle.result_path, "health.json"))
    assert os.path.isfile(
        os.path.join(on_handle.result_path, "run-000", "health.json")
    )
    assert not os.path.isfile(
        os.path.join(off_handle.result_path, "health.json")
    )

    overhead = on_s / off_s
    runs = len(SWEEP["rates"]) * len(SWEEP["sizes"])
    print(f"\n=== health-plane overhead: batched fast path ({runs} runs) ===")
    print(f"health off: {off_s:6.3f} s   on: {on_s:6.3f} s   "
          f"ratio: {overhead:.3f}x   (best of {REPS})")
    _update_bench_json("overhead", {
        "sweep_runs": runs,
        "reps": REPS,
        "health_off_s": round(off_s, 3),
        "health_on_s": round(on_s, 3),
        "overhead": round(overhead, 4),
        "gate": OVERHEAD_GATE,
        "event_path": "batched (POS_NETSIM_BATCH=1)",
    })
    assert overhead <= OVERHEAD_GATE, (
        f"health plane costs {(overhead - 1) * 100:.1f}% wall time on the "
        f"batched fast path; budget is {(OVERHEAD_GATE - 1) * 100:.0f}%"
    )
