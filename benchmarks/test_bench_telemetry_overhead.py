"""Telemetry overhead on the batched fast path — the < 5% budget.

The telemetry plane is always on, so its cost is measured against the
workload least able to hide it: the batched fast path, where a whole
measurement run is a handful of spans and counter bumps rather than
thousands of per-event hooks.  The bench times a thinned Fig. 3a sweep
with telemetry enabled (default) and disabled (``POS_TELEMETRY=0``),
takes the best of three repetitions per configuration to shed scheduler
noise, and gates the ratio at 1.05.  A second section uses the
``Span.profile()`` wall-clock hook — via the ``trace-wall.jsonl``
sidecar — to record how much of the enabled run is actually spent
inside the instrumented replay loop.

Correctness rides along: the parsed throughput rows must be identical
with telemetry on and off, proving observation does not perturb the
measurement.
"""

from __future__ import annotations

import json
import os
import time

from repro.casestudy import POS_RATES, run_case_study
from repro.evaluation.loader import load_experiment

from conftest import sweep, throughput_rows

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_telemetry.json")

#: The ISSUE's telemetry budget: enabled may cost at most 5% wall time.
OVERHEAD_GATE = 1.05

REPS = 3

SWEEP = dict(
    rates=sweep(POS_RATES, keep_every=3),
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.01,
)


def _update_bench_json(section, payload):
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timed_sweep(root, telemetry):
    os.environ["POS_NETSIM_BATCH"] = "1"
    os.environ["POS_TELEMETRY"] = "1" if telemetry else "0"
    try:
        start = time.perf_counter()
        handle = run_case_study("pos", str(root), jobs=1, **SWEEP)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        os.environ.pop("POS_TELEMETRY", None)
    assert handle.failed_runs == 0
    return elapsed, handle


def _best_of(tmp_path_factory, label, telemetry):
    best, last_handle = None, None
    for rep in range(REPS):
        root = tmp_path_factory.mktemp(f"{label}{rep}")
        elapsed, last_handle = _timed_sweep(root, telemetry)
        best = elapsed if best is None else min(best, elapsed)
    return best, last_handle


def test_bench_telemetry_overhead(tmp_path_factory):
    off_s, off_handle = _best_of(tmp_path_factory, "off", telemetry=False)
    on_s, on_handle = _best_of(tmp_path_factory, "on", telemetry=True)

    # Observation must not perturb the measurement.
    rows = throughput_rows(load_experiment(off_handle.result_path))
    assert throughput_rows(load_experiment(on_handle.result_path)) == rows

    # Telemetry artifacts exist exactly when the plane is on.
    assert os.path.isfile(os.path.join(on_handle.result_path, "trace.jsonl"))
    assert not os.path.isfile(
        os.path.join(off_handle.result_path, "trace.jsonl")
    )

    overhead = on_s / off_s
    runs = len(SWEEP["rates"]) * len(SWEEP["sizes"])
    print(f"\n=== telemetry overhead: batched fast path ({runs} runs) ===")
    print(f"telemetry off: {off_s:6.3f} s   on: {on_s:6.3f} s   "
          f"ratio: {overhead:.3f}x   (best of {REPS})")
    _update_bench_json("overhead", {
        "sweep_runs": runs,
        "reps": REPS,
        "telemetry_off_s": round(off_s, 3),
        "telemetry_on_s": round(on_s, 3),
        "overhead": round(overhead, 4),
        "gate": OVERHEAD_GATE,
        "event_path": "batched (POS_NETSIM_BATCH=1)",
    })
    assert overhead <= OVERHEAD_GATE, (
        f"telemetry costs {(overhead - 1) * 100:.1f}% wall time on the "
        f"batched fast path; budget is {(OVERHEAD_GATE - 1) * 100:.0f}%"
    )


def test_bench_profile_hook_fraction(tmp_path_factory):
    """``Span.profile()``: wall-clock spent inside the instrumented loops."""
    root = tmp_path_factory.mktemp("profiled")
    os.environ["POS_NETSIM_BATCH"] = "1"
    os.environ["POS_TELEMETRY_WALLCLOCK"] = "1"
    try:
        start = time.perf_counter()
        handle = run_case_study("pos", str(root), jobs=1, **SWEEP)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        os.environ.pop("POS_TELEMETRY_WALLCLOCK", None)
    assert handle.failed_runs == 0

    sidecar = os.path.join(handle.result_path, "trace-wall.jsonl")
    assert os.path.isfile(sidecar)
    with open(sidecar) as handle_:
        profiles = [json.loads(line) for line in handle_]
    assert profiles, "the profile hook produced no measurements"
    replay_s = sum(record["wall_s"] for record in profiles)
    fraction = replay_s / elapsed

    print("\n=== Span.profile(): instrumented replay wall time ===")
    print(f"profiled spans: {len(profiles)}   replay: {replay_s:6.3f} s   "
          f"of {elapsed:6.3f} s total ({fraction:5.1%})")
    _update_bench_json("profile", {
        "profiled_spans": len(profiles),
        "replay_s": round(replay_s, 3),
        "total_s": round(elapsed, 3),
        "replay_fraction": round(fraction, 4),
    })
    assert 0.0 < fraction < 1.0
