"""Table 1 — feature comparison of testbeds and methodologies.

Regenerates the comparison matrix from declared system capabilities and
checks every cell against the published table.
"""

from __future__ import annotations

import pytest

from repro.comparison import (
    REQUIREMENTS,
    comparison_matrix,
    format_table,
)

PAPER_TABLE = {
    "Chameleon": ["full", "partial", "full", "n.a.", "n.a."],
    "CloudLab": ["full", "partial", "full", "n.a.", "n.a."],
    "Grid'5000": ["full", "partial", "full", "n.a.", "n.a."],
    "OMF": ["n.a.", "n.a.", "n.a.", "full", "none"],
    "NEPI": ["n.a.", "n.a.", "n.a.", "full", "partial"],
    "SNDZoo": ["n.a.", "n.a.", "n.a.", "full", "partial"],
    "pos": ["full", "full", "full", "full", "full"],
}
# Correction: the paper marks OMF and NEPI as "not supported" for R5.
PAPER_TABLE["NEPI"] = ["n.a.", "n.a.", "n.a.", "full", "none"]


def test_bench_table1(benchmark):
    matrix = benchmark.pedantic(comparison_matrix, rounds=1, iterations=1)
    print("\n=== Table 1: comparison between testbeds ===")
    print(format_table())
    for system, expected in PAPER_TABLE.items():
        actual = [matrix[system][req].value for req in REQUIREMENTS]
        assert actual == expected, f"{system}: {actual} != paper {expected}"
