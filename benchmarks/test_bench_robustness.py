"""Extension bench — robustness scan (the Zilberman scenario, Sec. 2).

The paper motivates full automation partly with Zilberman's finding
that "small variation from the original input, such as the investigated
packet size, could lead to a significantly different performance".
With pos, scanning the neighbourhood is one loop variable away.  This
bench sweeps frame sizes across a DuT whose NIC uses 1 KiB receive
buffers and shows the automation catching the throughput cliff at the
buffer boundary — a result a single published operating point would
hide.
"""

from __future__ import annotations

import pytest

from repro.evaluation.robustness import find_cliffs, robustness_report, scan
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.netsim.packet import Packet
from repro.netsim.router import LinuxRouter


def saturated_throughput(frame_size: float) -> float:
    """Saturated forwarding rate (Mpps) at one frame size."""
    sim = Simulator()
    tx = HardwareNic(sim, "tx", line_rate_bps=100e9)
    rx = HardwareNic(sim, "rx", line_rate_bps=100e9)
    p0 = HardwareNic(sim, "p0", line_rate_bps=100e9)
    p1 = HardwareNic(sim, "p1", line_rate_bps=100e9)
    router = LinuxRouter(sim, rx_buffer_bytes=1024,
                         extra_descriptor_cost_s=400e-9)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    times = []
    rx.set_rx_handler(lambda p: times.append(sim.now))
    duration = 0.004
    rate = 4_000_000
    for seq in range(int(rate * duration)):
        sim.schedule(seq / rate, tx.transmit,
                     Packet(seq=seq, frame_size=int(frame_size)))
    sim.run()
    return sum(1 for moment in times if moment <= duration) / duration / 1e6


def test_bench_robustness(benchmark):
    sizes = [512, 768, 960, 1000, 1024, 1025, 1060, 1152, 1280, 1500]
    points = benchmark.pedantic(
        lambda: scan(sizes, saturated_throughput), rounds=1, iterations=1
    )
    report = robustness_report(
        points, parameter_name="pkt_sz", metric_name="mpps", tolerance=0.10
    )
    print("\n=== Extension: robustness scan over packet size ===")
    print(report)

    cliffs = find_cliffs(points, tolerance=0.10)
    # Exactly one brittle transition, at the receive-buffer boundary.
    assert len(cliffs) == 1
    assert cliffs[0].parameter_before == 1024
    assert cliffs[0].parameter_after == 1025
    assert cliffs[0].relative_change < -0.2
    # Either side of the cliff the curve is flat (CPU-bound, not
    # size-bound) — the hallmark of low robustness: stability everywhere
    # except one invisible boundary.
    below = [mpps for size, mpps in points if size <= 1024]
    above = [mpps for size, mpps in points if size >= 1025]
    assert max(below) - min(below) < 0.05 * max(below)
    assert max(above) - min(above) < 0.05 * max(above)
