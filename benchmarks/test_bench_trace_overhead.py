"""Fleet-trace overhead on a distributed sweep — the < 5% budget.

The causal tracing plane rides every delivery: a dispatch → run →
persist chain per run in ``fleet-trace.jsonl`` plus a wall-clock event
per transport message in the evidence sidecar.  The bench times a
thinned distributed sweep with the plane enabled (default) and
disabled (``POS_FLEET_TRACE=0``), takes the best of three repetitions
per configuration, and gates the ratio at 1.05.

Correctness rides along twice: the parsed throughput rows must be
identical with tracing on and off (observation does not perturb the
measurement), and the kill switch must actually kill — a disabled run
leaves neither the trace nor the wall sidecar behind.
"""

from __future__ import annotations

import json
import os
import time

from repro.casestudy import POS_RATES, run_case_study
from repro.evaluation.loader import load_experiment

from conftest import sweep, throughput_rows

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_trace.json")

#: The ISSUE's tracing budget: enabled may cost at most 5% wall time.
OVERHEAD_GATE = 1.05

REPS = 3

AGENTS = 2

SWEEP = dict(
    rates=sweep(POS_RATES, keep_every=3),
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.01,
)


def _update_bench_json(section, payload):
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timed_sweep(root, tracing):
    os.environ["POS_NETSIM_BATCH"] = "1"
    os.environ["POS_FLEET_TRACE"] = "1" if tracing else "0"
    try:
        start = time.perf_counter()
        handle = run_case_study("pos", str(root), agents=AGENTS, **SWEEP)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        os.environ.pop("POS_FLEET_TRACE", None)
    assert handle.failed_runs == 0
    return elapsed, handle


def _best_of(tmp_path_factory, label, tracing):
    best, last_handle = None, None
    for rep in range(REPS):
        root = tmp_path_factory.mktemp(f"{label}{rep}")
        elapsed, last_handle = _timed_sweep(root, tracing)
        best = elapsed if best is None else min(best, elapsed)
    return best, last_handle


def test_bench_trace_overhead(tmp_path_factory):
    off_s, off_handle = _best_of(tmp_path_factory, "off", tracing=False)
    on_s, on_handle = _best_of(tmp_path_factory, "on", tracing=True)

    # Observation must not perturb the measurement.
    rows = throughput_rows(load_experiment(off_handle.result_path))
    assert throughput_rows(load_experiment(on_handle.result_path)) == rows

    # The kill switch actually kills: no trace, no wall sidecar.
    for name in ("fleet-trace.jsonl", "fleet-trace-wall.jsonl"):
        assert os.path.isfile(os.path.join(on_handle.result_path, name))
        assert not os.path.isfile(os.path.join(off_handle.result_path, name))

    overhead = on_s / off_s
    runs = len(SWEEP["rates"]) * len(SWEEP["sizes"])
    print(f"\n=== fleet-trace overhead: {AGENTS} agents ({runs} runs) ===")
    print(f"tracing off: {off_s:6.3f} s   on: {on_s:6.3f} s   "
          f"ratio: {overhead:.3f}x   (best of {REPS})")
    _update_bench_json("overhead", {
        "sweep_runs": runs,
        "agents": AGENTS,
        "reps": REPS,
        "trace_off_s": round(off_s, 3),
        "trace_on_s": round(on_s, 3),
        "overhead": round(overhead, 4),
        "gate": OVERHEAD_GATE,
    })
    assert overhead <= OVERHEAD_GATE, (
        f"fleet tracing costs {(overhead - 1) * 100:.1f}% wall time on a "
        f"distributed sweep; budget is {(OVERHEAD_GATE - 1) * 100:.0f}%"
    )
