"""Sec. 7 — interconnect latency: direct wire vs L1 vs cut-through.

The paper quantifies the isolation trade-off: an optical L1 switch adds
a constant delay below 15 ns, an L2 cut-through switch about 300 ns.
This bench measures end-to-end latency through the full case-study
path for all three wirings and checks the deltas.
"""

from __future__ import annotations

import statistics

import pytest

from repro.testbed.scenarios import build_pos_pair
from tests.conftest import boot_and_configure


def median_latency(link_kind: str, link_kwargs=None) -> float:
    setup = build_pos_pair(link_kind=link_kind, link_kwargs=link_kwargs)
    boot_and_configure(setup)
    job = setup.loadgen.start(rate_pps=100_000, frame_size=64, duration_s=0.05)
    setup.sim.run(until=0.1)
    samples = sorted(job.latency_samples_s)
    assert samples, "hardware testbed must produce latency samples"
    return samples[len(samples) // 2]


def test_bench_switch_latency(benchmark):
    def measure_all():
        return {
            "direct": median_latency("direct"),
            "optical-l1": median_latency("optical-l1"),
            "cut-through": median_latency("cut-through"),
        }

    medians = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    print("\n=== Sec. 7: interconnect latency impact ===")
    for kind, value in medians.items():
        print(f"{kind:>12}: median {value * 1e9:9.1f} ns")
    # Two links in the path (forward + return), so deltas double.
    optical_delta = medians["optical-l1"] - medians["direct"]
    cut_delta = medians["cut-through"] - medians["direct"]
    print(f"optical delta per hop: {optical_delta / 2 * 1e9:.1f} ns "
          "(paper: < 15 ns)")
    print(f"cut-through delta per hop: {cut_delta / 2 * 1e9:.1f} ns "
          "(paper: ~300 ns)")
    assert 0 < optical_delta / 2 < 15e-9
    assert cut_delta / 2 == pytest.approx(300e-9, rel=0.1)
    # The ordering the paper argues from: direct < L1 << cut-through.
    assert medians["direct"] < medians["optical-l1"] < medians["cut-through"]
