"""Fig. 3b — throughput of the virtualized Linux router (vpos).

Paper's series: the appendix sweep (10 k–300 k pps, 64/1500 B) against
the KVM guest connected through Linux bridges.  Shape to reproduce:

* drop-free forwarding up to ~0.04 Mpps *regardless of packet size*,
* beyond the ceiling the throughput becomes unstable, with visible
  differences between the two packet sizes,
* no latency data exists (virtio lacks hardware timestamping).
"""

from __future__ import annotations

import statistics

import pytest

from repro.casestudy import VPOS_RATES
from repro.evaluation.plotter import latency_samples_us, plot_experiment

from conftest import print_series, run_and_load, sweep, throughput_rows


@pytest.fixture(scope="module")
def fig3b_results(tmp_path_factory):
    return run_and_load(
        "vpos",
        tmp_path_factory.mktemp("fig3b"),
        rates=sweep(VPOS_RATES, keep_every=3),
        sizes=(64, 1500),
        duration_s=0.25,
        interval_s=0.05,
        seed=2,
    )


def test_bench_fig3b(benchmark, fig3b_results, tmp_path):
    rows = benchmark.pedantic(
        lambda: throughput_rows(fig3b_results), rounds=1, iterations=1
    )
    print_series("Fig. 3b: vpos (virtualized Linux router)", rows)

    for size, series in rows.items():
        # Drop-free region: offered == achieved up to ~0.03 Mpps.
        for offered, rx in series:
            if offered <= 0.03:
                assert rx == pytest.approx(offered, rel=0.03), (
                    f"pkt_sz={size} should be drop-free at {offered} Mpps"
                )
        # Ceiling: nothing remotely approaches the bare-metal rates.
        peak = max(rx for __, rx in series)
        assert peak < 0.09, f"pkt_sz={size} VM ceiling blown: {peak}"

    # Overload instability: beyond the ceiling the two packet sizes
    # visibly diverge (the paper: "evident in the throughput
    # differences between the packet sizes").
    overload64 = [rx for offered, rx in rows[64] if offered >= 0.1]
    overload1500 = [rx for offered, rx in rows[1500] if offered >= 0.1]
    divergence = statistics.mean(
        abs(a - b) for a, b in zip(overload64, overload1500)
    )
    assert divergence > 0.002, "overload curves should differ between sizes"

    # The generation side is stable between setups: TX equals offered.
    for size in (64, 1500):
        run = fig3b_results.filter(pkt_sz=size)[0]
        output = run.moongen()
        assert output.tx_mpps == pytest.approx(
            run.loop["pkt_rate"] / 1e6, rel=0.02
        )

    # No latency histograms exist on the virtual platform.
    assert latency_samples_us(fig3b_results) == []
    written = plot_experiment(
        fig3b_results, output_dir=str(tmp_path / "figures"), formats=("svg",)
    )
    assert [path for path in written if "latency" in path] == []
