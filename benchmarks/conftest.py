"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the
workload through the full pipeline (controller → measurement → result
tree → parser), prints the same rows/series the paper reports, and
asserts the qualitative *shape* (who wins, by what factor, where
crossovers fall) — absolute numbers come from our simulator, not the
authors' hardware, and are not expected to match.

Benches honour ``POS_BENCH_FULL=1`` to run the paper's complete sweeps
(e.g. all 30 vpos rates); the default is a thinned sweep that keeps the
whole harness in the minutes range.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.casestudy import run_case_study
from repro.evaluation.loader import ExperimentResults, load_experiment

FULL_SWEEPS = os.environ.get("POS_BENCH_FULL", "") == "1"

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_HISTORY_DIR = os.path.join(_BENCH_DIR, "history")
_bench_mtimes: Dict[str, float] = {}


def _bench_snapshots() -> Dict[str, float]:
    return {
        name: os.path.getmtime(os.path.join(_BENCH_DIR, name))
        for name in sorted(os.listdir(_BENCH_DIR))
        if name.startswith("BENCH_") and name.endswith(".json")
    }


def pytest_sessionstart(session):
    _bench_mtimes.update(_bench_snapshots())


def pytest_sessionfinish(session, exitstatus):
    """Append refreshed BENCH snapshots to the perf-history ledger.

    Every benchmark that ran re-writes its ``BENCH_*.json`` section;
    any snapshot whose mtime moved during the session is recorded into
    ``benchmarks/history/history.jsonl`` so ``pos perf trend`` sees the
    new point.  ``POS_BENCH_HISTORY=0`` opts out (e.g. scratch runs
    that should not pollute the committed trajectory).
    """
    if os.environ.get("POS_BENCH_HISTORY", "") == "0":
        return
    if exitstatus != 0:
        return  # a failed session's numbers are not a trajectory point
    from repro.telemetry.perfhistory import record_bench

    for name, mtime in _bench_snapshots().items():
        if _bench_mtimes.get(name) != mtime:
            record_bench(_HISTORY_DIR, os.path.join(_BENCH_DIR, name))


def sweep(rates: Sequence[int], keep_every: int) -> List[int]:
    """Thin a rate sweep unless POS_BENCH_FULL=1."""
    if FULL_SWEEPS:
        return list(rates)
    thinned = list(rates[::keep_every])
    if rates[-1] not in thinned:
        thinned.append(rates[-1])
    return thinned


def run_and_load(
    platform: str,
    tmp_path,
    rates: Sequence[int],
    sizes: Sequence[int],
    duration_s: float,
    interval_s: float = 0.05,
    seed: int = 0,
) -> ExperimentResults:
    handle = run_case_study(
        platform,
        str(tmp_path),
        rates=list(rates),
        sizes=tuple(sizes),
        duration_s=duration_s,
        interval_s=interval_s,
        seed=seed,
    )
    assert handle.failed_runs == 0, "benchmark run must complete cleanly"
    return load_experiment(handle.result_path)


def throughput_rows(
    results: ExperimentResults,
) -> Dict[int, List[Tuple[float, float]]]:
    """size -> [(offered_mpps, rx_mpps)] rows, like the Fig. 3 series."""
    rows: Dict[int, List[Tuple[float, float]]] = {}
    for size in results.loop_values("pkt_sz"):
        series = []
        for run in results.filter(pkt_sz=size):
            output = run.moongen()
            series.append((run.loop["pkt_rate"] / 1e6, output.rx_mpps))
        rows[size] = sorted(series)
    return rows


def print_series(title: str, rows: Dict[int, List[Tuple[float, float]]]) -> None:
    print(f"\n=== {title} ===")
    print(f"{'offered [Mpps]':>15}  " + "  ".join(
        f"{size:>4}B rx [Mpps]" for size in rows
    ))
    lengths = {len(series) for series in rows.values()}
    assert len(lengths) == 1
    sizes = list(rows)
    for index in range(lengths.pop()):
        offered = rows[sizes[0]][index][0]
        cells = "  ".join(f"{rows[size][index][1]:>14.4f}" for size in sizes)
        print(f"{offered:>15.3f}  {cells}")
