"""Sec. 5 headline numbers — the pos/vpos gap and overload variance.

The paper: "With a decrease in the maximum forwarding throughput by a
factor of up to 44 and an increase in variance in the virtualized
environment …  the underlying tendencies stay the same."  This bench
derives both derived quantities from fresh runs of the two platforms.
"""

from __future__ import annotations

import pytest

from repro.evaluation.moongen_parser import parse_moongen_output

from conftest import run_and_load


@pytest.fixture(scope="module")
def platform_runs(tmp_path_factory):
    pos = run_and_load(
        "pos",
        tmp_path_factory.mktemp("pos44"),
        rates=[1_500_000, 2_000_000],
        sizes=(64,),
        duration_s=0.05,
        interval_s=0.01,
    )
    vpos = run_and_load(
        "vpos",
        tmp_path_factory.mktemp("vpos44"),
        rates=[30_000, 40_000, 200_000],
        sizes=(64,),
        duration_s=0.4,
        interval_s=0.05,
        seed=4,
    )
    return pos, vpos


def test_bench_factor44(benchmark, platform_runs):
    pos, vpos = platform_runs

    def derive():
        pos_peak = max(run.moongen().rx_mpps for run in pos.runs)
        vpos_dropfree = max(
            run.moongen().rx_mpps
            for run in vpos.runs
            if run.moongen().loss_fraction < 0.02
        )
        return pos_peak, vpos_dropfree

    pos_peak, vpos_dropfree = benchmark.pedantic(derive, rounds=1, iterations=1)
    factor = pos_peak / vpos_dropfree
    print(f"\n=== Sec. 5: throughput gap pos vs vpos ===")
    print(f"pos peak:            {pos_peak:.3f} Mpps")
    print(f"vpos drop-free peak: {vpos_dropfree:.4f} Mpps")
    print(f"factor:              {factor:.1f}x   (paper: up to 44x)")
    assert 25 <= factor <= 70

    # Variance increase: per-interval RX rates in the overloaded VM vary
    # far more (relative to their mean) than on loaded bare metal.
    def interval_cv(results, rate):
        run = results.filter(pkt_rate=rate)[0]
        output = parse_moongen_output(run.output("loadgen", "moongen.log"))
        rates = output.rx_interval_mpps
        mean = sum(rates) / len(rates)
        variance = sum((value - mean) ** 2 for value in rates) / len(rates)
        return (variance ** 0.5) / mean

    pos_cv = interval_cv(pos, 2_000_000)
    vpos_cv = interval_cv(vpos, 200_000)
    print(f"pos overload interval CV:  {pos_cv:.4f}")
    print(f"vpos overload interval CV: {vpos_cv:.4f}")
    assert vpos_cv > pos_cv * 5, "virtualization should raise variance"
