"""Fig. 1 and Fig. 2 — the paper's structural diagrams, regenerated.

Fig. 1 shows the experiment entities (testbed controller managing the
directly wired DuT and LoadGen); Fig. 2 shows the experimental
workflow (script/variable/result files through the three phases).
Both regenerate here from *live objects*: the actual case-study
topology and the actual experiment definition.
"""

from __future__ import annotations

import pytest

from repro.casestudy import build_case_study_experiment, build_environment
from repro.publication.workflow import workflow_outline, workflow_svg


def test_bench_fig1(benchmark, tmp_path):
    env = build_environment("pos", str(tmp_path))
    svg = benchmark.pedantic(env.setup.topology.to_svg, rounds=1, iterations=1)
    out = tmp_path / "fig1.svg"
    out.write_text(svg)
    print(f"\n=== Fig. 1: experiment entities -> {out} ===")
    # Controller plus the two experiment hosts, direct wires between them.
    for entity in ("kaunas", "riga", "tartu"):
        assert entity in svg
    assert svg.count('class="box"') + svg.count('class="box ctrl"') == 3
    assert svg.count('class="wire"') == 2  # two directly wired links
    assert svg.count('class="mgmt"') == 2  # controller manages both hosts


def test_bench_fig2(benchmark, tmp_path):
    experiment = build_case_study_experiment("vpos")
    outline, svg = benchmark.pedantic(
        lambda: (workflow_outline(experiment), workflow_svg(experiment)),
        rounds=1,
        iterations=1,
    )
    out = tmp_path / "fig2.svg"
    out.write_text(svg)
    print(f"\n=== Fig. 2: experimental workflow -> {out} ===")
    print(outline)
    # The three phases, in order.
    setup_at = outline.index("phase: setup")
    measure_at = outline.index("phase: measurement")
    evaluate_at = outline.index("phase: evaluation")
    assert setup_at < measure_at < evaluate_at
    # Script and variable files appear as first-class entities.
    assert "loadgen-setup" in outline
    assert "dut-setup" in outline
    assert "variables: global, loop" in outline
    assert "runs: 60" in outline  # the appendix cross product
    assert "publication script" in outline
    # And the SVG bands mirror the same structure.
    for phase in ("setup phase", "measurement phase", "evaluation phase"):
        assert phase in svg
