"""DAG fastpath + run cache — what the generalized kernel buys.

Three measurements, all recorded in ``benchmarks/BENCH_fastpath_dag.json``:

1. Events processed for one measurement run on the sweep topologies the
   generalized compiler newly covers (3-router chain, multi-core RSS
   fan-out, mixed ASIC/bridge/router chain), event path vs DAG kernel —
   the ISSUE's >=100x reduction floor, gated per topology, with the
   committed numbers doubling as the CI regression baseline.
2. Spec reuse across a sweep: the second and later runs on one world
   skip compilation entirely (``acquire_dag`` returns the cached spec).
3. Wall clock of a warm cached sweep vs a cold one — the run cache's
   end-to-end payoff: replaying memoized outcomes through the persist
   pipeline costs a small fraction of simulating them.

Correctness rides along: packet counts must be identical between the
two paths, and the warm tree byte-identical to the cold one.
"""

from __future__ import annotations

import filecmp
import json
import os
import time

from repro.casestudy import run_case_study
from repro.loadgen.moongen import MoonGen
from repro.netsim import fastpath
from repro.netsim.asicswitch import AsicSwitch
from repro.netsim.bridge import LinuxBridge
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.multicore import MultiCoreRouter
from repro.netsim.nic import HardwareNic
from repro.netsim.router import LinuxRouter

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_fastpath_dag.json")

#: The batched event count is deterministic; any real regression is a
#: step change far above this slack over the recorded baseline.
EVENT_GATE_SLACK = 1.05

TOPOLOGIES = {
    "router_chain_x3": ["router", "router", "router"],
    "multicore_rss": ["multicore"],
    "mixed_asic_bridge_router": ["asic", "bridge", "router"],
}


def _update_bench_json(section, payload):
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _build(sim, kinds):
    tx = HardwareNic(sim, "lg.tx")
    rx = HardwareNic(sim, "lg.rx")
    upstream = tx
    for position, kind in enumerate(kinds):
        if kind == "asic":
            switch = AsicSwitch(sim, f"sw{position}", ports=2)
            switch.add_rule("lg.rx", 1)
            DirectWire(sim, upstream, switch.ports[0])
            upstream = switch.ports[1]
            continue
        p0 = HardwareNic(sim, f"d{position}.p0")
        p1 = HardwareNic(sim, f"d{position}.p1")
        device = {
            "router": LinuxRouter,
            "multicore": lambda s, n: MultiCoreRouter(s, n, cores=8),
            "bridge": LinuxBridge,
        }[kind](sim, f"d{position}")
        device.add_port(p0)
        device.add_port(p1)
        DirectWire(sim, upstream, p0)
        upstream = p1
    DirectWire(sim, upstream, rx)
    return MoonGen(sim, tx, rx, seed=3)


def _one_run(kinds, batched, runs=1):
    os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
    fastpath.enabled.refresh()
    try:
        sim = Simulator()
        gen = _build(sim, kinds)
        flows = 8 if "multicore" in kinds else 1
        job = None
        for __ in range(runs):
            gen.reseed(3)
            job = gen.start(rate_pps=2_000_000, frame_size=64,
                            duration_s=0.02, interval_s=0.01, flows=flows)
            sim.run(until=sim.now + 0.05)
            assert job.finished
        return sim.events_processed, job, gen
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        fastpath.enabled.refresh()


def test_bench_dag_event_reduction():
    baseline = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            baseline = json.load(handle).get("events", {})

    payload = {}
    print("\n=== DAG kernel: events per measurement run ===")
    for name, kinds in TOPOLOGIES.items():
        legacy_events, legacy_job, __ = _one_run(kinds, batched=False)
        batched_events, batched_job, __ = _one_run(kinds, batched=True)
        assert (batched_job.tx_packets, batched_job.rx_packets) == (
            legacy_job.tx_packets, legacy_job.rx_packets
        )
        reduction = legacy_events / batched_events
        print(f"{name:>26}: legacy {legacy_events:>8}  "
              f"batched {batched_events:>5}  reduction {reduction:7.0f}x")
        payload[name] = {
            "legacy": legacy_events,
            "batched": batched_events,
            "reduction": round(reduction, 1),
        }
        assert reduction >= 100.0, (
            f"{name}: only {reduction:.0f}x event reduction"
        )
        recorded = baseline.get(name, {}).get("batched")
        if recorded is not None:
            assert batched_events <= recorded * EVENT_GATE_SLACK, (
                f"{name}: {batched_events} events vs baseline {recorded} — "
                f"the DAG fast path stopped engaging"
            )
    _update_bench_json("events", payload)


def test_bench_sweep_spec_reuse():
    runs = 5
    __, job, gen = _one_run(
        TOPOLOGIES["mixed_asic_bridge_router"], batched=True, runs=runs
    )
    spec = getattr(gen, "_dag_spec", None)
    assert spec is not None and job.rx_packets > 0
    assert spec.reuse_count == runs - 1
    print(f"\n=== sweep spec reuse: {runs} runs, "
          f"{spec.reuse_count} compile(s) skipped ===")
    _update_bench_json("spec_reuse", {
        "runs": runs,
        "compiles_skipped": spec.reuse_count,
    })


def test_bench_warm_cache_wallclock(tmp_path_factory, monkeypatch):
    cache = tmp_path_factory.mktemp("run-cache")
    monkeypatch.setenv("POS_RUN_CACHE_DIR", str(cache))
    sweep = dict(rates=[100_000, 300_000, 500_000], sizes=(64, 1500),
                 duration_s=0.05, interval_s=0.01,
                 clock=lambda: 1_700_000_000.0)

    cold_root = tmp_path_factory.mktemp("cold")
    start = time.perf_counter()
    handle = run_case_study("pos", str(cold_root), **sweep)
    cold_s = time.perf_counter() - start
    assert handle.failed_runs == 0

    warm_root = tmp_path_factory.mktemp("warm")
    start = time.perf_counter()
    handle = run_case_study("pos", str(warm_root), **sweep)
    warm_s = time.perf_counter() - start
    assert handle.failed_runs == 0

    comparison = filecmp.dircmp(
        str(cold_root), str(warm_root), ignore=["cache.jsonl"]
    )

    def assert_same(node):
        assert not node.diff_files, node.diff_files
        assert not node.left_only and not node.right_only
        for sub in node.subdirs.values():
            assert_same(sub)

    assert_same(comparison)
    speedup = cold_s / warm_s
    print(f"\n=== warm run cache: 6-run sweep wall clock ===")
    print(f"cold: {cold_s:6.3f} s   warm: {warm_s:6.3f} s   "
          f"speedup: {speedup:.1f}x")
    _update_bench_json("warm_cache", {
        "sweep_runs": 6,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.5, f"warm cache only {speedup:.2f}x faster"
