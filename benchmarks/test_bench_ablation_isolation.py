"""Ablation — direct wiring vs a shared switch (R2).

Design choice under test: pos wires experiment hosts directly so no
foreign device influences the measurement.  Ablating isolation (a
shared cut-through switch with background traffic from other testbed
users) inflates latency and, above all, latency *variance* — the
jitter that makes runs non-repeatable.
"""

from __future__ import annotations

import statistics

import pytest

from repro.testbed.scenarios import build_pos_pair
from tests.conftest import boot_and_configure


def latency_profile(link_kind: str, link_kwargs=None):
    setup = build_pos_pair(link_kind=link_kind, link_kwargs=link_kwargs)
    boot_and_configure(setup)
    job = setup.loadgen.start(rate_pps=200_000, frame_size=64, duration_s=0.05)
    setup.sim.run(until=0.1)
    samples = job.latency_samples_s
    return statistics.median(samples), statistics.pstdev(samples)


def test_bench_ablation_isolation(benchmark):
    def measure():
        return {
            "direct (pos)": latency_profile("direct"),
            "shared switch, idle": latency_profile("cut-through"),
            "shared switch, 70% load": latency_profile(
                "cut-through", {"background_load": 0.7, "seed": 3}
            ),
        }

    profiles = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n=== Ablation: isolation by direct wiring (R2) ===")
    for label, (median, stddev) in profiles.items():
        print(f"{label:>24}: median {median * 1e6:7.3f} us, "
              f"stddev {stddev * 1e9:8.1f} ns")
    direct_median, direct_stddev = profiles["direct (pos)"]
    idle_median, __ = profiles["shared switch, idle"]
    loaded_median, loaded_stddev = profiles["shared switch, 70% load"]
    # A switch adds latency even when idle…
    assert idle_median > direct_median
    # …and foreign load adds jitter that direct wiring cannot see.
    assert loaded_stddev > direct_stddev * 3
    assert loaded_median > idle_median
