"""Extension bench — multi-core scaling with RSS.

The paper's DuT has 2x12 cores, but the case study's single flow rides
a single core (RSS hashes one flow onto one queue), which is why
Fig. 3a's ceiling is ~1.75 Mpps and not 12x that.  This bench makes the
mechanism visible: sweeping the number of generated flows on a 4-core
DuT scales throughput linearly up to the core count and saturates
there.
"""

from __future__ import annotations

import pytest

from repro.loadgen.moongen import MoonGen
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.multicore import MultiCoreRouter
from repro.netsim.nic import HardwareNic


def saturated_mpps(flows: int, cores: int = 4) -> float:
    sim = Simulator()
    tx = HardwareNic(sim, "lg.tx", line_rate_bps=100e9)
    rx = HardwareNic(sim, "lg.rx", line_rate_bps=100e9)
    p0 = HardwareNic(sim, "dut.p0", line_rate_bps=100e9)
    p1 = HardwareNic(sim, "dut.p1", line_rate_bps=100e9)
    router = MultiCoreRouter(sim, cores=cores)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    gen = MoonGen(sim, tx, rx)
    duration = 0.008
    job = gen.start(rate_pps=9_000_000, frame_size=64, duration_s=duration,
                    flows=flows)
    sim.run(until=duration)
    return job.rx_packets / duration / 1e6


def test_bench_multicore(benchmark):
    flow_counts = [1, 2, 4, 8]
    results = benchmark.pedantic(
        lambda: {flows: saturated_mpps(flows) for flows in flow_counts},
        rounds=1,
        iterations=1,
    )
    print("\n=== Extension: RSS flow scaling on a 4-core DuT ===")
    print(f"{'flows':>6} {'rx [Mpps]':>10} {'speedup':>8}")
    base = results[1]
    for flows, mpps in results.items():
        print(f"{flows:>6} {mpps:>10.3f} {mpps / base:>7.2f}x")

    # One flow reproduces the case-study single-core ceiling.
    assert results[1] == pytest.approx(1.75, rel=0.05)
    # Scaling is ~linear up to the core count…
    assert results[2] == pytest.approx(2 * results[1], rel=0.06)
    assert results[4] == pytest.approx(4 * results[1], rel=0.06)
    # …and flat beyond it (8 flows on 4 cores gain nothing).
    assert results[8] == pytest.approx(results[4], rel=0.06)
