"""Ablation — live-boot clean slate (R3) on vs off.

Design choice under test: pos boots every experiment from a live image,
so no configuration survives between experiments.  Ablating the reboot
(reusing the booted host) lets state leak: an experiment that *forgot*
to configure the DuT still "works" because the previous experiment's
sysctl lingers — exactly the silent irreproducibility live boots
prevent.
"""

from __future__ import annotations

import pytest

from repro.testbed.scenarios import build_pos_pair
from tests.conftest import boot_and_configure


def throughput_with_forgotten_setup(reboot_between: bool) -> float:
    """Experiment 1 configures the DuT; experiment 2 forgets to.

    Returns experiment 2's throughput in packets: non-zero means the
    leaked state silently carried it.
    """
    setup = build_pos_pair()
    boot_and_configure(setup)  # experiment 1: full setup
    job1 = setup.loadgen.start(rate_pps=50_000, frame_size=64, duration_s=0.02)
    setup.sim.run(until=0.05)
    assert job1.rx_packets > 0

    if reboot_between:
        # pos behaviour: live-boot both hosts again.
        for node in setup.nodes.values():
            node.reset()
    # Experiment 2 runs *without* its setup phase (the forgotten script),
    # except the loadgen links, which its own script did bring up.
    lg = setup.nodes["riga"]
    if reboot_between:
        lg.execute("ip link set eno1 up")
        lg.execute("ip link set eno2 up")
    job2 = setup.loadgen.start(rate_pps=50_000, frame_size=64, duration_s=0.02)
    setup.sim.run(until=0.1)
    return job2.rx_packets


def test_bench_ablation_liveboot(benchmark):
    leaked, clean = benchmark.pedantic(
        lambda: (
            throughput_with_forgotten_setup(reboot_between=False),
            throughput_with_forgotten_setup(reboot_between=True),
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation: live-boot clean slate (R3) ===")
    print(f"without reboot (state leaks):  run-2 rx = {leaked} packets "
          "(unscripted setup silently works — irreproducible)")
    print(f"with live-boot reset:          run-2 rx = {clean} packets "
          "(missing setup script is caught immediately)")
    assert leaked > 0, "ablated testbed lets stale config carry the run"
    assert clean == 0, "live boot must expose the missing setup script"
