"""Ablation — managed vs unmanaged BIOS state (Sec. 7).

The paper's stated limitation: configurations below the OS (BIOS, NIC
firmware) influence packet-processing performance but are not managed
by pos.  We built the vendor-adapter layer the paper sketches; this
bench shows why it matters.  Two "identical" experiments — same live
image, same scripts, same variables — measure ceilings ~20 % apart
when a previous user left turbo boost disabled in NVRAM, a difference
no OS-level artifact records.  With the firmware profile applied by
the experiment itself, both runs agree.
"""

from __future__ import annotations

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.netsim.packet import Packet
from repro.netsim.router import LinuxRouter
from repro.testbed.firmware import DellBiosAdapter, FirmwareManager

#: Base vs turbo clock of the paper's Xeon Silver 4214.
_TURBO_SCALE = {"enabled": 1.0, "disabled": 2.2 / 2.7}


def measure_ceiling(adapter: DellBiosAdapter, profile=None) -> float:
    """One experiment execution against a DuT with the given NVRAM."""
    if profile is not None:
        manager = FirmwareManager()
        manager.register("tartu", adapter)
        manager.apply_profile(profile, ["tartu"])
    sim = Simulator()
    tx, rx = HardwareNic(sim, "tx"), HardwareNic(sim, "rx")
    p0, p1 = HardwareNic(sim, "p0"), HardwareNic(sim, "p1")
    router = LinuxRouter(sim)
    router.add_port(p0)
    router.add_port(p1)
    DirectWire(sim, tx, p0)
    DirectWire(sim, p1, rx)
    router.frequency_scale = _TURBO_SCALE[adapter.get("turbo_boost")]
    times = []
    rx.set_rx_handler(lambda p: times.append(sim.now))
    duration = 0.01
    for seq in range(int(3_000_000 * duration)):
        sim.schedule(seq / 3_000_000, tx.transmit, Packet(seq=seq, frame_size=64))
    sim.run()
    return sum(1 for moment in times if moment <= duration) / duration / 1e6


def test_bench_ablation_firmware(benchmark):
    def measure_all():
        # Unmanaged: whatever NVRAM the previous user left behind.
        fresh_machine = measure_ceiling(DellBiosAdapter())
        used_machine = measure_ceiling(
            DellBiosAdapter(defaults={"turbo_boost": "disabled"})
        )
        # Managed: the experiment pins its firmware profile first.
        profile = {"turbo_boost": "enabled", "c_states": "disabled"}
        managed_fresh = measure_ceiling(DellBiosAdapter(), profile)
        managed_used = measure_ceiling(
            DellBiosAdapter(defaults={"turbo_boost": "disabled"}), profile
        )
        return fresh_machine, used_machine, managed_fresh, managed_used

    fresh, used, managed_fresh, managed_used = benchmark.pedantic(
        measure_all, rounds=1, iterations=1
    )
    print("\n=== Ablation: firmware management (Sec. 7) ===")
    print(f"unmanaged BIOS, factory NVRAM:     {fresh:.3f} Mpps")
    print(f"unmanaged BIOS, previous user's:   {used:.3f} Mpps "
          f"({(fresh - used) / fresh * 100:.0f}% off — same image, same scripts)")
    print(f"managed BIOS, factory NVRAM:       {managed_fresh:.3f} Mpps")
    print(f"managed BIOS, previous user's:     {managed_used:.3f} Mpps")
    # Unmanaged: hidden NVRAM state makes identical experiments diverge.
    assert (fresh - used) / fresh > 0.15
    # Managed: the firmware profile restores agreement exactly.
    assert managed_used == pytest.approx(managed_fresh, rel=0.01)
    assert managed_fresh == pytest.approx(fresh, rel=0.01)
