"""Parallel scheduler + batched fast path — the PR's two performance levers.

Measures (1) wall-clock for a thinned Fig. 3a sweep at ``jobs=1`` vs
``jobs=4`` on the legacy event path (the measurement-dominated workload
the scheduler was built to shard) and (2) events processed by the
simulator for one measurement run on the legacy vs the batched path.
Both are recorded in ``benchmarks/BENCH_parallel.json``; the events
section doubles as the CI perf-smoke baseline — the gate fails when the
batched path starts scheduling measurably more events than the
committed baseline, i.e. when the fast path silently stops engaging.

Correctness rides along: the parsed throughput rows must be *identical*
between job counts and between event paths, not merely close.
"""

from __future__ import annotations

import json
import os
import time

from repro.casestudy import POS_RATES, run_case_study
from repro.evaluation.loader import load_experiment
from repro.loadgen.moongen import MoonGen
from repro.netsim import fastpath
from repro.netsim.engine import Simulator
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.netsim.router import LinuxRouter

from conftest import sweep, throughput_rows

BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_parallel.json")

#: Regression slack over the recorded events baseline.  The batched
#: path's event count is deterministic, so any real regression is a
#: step change far above 5%.
EVENT_GATE_SLACK = 1.05

SWEEP = dict(
    rates=sweep(POS_RATES, keep_every=3),
    sizes=(64, 1500),
    duration_s=0.05,
    interval_s=0.01,
)


def _update_bench_json(section, payload):
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timed_sweep(root, jobs, batched):
    os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
    fastpath.enabled.refresh()
    try:
        start = time.perf_counter()
        handle = run_case_study("pos", str(root), jobs=jobs, **SWEEP)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        fastpath.enabled.refresh()
    assert handle.failed_runs == 0
    return elapsed, load_experiment(handle.result_path)


def _one_measurement_run(batched):
    """Events the simulator processes for one Fig. 3a-style run."""
    os.environ["POS_NETSIM_BATCH"] = "1" if batched else "0"
    fastpath.enabled.refresh()
    try:
        sim = Simulator()
        tx = HardwareNic(sim, "lg.tx")
        rx = HardwareNic(sim, "lg.rx")
        p0 = HardwareNic(sim, "dut.p0")
        p1 = HardwareNic(sim, "dut.p1")
        router = LinuxRouter(sim)
        router.add_port(p0)
        router.add_port(p1)
        DirectWire(sim, tx, p0)
        DirectWire(sim, p1, rx)
        gen = MoonGen(sim, tx, rx, seed=3)
        job = gen.start(rate_pps=500_000, frame_size=64, duration_s=0.05,
                        interval_s=0.01)
        sim.run(until=0.1)
        assert job.finished and job.rx_packets > 0
        return sim.events_processed, job
    finally:
        os.environ.pop("POS_NETSIM_BATCH", None)
        fastpath.enabled.refresh()


def test_bench_parallel_speedup(tmp_path_factory):
    jobs1_s, seq = _timed_sweep(
        tmp_path_factory.mktemp("jobs1"), jobs=1, batched=False
    )
    jobs4_s, par = _timed_sweep(
        tmp_path_factory.mktemp("jobs4"), jobs=4, batched=False
    )
    __, fast = _timed_sweep(
        tmp_path_factory.mktemp("batched"), jobs=1, batched=True
    )

    # Parallel and batched executions are *identical* where it counts:
    # the parsed throughput series feeding the Fig. 3 benches.
    rows = throughput_rows(seq)
    assert throughput_rows(par) == rows
    assert throughput_rows(fast) == rows

    cpu_count = os.cpu_count() or 1
    speedup = jobs1_s / jobs4_s
    runs = len(SWEEP["rates"]) * len(SWEEP["sizes"])
    print(f"\n=== parallel scheduler: thinned Fig. 3a sweep ({runs} runs) ===")
    print(f"jobs=1: {jobs1_s:6.2f} s   jobs=4: {jobs4_s:6.2f} s   "
          f"speedup: {speedup:.2f}x   (cpus: {cpu_count})")
    _update_bench_json("wallclock", {
        "sweep_runs": runs,
        "jobs1_s": round(jobs1_s, 3),
        "jobs4_s": round(jobs4_s, 3),
        "speedup": round(speedup, 3),
        "cpu_count": cpu_count,
        "event_path": "legacy (POS_NETSIM_BATCH=0)",
    })

    # The ISSUE's >=2x target assumes >=4 usable cores; on smaller CI
    # boxes 4 workers cannot physically double throughput, so the floor
    # adapts (and the JSON records the box it was measured on).
    floor = 2.0 if cpu_count >= 4 else 1.5
    assert speedup >= floor, (
        f"jobs=4 speedup {speedup:.2f}x below {floor}x on {cpu_count} cpus"
    )


def test_bench_event_reduction_gate():
    baseline = None
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            baseline = json.load(handle).get("events", {}).get("batched")

    legacy_events, legacy_job = _one_measurement_run(batched=False)
    batched_events, batched_job = _one_measurement_run(batched=True)
    assert (batched_job.tx_packets, batched_job.rx_packets) == (
        legacy_job.tx_packets, legacy_job.rx_packets
    )

    reduction = legacy_events / batched_events
    print(f"\n=== batched fast path: events per measurement run ===")
    print(f"legacy: {legacy_events}   batched: {batched_events}   "
          f"reduction: {reduction:.0f}x")
    _update_bench_json("events", {
        "legacy": legacy_events,
        "batched": batched_events,
        "reduction": round(reduction, 1),
        "run": {"rate_pps": 500_000, "frame_size": 64, "duration_s": 0.05},
    })

    assert reduction >= 10.0, f"batching only cut events {reduction:.1f}x"
    if baseline is not None:
        assert batched_events <= baseline * EVENT_GATE_SLACK, (
            f"batched path scheduled {batched_events} events, baseline "
            f"{baseline}: the fast path stopped engaging"
        )
