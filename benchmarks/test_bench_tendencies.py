"""Sec. 5 — "the underlying tendencies stay the same".

The paper's answer to "how can both setups be compared?" when raw
numbers differ by a factor of 44: the qualitative behaviour matches.
This bench runs both platforms and lets the tendency comparator decide
programmatically — the same checks a referee would make by eye on
Fig. 3a/3b.
"""

from __future__ import annotations

import pytest

from repro.evaluation.tendencies import tendencies_agree, tendency_report

from conftest import run_and_load


@pytest.fixture(scope="module")
def both_platforms(tmp_path_factory):
    def curves(platform, rates, duration, seed):
        results = run_and_load(
            platform,
            tmp_path_factory.mktemp(platform),
            rates=rates,
            sizes=(64, 1500),
            duration_s=duration,
            interval_s=duration / 2,
            seed=seed,
        )
        by_size = {}
        for size in (64, 1500):
            by_size[size] = [
                (run.loop["pkt_rate"] / 1e6, run.moongen().rx_mpps)
                for run in results.filter(pkt_sz=size)
            ]
        return by_size

    pos = curves("pos", [250_000, 500_000, 750_000, 2_000_000], 0.04, seed=0)
    vpos = curves("vpos", [10_000, 20_000, 40_000, 200_000], 0.2, seed=6)
    return pos, vpos


def test_bench_tendencies(benchmark, both_platforms):
    pos, vpos = both_platforms
    verdict = benchmark.pedantic(
        lambda: tendencies_agree(pos, vpos), rounds=1, iterations=1
    )
    print("\n=== Sec. 5: tendency comparison pos vs vpos ===")
    print(tendency_report("pos", pos, "vpos", vpos))
    # The paper's qualitative claims, decided programmatically:
    assert verdict["same_groups"]
    assert verdict["both_saturate"], (
        "the number of processed packets must limit forwarding on both"
    )
    assert verdict["size_independence_matches"], (
        "the drop-free ceiling is packet-size-independent below the "
        "bandwidth limit"
    )
