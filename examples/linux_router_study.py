#!/usr/bin/env python3
"""The paper's case study (Sec. 5 / Appendix A), reproduced end to end.

Measures the forwarding performance of a Linux router for 64 B and
1500 B frames on *both* platforms:

* pos  — the bare-metal testbed model (Fig. 3a),
* vpos — the virtual clone: KVM guests + Linux bridges (Fig. 3b),

then evaluates the result trees into figures and publishes each
experiment (plots + artifact website + release archive) — the complete
workflow of Listing 1 and Listing 2.

Run with::

    python examples/linux_router_study.py [--full]

``--full`` runs the appendix's complete 60-run vpos sweep and a 20-rate
hardware sweep; the default thins both to keep the demo under a minute.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.casestudy import POS_RATES, VPOS_RATES, run_case_study
from repro.evaluation.loader import load_experiment
from repro.publication.publish import publish


def progress(done: int, total: int) -> None:
    sys.stdout.write(f"\r  run {done}/{total}")
    sys.stdout.flush()
    if done == total:
        sys.stdout.write("\n")


def study(platform: str, rates, duration_s: float, root: str) -> None:
    print(f"\n--- platform: {platform} ---")
    handle = run_case_study(
        platform,
        root,
        rates=rates,
        duration_s=duration_s,
        interval_s=duration_s / 5,
        seed=7,
        progress=progress,
    )
    results = load_experiment(handle.result_path)

    print(f"{'rate [pps]':>12}  {'64B rx [Mpps]':>14}  {'1500B rx [Mpps]':>16}")
    for rate in results.loop_values("pkt_rate"):
        cells = []
        for size in (64, 1500):
            run = results.filter(pkt_sz=size, pkt_rate=rate)[0]
            cells.append(run.moongen().rx_mpps)
        print(f"{rate:>12,}  {cells[0]:>14.4f}  {cells[1]:>16.4f}")

    report = publish(
        handle.result_path,
        repository_url="https://github.com/example/pos-artifacts",
    )
    print(f"figures:  {len(report.figures)} files")
    print(f"website:  {report.website_files[0]}")
    print(f"archive:  {report.archive_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper's complete sweeps")
    args = parser.parse_args()

    root = tempfile.mkdtemp(prefix="pos-casestudy-")
    if args.full:
        pos_rates, vpos_rates = POS_RATES, VPOS_RATES
        duration = 0.3
    else:
        pos_rates = POS_RATES[::4] + [POS_RATES[-1]]
        vpos_rates = VPOS_RATES[::6] + [VPOS_RATES[-1]]
        duration = 0.1

    study("pos", pos_rates, duration, root)
    study("vpos", vpos_rates, max(duration, 0.2), root)

    print("\nThe same scripts, result format, and evaluation pipeline ran "
          "on both platforms —\nonly the variables and node names differed "
          "(the paper's core claim).")


if __name__ == "__main__":
    main()
