#!/usr/bin/env python3
"""Latency study across interconnects, using every plot representation.

Section 7 of the paper discusses what different wirings do to forwarding
delay: direct cables (the pos default), an optical L1 switch (< 15 ns),
and an L2 cut-through switch (~300 ns, plus jitter when shared).  This
example measures latency distributions through all three and renders
them with each of the five out-of-the-box representations — line plot,
histogram, CDF, HDR, and violin — exported to svg, tex, and pdf.

Run with::

    python examples/latency_study.py
"""

from __future__ import annotations

import statistics
import tempfile
from pathlib import Path

from repro.evaluation.plots import cdf, export, hdr_plot, histogram, line_plot, violin
from repro.testbed.scenarios import build_pos_pair


def measure(link_kind: str, link_kwargs=None):
    """Latency samples (µs) through one interconnect."""
    setup = build_pos_pair(link_kind=link_kind, link_kwargs=link_kwargs)
    for node in setup.nodes.values():
        node.set_image(setup.images.resolve("debian-buster"))
        node.reset()
    dut = setup.nodes["tartu"]
    for command in ("sysctl -w net.ipv4.ip_forward=1",
                    "ip link set eno1 up", "ip link set eno2 up"):
        assert dut.execute(command).ok
    lg = setup.nodes["riga"]
    lg.execute("ip link set eno1 up")
    lg.execute("ip link set eno2 up")
    job = setup.loadgen.start(rate_pps=400_000, frame_size=64, duration_s=0.1)
    setup.sim.run(until=0.2)
    return [sample * 1e6 for sample in job.latency_samples_s]


def main() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="pos-latency-"))
    groups = {
        "direct wire": measure("direct"),
        "optical L1": measure("optical-l1"),
        "cut-through": measure("cut-through"),
        "cut-through 70% load": measure(
            "cut-through", {"background_load": 0.7, "seed": 1}
        ),
    }

    print(f"{'interconnect':>22} {'median [us]':>12} {'p99 [us]':>10} "
          f"{'stddev [ns]':>12}")
    for label, samples in groups.items():
        ordered = sorted(samples)
        median = ordered[len(ordered) // 2]
        p99 = ordered[int(len(ordered) * 0.99)]
        stddev = statistics.pstdev(samples) * 1000
        print(f"{label:>22} {median:>12.4f} {p99:>10.4f} {stddev:>12.1f}")

    written = []
    written += export(
        cdf(groups, title="Latency CDF by interconnect", xlabel="latency [us]"),
        str(out_dir / "latency_cdf"),
    )
    written += export(
        hdr_plot(groups, title="Latency percentiles (HDR)",
                 ylabel="latency [us]"),
        str(out_dir / "latency_hdr"),
    )
    written += export(
        violin(groups, title="Latency distribution", ylabel="latency [us]"),
        str(out_dir / "latency_violin"),
    )
    written += export(
        histogram(groups["cut-through 70% load"], bins=40,
                  title="Shared-switch latency histogram",
                  xlabel="latency [us]"),
        str(out_dir / "latency_hist"),
    )
    medians = {
        label: sorted(samples)[len(samples) // 2]
        for label, samples in groups.items()
    }
    written += export(
        line_plot(
            {"median latency": list(enumerate(medians.values()))},
            title="Median latency by interconnect",
            xlabel="interconnect index",
            ylabel="latency [us]",
        ),
        str(out_dir / "latency_medians"),
    )
    print(f"\nwrote {len(written)} figure files under {out_dir}")


if __name__ == "__main__":
    main()
