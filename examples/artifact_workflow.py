#!/usr/bin/env python3
"""The reproduction loop of Appendix A, end to end.

The appendix's workflow for a third party is: get a vpos instance,
clone the artifact repository, run ``experiment.sh``, evaluate, and
publish.  This example performs the complete loop:

1. *author*: define the case study as pure command scripts and export
   it as a publishable artifact folder (script files + variable files),
2. *reproducer*: request a vpos instance from the provisioning service,
   load the artifact folder, and execute it unchanged,
3. evaluate the fresh results and publish them (figures + website +
   deterministic archive),
4. verify the tendencies of the reproduced data against a second,
   independent run — reproduction of the reproduction.

Run with::

    python examples/artifact_workflow.py
"""

from __future__ import annotations

import os
import tempfile

from repro.casestudy import build_case_study_experiment
from repro.core.expdir import load_experiment_dir, write_experiment_dir
from repro.evaluation.loader import load_experiment
from repro.evaluation.tendencies import tendencies_agree
from repro.publication.publish import publish
from repro.testbed.vposservice import VposService


def run_artifact(service: VposService, user: str, artifact_dir: str, seed_user: str):
    """One reproducer: instance → load artifacts → execute."""
    instance = service.create_instance(user)
    env = service.connect(instance.instance_id)
    experiment = load_experiment_dir(artifact_dir)
    handle = env.controller.run(
        experiment, user=user, setup_context_extra={"setup": env.setup}
    )
    service.destroy_instance(instance.instance_id)
    return handle


def curves_of(result_path: str):
    results = load_experiment(result_path)
    by_size = {}
    for size in results.loop_values("pkt_sz"):
        by_size[size] = [
            (run.loop["pkt_rate"] / 1e6, run.moongen().rx_mpps)
            for run in results.filter(pkt_sz=size)
        ]
    return by_size


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="pos-artifact-loop-")
    artifact_dir = os.path.join(workdir, "pos-artifacts", "experiment")

    # 1. The author exports the experiment as files.
    experiment = build_case_study_experiment(
        "vpos",
        rates=[10_000, 20_000, 40_000, 100_000],
        sizes=(64, 1500),
        duration_s=0.15,
        script_style="shell",
    )
    files = write_experiment_dir(experiment, artifact_dir)
    print(f"author: exported {len(files)} artifact files to {artifact_dir}")

    # 2. Two independent reproducers execute the identical artifacts.
    service = VposService(os.path.join(workdir, "results"))
    first = run_artifact(service, "alice", artifact_dir, "alice")
    second = run_artifact(service, "bob", artifact_dir, "bob")
    print(f"alice: {first.completed_runs} runs ok -> {first.result_path}")
    print(f"bob:   {second.completed_runs} runs ok -> {second.result_path}")

    # 3. Publish alice's reproduction.
    report = publish(first.result_path,
                     repository_url="https://github.com/alice/pos-artifacts")
    print(f"published: {len(report.figures)} figures, "
          f"archive {os.path.basename(report.archive_path)}")

    # 4. Do the two reproductions agree in tendency?
    verdict = tendencies_agree(curves_of(first.result_path),
                               curves_of(second.result_path))
    print("tendency verdict between the two reproductions:")
    for name, agrees in verdict.items():
        print(f"  {name}: {'agree' if agrees else 'DISAGREE'}")
    assert all(verdict.values())
    print("\nreproducibility by design: same artifacts, different "
          "instances, same tendencies.")


if __name__ == "__main__":
    main()
