#!/usr/bin/env python3
"""Regenerate every figure of the paper into a target directory.

Produces Fig. 1 (experiment entities), Fig. 2 (experimental workflow),
Fig. 3a (pos throughput) and Fig. 3b (vpos throughput) as SVGs —
measured from fresh simulation runs, not drawn by hand — plus the
Table 1 comparison as text.

Run with::

    python examples/generate_paper_figures.py [--output figures/]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.casestudy import (
    POS_RATES,
    VPOS_RATES,
    build_case_study_experiment,
    build_environment,
    run_case_study,
)
from repro.comparison import format_table
from repro.evaluation.loader import load_experiment
from repro.evaluation.plotter import throughput_figure
from repro.evaluation.plots import export
from repro.publication.workflow import workflow_svg


def fig3(platform: str, rates, duration: float, output_dir: str, seed: int) -> str:
    results_root = tempfile.mkdtemp(prefix=f"pos-fig3-{platform}-")
    handle = run_case_study(
        platform, results_root, rates=rates, duration_s=duration,
        interval_s=duration / 5, seed=seed,
    )
    results = load_experiment(handle.result_path)
    suffix = "a" if platform == "pos" else "b"
    figure = throughput_figure(
        results,
        title=f"Fig. 3{suffix}: {platform} (Linux router forwarding)",
    )
    return export(figure, os.path.join(output_dir, f"fig3{suffix}"),
                  formats=("svg",))[0]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="figures")
    args = parser.parse_args()
    os.makedirs(args.output, exist_ok=True)
    written = []

    # Fig. 1: the entity diagram from the live topology.
    env = build_environment("pos", tempfile.mkdtemp(prefix="pos-fig1-"))
    fig1 = os.path.join(args.output, "fig1.svg")
    with open(fig1, "w", encoding="utf-8") as handle:
        handle.write(env.setup.topology.to_svg())
    written.append(fig1)

    # Fig. 2: the workflow diagram from the real experiment definition.
    fig2 = os.path.join(args.output, "fig2.svg")
    with open(fig2, "w", encoding="utf-8") as handle:
        handle.write(workflow_svg(build_case_study_experiment("vpos")))
    written.append(fig2)

    # Fig. 3a/3b: measured throughput curves (thinned sweeps).
    written.append(fig3("pos", POS_RATES[::2], 0.05, args.output, seed=0))
    written.append(fig3("vpos", VPOS_RATES[::3], 0.25, args.output, seed=2))

    # Table 1 as text.
    table = os.path.join(args.output, "table1.txt")
    with open(table, "w", encoding="utf-8") as handle:
        handle.write(format_table())
    written.append(table)

    for path in written:
        print(path)


if __name__ == "__main__":
    main()
