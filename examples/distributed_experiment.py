#!/usr/bin/env python3
"""A 15-node distributed experiment.

Section 6 notes pos "was used in the past for entirely different
experiments: distributed network experiments involving 15 nodes" — a
secret-sharing-based secure multiparty computation study.  This example
orchestrates that shape of experiment: fifteen hosts are allocated
through the calendar, live-booted, configured, and synchronized with
barriers; each party contributes an additive secret share, the shares
are communicated through the pos utility tools, and a coordinator
verifies the reconstructed secret — once per loop instance.

Run with::

    python examples/distributed_experiment.py
"""

from __future__ import annotations

import tempfile

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.netsim.host import SimHost
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController
from repro.testbed.transport import SshTransport

PARTIES = 14  # plus one coordinator = the paper's 15 nodes
MODULUS = 2_147_483_647  # a Mersenne prime for the additive shares


def make_testbed():
    """Fifteen managed hosts: node01..node14 + coordinator."""
    names = [f"node{i:02d}" for i in range(1, PARTIES + 1)] + ["coordinator"]
    nodes = {}
    for name in names:
        host = SimHost(name, cores=8, memory_gb=32)
        nodes[name] = Node(
            name,
            host=host,
            power=IpmiController(host),
            transport=SshTransport(host),
        )
    return nodes


def party_measurement(ctx):
    """Each party derives its share deterministically and publishes it."""
    secret = int(ctx.variables["secret"])
    party_index = int(ctx.variables["party_index"])
    # Deterministic share: pseudo-random from (secret, index); the last
    # party's share makes the sum come out right.
    share = (secret * 31 + party_index * 7919) % MODULUS
    ctx.tools.set_variable(f"share-{party_index}", share)
    ctx.tools.log(f"party {party_index} contributed its share")
    ctx.tools.barrier("shares-published")


def coordinator_measurement(ctx):
    """Reconstruct and verify: sum of shares mod M must match."""
    secret = int(ctx.variables["secret"])
    shares = [
        int(ctx.tools.get_variable(f"share-{index}"))
        for index in range(1, PARTIES + 1)
    ]
    expected = sum(
        (secret * 31 + index * 7919) % MODULUS
        for index in range(1, PARTIES + 1)
    ) % MODULUS
    reconstructed = sum(shares) % MODULUS
    ok = reconstructed == expected
    ctx.tools.upload(
        "reconstruction.txt",
        f"secret={secret} parties={len(shares)} "
        f"reconstructed={reconstructed} ok={ok}\n",
    )
    if not ok:
        raise RuntimeError("share reconstruction mismatch")
    ctx.tools.barrier("shares-published")


def build_experiment() -> Experiment:
    roles = []
    for index in range(1, PARTIES + 1):
        roles.append(
            Role(
                name=f"party{index:02d}",
                node=f"node{index:02d}",
                setup=CommandScript(f"party{index:02d}-setup", [
                    "sysctl -w net.core.rmem_max=8388608",
                    "pos barrier setup-done",
                ]),
                measurement=PythonScript(
                    f"party{index:02d}-measure", party_measurement
                ),
            )
        )
    roles.append(
        Role(
            name="coordinator",
            node="coordinator",
            setup=CommandScript("coordinator-setup", ["pos barrier setup-done"]),
            measurement=PythonScript("coordinator-measure",
                                     coordinator_measurement),
        )
    )
    local_vars = {
        f"party{index:02d}": {"party_index": index}
        for index in range(1, PARTIES + 1)
    }
    return Experiment(
        name="smc-secret-sharing",
        roles=roles,
        variables=Variables(
            local_vars=local_vars,
            loop_vars={"secret": [42, 1337, 99991]},
        ),
        duration_s=1800.0,
        description="15-node additive secret sharing, verified per run.",
    )


def main() -> None:
    nodes = make_testbed()
    calendar = Calendar()
    allocator = Allocator(calendar, nodes)
    results = ResultStore(tempfile.mkdtemp(prefix="pos-distributed-"))
    controller = Controller(allocator, default_registry(), results)

    handle = controller.run(build_experiment())
    print(f"nodes orchestrated: {len(nodes)}")
    print(f"runs: {handle.completed_runs} ok, {handle.failed_runs} failed")
    print(f"results: {handle.result_path}")

    loaded = load_experiment(handle.result_path)
    for run in loaded.runs:
        line = run.output("coordinator", "reconstruction.txt").strip()
        print(f"run {run.index}: {line}")


if __name__ == "__main__":
    main()
