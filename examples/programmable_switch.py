#!/usr/bin/env python3
"""An ASIC switch as experiment host (heterogeneity, R1).

Section 4.2 of the paper: devices like Intel's Tofino "can be added to
the testbed as a new experiment host and managed through the provided
configuration APIs."  Here the device under test is a match-action
ASIC switch whose *entire* setup script is HTTP requests against its
runtime agent, while the load generator is an ordinary SSH-managed
host — one experiment, two transports, one controller.

The measurement sweeps offered rates far beyond any software router:
the ASIC forwards at line rate with a constant 400 ns pipeline delay.

Run with::

    python examples/programmable_switch.py
"""

from __future__ import annotations

import tempfile

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.loadgen.moongen import MoonGen, format_report
from repro.netsim.asicswitch import AsicSwitch, attach_http_control
from repro.netsim.engine import Simulator
from repro.netsim.host import SimHost
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic
from repro.testbed.images import default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController, SwitchablePowerPlug
from repro.testbed.transport import HttpTransport, SshTransport


def build_rig():
    sim = Simulator()
    lg_host = SimHost("riga")
    for iface in lg_host.interfaces.values():
        iface.nic = HardwareNic(sim, f"riga.{iface.name}", line_rate_bps=100e9)
    moongen = MoonGen(
        sim,
        tx_nic=lg_host.interfaces["eno1"].nic,
        rx_nic=lg_host.interfaces["eno2"].nic,
    )
    switch = AsicSwitch(sim, ports=2)
    agent = SimHost("tofino-agent", interfaces=[])
    http = HttpTransport(agent)
    attach_http_control(switch, http)
    DirectWire(sim, lg_host.interfaces["eno1"].nic, switch.ports[0], length_m=0.0)
    DirectWire(sim, switch.ports[1], lg_host.interfaces["eno2"].nic, length_m=0.0)
    nodes = {
        "riga": Node("riga", host=lg_host, power=IpmiController(lg_host),
                     transport=SshTransport(lg_host)),
        "tofino": Node("tofino", host=agent, power=SwitchablePowerPlug(agent),
                       transport=http),
    }
    return sim, moongen, nodes


class Rig:
    def __init__(self):
        self.sim, self.moongen, self.nodes = build_rig()


def loadgen_measure(ctx):
    rig = ctx.setup
    job = rig.moongen.start(
        rate_pps=int(ctx.variables["pkt_rate"]), frame_size=64, duration_s=0.01
    )
    rig.sim.run(until=rig.sim.now + 0.02)
    ctx.tools.upload("moongen.log", format_report(job))
    ctx.tools.barrier("run-done")


def main() -> None:
    rig = Rig()
    registry = default_registry()
    registry.register("switch-os", "v1", kernel="sdk-9.7")
    controller = Controller(
        Allocator(Calendar(), rig.nodes),
        registry,
        ResultStore(tempfile.mkdtemp(prefix="pos-asic-")),
    )
    experiment = Experiment(
        name="asic-line-rate",
        roles=[
            Role(
                name="loadgen",
                node="riga",
                setup=CommandScript("lg-setup", [
                    "ip link set eno1 up",
                    "ip link set eno2 up",
                    "pos barrier setup-done",
                ]),
                measurement=PythonScript("lg-measure", loadgen_measure),
            ),
            Role(
                name="switch",
                node="tofino",
                image=("switch-os", "v1"),
                setup=CommandScript("switch-setup", [
                    "POST /tables/forward riga.eno2 1",
                    "GET /tables/forward",
                    "pos barrier setup-done",
                ]),
                measurement=CommandScript("switch-measure", [
                    "GET /tables/forward",
                    "pos barrier run-done",
                ]),
            ),
        ],
        variables=Variables(
            loop_vars={"pkt_rate": [1_000_000, 4_000_000, 8_000_000, 12_000_000]},
        ),
        duration_s=300.0,
        description="Line-rate forwarding through an HTTP-managed ASIC.",
    )
    handle = controller.run(experiment, setup_context_extra={"setup": rig})
    results = load_experiment(handle.result_path)
    print(f"{'offered [Mpps]':>15} {'rx [Mpps]':>10} {'avg latency [us]':>17}")
    for run in results.runs:
        output = run.moongen()
        latency = f"{output.latency.avg_us:.3f}" if output.latency else "-"
        print(f"{run.loop['pkt_rate'] / 1e6:>15.1f} {output.rx_mpps:>10.3f} "
              f"{latency:>17}")
    print("\nNo CPU on the data path: the ASIC holds line rate where the "
          "Linux router of the case study saturates at 1.75 Mpps.")


if __name__ == "__main__":
    main()
