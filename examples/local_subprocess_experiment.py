#!/usr/bin/env python3
"""Orchestrating *real subprocesses* with the pos controller.

Experiment scripts "can be any executable".  Here the experiment hosts
are sandboxed directories on the local machine and every command runs
through ``/bin/sh`` — the same controller, calendar, variable files,
barriers, and result collection as the simulated testbed, but against
reality.  The workload compresses a generated corpus at different
compression levels (the loop variable) and measures the resulting
sizes.

Run with::

    python examples/local_subprocess_experiment.py
"""

from __future__ import annotations

import tempfile

from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.testbed.local import local_image_registry, make_local_node


def harvest(ctx):
    """Read the produced measurement from the sandbox and upload it."""
    level = ctx.variables["level"]
    size = ctx.node.execute(f"wc -c < corpus.gz-{level}").stdout.strip()
    ctx.tools.upload("size.txt", f"level={level} bytes={size}\n")
    ctx.tools.set_variable(f"size-{level}", int(size))
    ctx.tools.barrier("run-done")


def build_experiment() -> Experiment:
    worker = Role(
        name="worker",
        node="worker",
        setup=CommandScript("worker-setup", [
            # Generate a deterministic, compressible corpus.
            "seq 1 20000 > corpus.txt",
            "wc -c corpus.txt",
            "pos barrier setup-done",
        ]),
        measurement=CommandScript("worker-measure", [
            "gzip -$level -c corpus.txt > corpus.gz-$level",
            "pos barrier run-done",
        ]),
        image=("local-sandbox", "v1"),
    )
    observer = Role(
        name="observer",
        node="observer",
        setup=CommandScript("observer-setup", ["pos barrier setup-done"]),
        measurement=PythonScript("observer-measure", _observer_measure),
        image=("local-sandbox", "v1"),
    )
    return Experiment(
        name="gzip-levels",
        roles=[worker, observer],
        variables=Variables(loop_vars={"level": [1, 6, 9]}),
        duration_s=300.0,
        description="Compression-level sweep on real subprocesses.",
    )


def _observer_measure(ctx):
    ctx.tools.log("observer standing by")
    ctx.tools.barrier("run-done")


def harvesting_experiment() -> Experiment:
    experiment = build_experiment()
    # The worker both compresses and reports; chain the harvest step.
    original = experiment.role("worker").measurement

    def measure_and_harvest(ctx):
        for command in original.commands:
            if command.startswith("pos "):
                continue
            from repro.core.variables import substitute

            ctx.tools.run(substitute(command, ctx.variables))
        harvest(ctx)

    experiment.role("worker").measurement = PythonScript(
        "worker-measure", measure_and_harvest
    )
    return experiment


def main() -> None:
    nodes = {
        "worker": make_local_node("worker"),
        "observer": make_local_node("observer"),
    }
    calendar = Calendar()
    allocator = Allocator(calendar, nodes)
    results = ResultStore(tempfile.mkdtemp(prefix="pos-local-"))
    controller = Controller(allocator, local_image_registry(), results)

    handle = controller.run(harvesting_experiment())
    print(f"runs: {handle.completed_runs} ok, {handle.failed_runs} failed")
    print(f"results: {handle.result_path}\n")

    loaded = load_experiment(handle.result_path)
    print(f"{'gzip level':>10} {'compressed bytes':>17}")
    for run in loaded.runs:
        size = run.output("worker", "size.txt").split("bytes=")[1].strip()
        print(f"{run.loop['level']:>10} {size:>17}")
    print("\nSizes measured by the real gzip on this machine, "
          "orchestrated through the pos workflow.")


if __name__ == "__main__":
    main()
