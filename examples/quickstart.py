#!/usr/bin/env python3
"""Quickstart: a minimal pos experiment, end to end.

Builds the two-node hardware testbed (LoadGen *riga*, DuT *tartu*,
controller *kaunas*), defines an experiment with setup + measurement
scripts and loop variables, runs it through the testbed controller,
and evaluates the centrally collected results.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.casestudy import build_environment
from repro.core.experiment import Experiment, Role
from repro.core.scripts import CommandScript, PythonScript
from repro.core.variables import Variables
from repro.evaluation.loader import load_experiment
from repro.loadgen.moongen import format_report


def loadgen_measurement(ctx):
    """Generate traffic for one (pkt_rate) loop instance."""
    setup = ctx.setup
    job = setup.loadgen.start(
        rate_pps=int(ctx.variables["pkt_rate"]),
        frame_size=64,
        duration_s=0.05,
    )
    setup.sim.run(until=setup.sim.now + 0.1)
    ctx.tools.upload("moongen.log", format_report(job))
    ctx.tools.barrier("run-done")


def dut_measurement(ctx):
    """Snapshot the DuT after the run."""
    ctx.tools.run("ip link show")
    ctx.tools.barrier("run-done")


def main() -> None:
    # 1. A testbed environment: nodes, calendar, allocator, controller.
    env = build_environment("pos", tempfile.mkdtemp(prefix="pos-quickstart-"))

    # 2. The experiment: scripts (the steps) + variables (the instance).
    experiment = Experiment(
        name="quickstart",
        roles=[
            Role(
                name="loadgen",
                node="riga",
                setup=CommandScript("loadgen-setup", [
                    "ip link set eno1 up",
                    "ip link set eno2 up",
                    "pos barrier setup-done",
                ]),
                measurement=PythonScript("loadgen-measure", loadgen_measurement),
            ),
            Role(
                name="dut",
                node="tartu",
                setup=CommandScript("dut-setup", [
                    "sysctl -w net.ipv4.ip_forward=1",
                    "ip link set eno1 up",
                    "ip link set eno2 up",
                    "pos barrier setup-done",
                ]),
                measurement=PythonScript("dut-measure", dut_measurement),
            ),
        ],
        variables=Variables(
            loop_vars={"pkt_rate": [100_000, 500_000, 1_000_000]},
        ),
        duration_s=600.0,
        description="Quickstart: three-rate throughput sweep.",
    )

    # 3. Run: allocate -> boot live images -> setup -> measurement runs.
    handle = env.controller.run(
        experiment, setup_context_extra={"setup": env.setup}
    )
    print(f"results collected under: {handle.result_path}")
    print(f"runs: {handle.completed_runs} ok, {handle.failed_runs} failed")

    # 4. Evaluate: join outputs with per-run metadata and report.
    results = load_experiment(handle.result_path)
    print(f"\n{'offered [pps]':>14} {'rx [Mpps]':>10} {'loss':>7}")
    for run in results.runs:
        output = run.moongen()
        print(
            f"{run.loop['pkt_rate']:>14,} {output.rx_mpps:>10.4f} "
            f"{output.loss_fraction * 100:>6.2f}%"
        )


if __name__ == "__main__":
    main()
