"""Legacy setup shim: this offline environment lacks the ``wheel``
package, so PEP 517 editable installs fail; the presence of setup.py
lets ``pip install -e .`` fall back to ``setup.py develop``."""

from setuptools import setup

setup()
