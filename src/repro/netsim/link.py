"""Links and interconnect models.

pos isolates experiments by wiring hosts directly (R2).  Section 7 of
the paper quantifies the alternatives: an optical L1 switch adds a
constant delay below 15 ns, an L2 cut-through switch roughly 300 ns.
All three interconnects are modelled here so the isolation ablation and
the switch-latency bench can compare them.
"""

from __future__ import annotations

import random

from repro.core.errors import TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet

__all__ = [
    "DirectWire",
    "OpticalL1Switch",
    "CutThroughSwitchPort",
    "PROPAGATION_DELAY_PER_METER",
]

#: Signal propagation in copper/fibre, ~5 ns per metre.
PROPAGATION_DELAY_PER_METER = 5e-9


class DirectWire:
    """Point-to-point cable between exactly two NIC ports."""

    #: Extra constant delay introduced by the interconnect itself.
    switching_delay = 0.0

    def __init__(self, sim: Simulator, a: Nic, b: Nic, length_m: float = 2.0):
        if a is b:
            raise TopologyError("cannot wire a port to itself")
        self.sim = sim
        self.a = a
        self.b = b
        self.length_m = length_m
        self.propagation_delay = length_m * PROPAGATION_DELAY_PER_METER
        a.attach_link(self)
        b.attach_link(self)

    def peer(self, port: Nic) -> Nic:
        """The NIC on the far end of ``port``."""
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise TopologyError(f"port {port.name} is not an endpoint of this link")

    def constant_delay(self):
        """Constant carry delay, or ``None`` when delivery is stochastic.

        The declared replayability capability of a link: the batched
        fast path (:mod:`repro.netsim.fastpath`) compiles any link whose
        ``carry`` adds exactly this constant to every frame.  A subclass
        that overrides :meth:`carry` must also override this method (to
        vouch for the new behaviour, or to return ``None``), otherwise
        the compiler rejects it.
        """
        return self.propagation_delay + self.switching_delay

    def carry(self, sender: Nic, packet: Packet) -> None:
        """Propagate a fully-serialized frame to the peer port."""
        receiver = self.peer(sender)
        delay = self.propagation_delay + self.switching_delay
        self.sim.schedule(delay, receiver.deliver, packet)

    def describe(self) -> dict:
        """Topology description for the experiment inventory."""
        return {
            "kind": type(self).__name__,
            "endpoints": [self.a.name, self.b.name],
            "length_m": self.length_m,
            "switching_delay_s": self.switching_delay,
        }


class OpticalL1Switch(DirectWire):
    """Optical patch through an L1 switch: constant sub-15 ns offset.

    The paper cites Molex PXC systems with a forwarding-delay impact
    below 15 ns caused by the internal fibre path of the switch.
    """

    switching_delay = 14e-9


class CutThroughSwitchPort(DirectWire):
    """Path through a shared L2 cut-through switch.

    Adds ~300 ns of switching latency (Sella et al., cited in Sec. 7)
    and, unlike the L1 options, is *shared*: background traffic from
    other testbed users contends for the egress port, adding queueing
    jitter.  ``background_load`` in [0, 1) is the fraction of egress
    capacity consumed by foreign traffic.
    """

    switching_delay = 300e-9

    def __init__(
        self,
        sim: Simulator,
        a: Nic,
        b: Nic,
        length_m: float = 2.0,
        background_load: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(sim, a, b, length_m=length_m)
        if not 0.0 <= background_load < 1.0:
            raise TopologyError(
                f"background_load must be in [0, 1), got {background_load}"
            )
        self.background_load = background_load
        self._rng = random.Random(seed)

    def constant_delay(self):
        """Contended ports queue stochastically and are not replayable."""
        if self.background_load > 0.0:
            return None
        return self.propagation_delay + self.switching_delay

    def carry(self, sender: Nic, packet: Packet) -> None:
        receiver = self.peer(sender)
        delay = self.propagation_delay + self.switching_delay
        if self.background_load > 0.0:
            # M/M/1-style queueing jitter on the contended egress port:
            # mean waiting time grows with rho / (1 - rho) service times.
            rho = self.background_load
            service = packet.wire_bits / sender.line_rate_bps
            mean_wait = service * rho / (1.0 - rho)
            delay += self._rng.expovariate(1.0 / mean_wait) if mean_wait > 0 else 0.0
        self.sim.schedule(delay, receiver.deliver, packet)
