"""Multi-core forwarding with receive-side scaling (RSS).

The paper's DuT has two 12-core Xeons, yet the case study's single
flow exercises a single core — RSS hashes one flow onto one receive
queue.  This model makes that mechanism explicit: a
:class:`MultiCoreRouter` owns one service queue per core, frames are
steered to ``flow % cores``, and throughput scales with the number of
*distinct flows* up to the core count.  With one flow it degenerates to
exactly the single-core :class:`~repro.netsim.router.LinuxRouter`
behaviour that produces Fig. 3a.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.core.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet
from repro.netsim.router import BARE_METAL_PROFILE, LinuxRouter

__all__ = ["MultiCoreRouter"]


class MultiCoreRouter(LinuxRouter):
    """Linux router with ``cores`` independent RSS service queues."""

    #: Re-declared (not merely inherited): this class overrides the
    #: queueing behaviour of :class:`LinuxRouter`, so it must vouch for
    #: its own overrides to stay eligible for the batched fast path.
    deterministic_service = True

    def __init__(
        self,
        sim: Simulator,
        name: str = "dut",
        cores: int = 12,
        base_cost_s: float = BARE_METAL_PROFILE["base_cost_s"],
        per_byte_s: float = BARE_METAL_PROFILE["per_byte_s"],
        per_core_backlog: int = 1000,
        **router_kwargs,
    ):
        if cores < 1:
            raise SimulationError(f"need at least one core, got {cores}")
        super().__init__(
            sim,
            name,
            base_cost_s=base_cost_s,
            per_byte_s=per_byte_s,
            backlog_limit=per_core_backlog,
            **router_kwargs,
        )
        self.cores = cores
        self._core_backlogs: List[deque] = [deque() for __ in range(cores)]
        self._core_busy: List[bool] = [False] * cores
        self.per_core_forwarded = [0] * cores

    # -- RSS steering --------------------------------------------------------

    def core_for(self, packet: Packet) -> int:
        """RSS: a flow always hashes onto the same core."""
        return packet.flow % self.cores

    @property
    def backlog_depth(self) -> int:
        return sum(len(backlog) for backlog in self._core_backlogs)

    def _on_receive(self, port: Nic, packet: Packet) -> None:
        self.stats.received += 1
        if self.gate is not None and not self.gate():
            self.stats.backlog_dropped += 1
            return
        core = self.core_for(packet)
        backlog = self._core_backlogs[core]
        if len(backlog) >= self.backlog_limit:
            self.stats.backlog_dropped += 1
            return
        backlog.append((port, packet))
        if not self._core_busy[core] and not self.paused:
            self._core_busy[core] = True
            self._start_core(core)

    def _start_core(self, core: int) -> None:
        backlog = self._core_backlogs[core]
        if self.paused or not backlog:
            self._core_busy[core] = False
            return
        __, packet = backlog[0]
        self.sim.schedule(self.service_time(packet), self._finish_core, core)

    def _finish_core(self, core: int) -> None:
        backlog = self._core_backlogs[core]
        if not backlog:
            self._core_busy[core] = False
            return
        port, packet = backlog.popleft()
        packet.hops += 1
        out = self.output_port(port, packet)
        self.stats.forwarded += 1
        self.per_core_forwarded[core] += 1
        if out is not None:
            out.transmit(packet)
        if self.paused:
            self._core_busy[core] = False
            return
        self._start_core(core)

    def resume(self) -> None:
        if not self.paused:
            return
        # ForwardingDevice.resume touches the single-queue fields; the
        # multi-core variant restarts each stalled core instead.
        self._paused = False
        for core, backlog in enumerate(self._core_backlogs):
            if backlog and not self._core_busy[core]:
                self._core_busy[core] = True
                self._start_core(core)

    def clear(self) -> None:
        for backlog in self._core_backlogs:
            backlog.clear()
        self._core_busy = [False] * self.cores

    def describe(self) -> dict:
        info = super().describe()
        info["cores"] = self.cores
        return info
