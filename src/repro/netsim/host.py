"""Simulated Linux experiment host.

pos boots its experiment hosts from *live images*: every boot starts
from a pristine, versioned filesystem, so no state can leak between
experiments (R3).  :class:`SimHost` reproduces exactly that semantics —
``boot()`` throws away every mutation (files written, sysctls set,
interfaces configured) and reinstates the image's baseline.

Setup and measurement scripts interact with the host through a small
shell: a registry of built-in commands covering what the case study's
scripts need (``ip``, ``sysctl``, ``echo``, file I/O, inventory tools).
The shell is intentionally strict — unknown commands fail with exit
code 127 — because silently-succeeding configuration would defeat the
point of a reproducibility testbed.
"""

from __future__ import annotations

import shlex
import zlib as _zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import NodeError

__all__ = ["Interface", "CommandResult", "SimHost"]


@dataclass
class Interface:
    """A network interface of the simulated host."""

    name: str
    mac: str = ""
    up: bool = False
    addresses: List[str] = field(default_factory=list)
    nic: object = None  # the netsim Nic backing this interface, if any

    def reset(self) -> None:
        self.up = False
        self.addresses = []


@dataclass
class CommandResult:
    """Outcome of one shell command on a host."""

    command: str
    exit_code: int
    stdout: str

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


class SimHost:
    """A live-booted Linux host with a minimal, strict shell."""

    def __init__(
        self,
        name: str,
        interfaces: Optional[List[str]] = None,
        cpu_model: str = "Intel Xeon Silver 4214",
        cores: int = 12,
        memory_gb: int = 64,
    ):
        self.name = name
        self.cpu_model = cpu_model
        self.cores = cores
        self.memory_gb = memory_gb
        self.interfaces: Dict[str, Interface] = {}
        for index, iface_name in enumerate(interfaces or ["eno1", "eno2"]):
            self.interfaces[iface_name] = Interface(
                name=iface_name, mac=self._mac(index)
            )
        self.filesystem: Dict[str, str] = {}
        self.sysctl: Dict[str, str] = {}
        self.command_log: List[CommandResult] = []
        self.booted = False
        self.wedged = False
        self.image: Optional[str] = None
        self.image_version: Optional[str] = None
        self.kernel_version: str = ""
        self.boot_parameters: Dict[str, str] = {}
        self.boot_count = 0
        self._extra_commands: Dict[str, Callable[[List[str]], Tuple[int, str]]] = {}

    def _mac(self, index: int) -> str:
        # A process-independent digest: built-in str hashing is salted
        # per interpreter (PYTHONHASHSEED), which would give a worker
        # process different MACs than the parent — breaking the
        # byte-identical-artifacts guarantee across --jobs N.
        stem = _zlib.crc32(self.name.encode("utf-8")) % 0xFFFF
        return f"52:54:00:{stem >> 8:02x}:{stem & 0xFF:02x}:{index:02x}"

    # -- lifecycle ---------------------------------------------------------

    def boot(
        self,
        image: str,
        image_version: str,
        kernel_version: str = "4.19.0",
        boot_parameters: Optional[Dict[str, str]] = None,
    ) -> None:
        """Boot a live image: all previous state is discarded."""
        self.filesystem = {}
        self.sysctl = {"net.ipv4.ip_forward": "0"}
        for iface in self.interfaces.values():
            iface.reset()
        self.command_log = []
        self.image = image
        self.image_version = image_version
        self.kernel_version = kernel_version
        self.boot_parameters = dict(boot_parameters or {})
        self.booted = True
        self.wedged = False
        self.boot_count += 1

    def shutdown(self) -> None:
        """Power the host off."""
        self.booted = False

    def wedge(self) -> None:
        """Failure injection: the OS stops responding to the transport.

        Only an out-of-band power cycle (pos' initialization interface)
        can recover a wedged host — exactly requirement R3.
        """
        self.wedged = True

    @property
    def reachable(self) -> bool:
        """Whether in-band configuration (SSH) can reach the host."""
        return self.booted and not self.wedged

    # -- domain predicates ---------------------------------------------------

    @property
    def forwarding_enabled(self) -> bool:
        """True when the host is set up to route packets."""
        if not self.reachable:
            return False
        if self.sysctl.get("net.ipv4.ip_forward") != "1":
            return False
        return all(iface.up for iface in self.interfaces.values())

    def interfaces_up(self) -> bool:
        return all(iface.up for iface in self.interfaces.values())

    # -- files ---------------------------------------------------------------

    def write_file(self, path: str, content: str) -> None:
        if not self.reachable:
            raise NodeError(f"{self.name}: host not reachable")
        self.filesystem[path] = content

    def read_file(self, path: str) -> str:
        if not self.reachable:
            raise NodeError(f"{self.name}: host not reachable")
        if path not in self.filesystem:
            raise NodeError(f"{self.name}: no such file {path}")
        return self.filesystem[path]

    # -- shell -----------------------------------------------------------------

    def register_command(
        self, name: str, handler: Callable[[List[str]], Tuple[int, str]]
    ) -> None:
        """Add a host-specific command (used to expose tools like MoonGen)."""
        self._extra_commands[name] = handler

    def run_command(self, command: str) -> CommandResult:
        """Execute one shell command line; never raises for command errors."""
        if not self.reachable:
            raise NodeError(f"{self.name}: host not reachable")
        try:
            argv = shlex.split(command)
        except ValueError as exc:
            result = CommandResult(command, 2, f"parse error: {exc}")
            self.command_log.append(result)
            return result
        if not argv:
            result = CommandResult(command, 0, "")
            self.command_log.append(result)
            return result
        exit_code, stdout = self._dispatch(argv)
        result = CommandResult(command, exit_code, stdout)
        self.command_log.append(result)
        return result

    def _dispatch(self, argv: List[str]) -> Tuple[int, str]:
        name, args = argv[0], argv[1:]
        if name in self._extra_commands:
            return self._extra_commands[name](args)
        builtin = getattr(self, f"_cmd_{name.replace('-', '_')}", None)
        if builtin is None:
            return 127, f"{name}: command not found"
        return builtin(args)

    # -- builtin commands -------------------------------------------------------

    def _cmd_true(self, args: List[str]) -> Tuple[int, str]:
        return 0, ""

    def _cmd_false(self, args: List[str]) -> Tuple[int, str]:
        return 1, ""

    def _cmd_echo(self, args: List[str]) -> Tuple[int, str]:
        return 0, " ".join(args)

    def _cmd_hostname(self, args: List[str]) -> Tuple[int, str]:
        return 0, self.name

    def _cmd_uname(self, args: List[str]) -> Tuple[int, str]:
        if "-r" in args:
            return 0, self.kernel_version
        return 0, f"Linux {self.name} {self.kernel_version} x86_64 GNU/Linux"

    def _cmd_sleep(self, args: List[str]) -> Tuple[int, str]:
        if not args:
            return 1, "sleep: missing operand"
        try:
            float(args[0])
        except ValueError:
            return 1, f"sleep: invalid time interval '{args[0]}'"
        return 0, ""

    def _cmd_cat(self, args: List[str]) -> Tuple[int, str]:
        if not args:
            return 1, "cat: missing operand"
        chunks = []
        for path in args:
            if path not in self.filesystem:
                return 1, f"cat: {path}: No such file or directory"
            chunks.append(self.filesystem[path])
        return 0, "".join(chunks)

    def _cmd_write_file(self, args: List[str]) -> Tuple[int, str]:
        if len(args) < 1:
            return 1, "write-file: usage: write-file PATH [CONTENT…]"
        path, content = args[0], " ".join(args[1:])
        self.filesystem[path] = content
        return 0, ""

    def _cmd_rm(self, args: List[str]) -> Tuple[int, str]:
        paths = [arg for arg in args if not arg.startswith("-")]
        force = "-f" in args
        for path in paths:
            if path in self.filesystem:
                del self.filesystem[path]
            elif not force:
                return 1, f"rm: cannot remove '{path}': No such file or directory"
        return 0, ""

    def _cmd_sysctl(self, args: List[str]) -> Tuple[int, str]:
        if not args:
            return 1, "sysctl: missing operand"
        if args[0] == "-w":
            if len(args) < 2 or "=" not in args[1]:
                return 1, "sysctl: -w expects key=value"
            key, value = args[1].split("=", 1)
            self.sysctl[key] = value
            return 0, f"{key} = {value}"
        key = args[0]
        if key not in self.sysctl:
            return 255, f'sysctl: cannot stat /proc/sys/{key.replace(".", "/")}'
        return 0, f"{key} = {self.sysctl[key]}"

    def _cmd_ip(self, args: List[str]) -> Tuple[int, str]:
        if not args:
            return 1, "ip: missing object"
        obj = args[0]
        if obj == "link":
            return self._ip_link(args[1:])
        if obj in ("addr", "address"):
            return self._ip_addr(args[1:])
        return 1, f'ip: unknown object "{obj}"'

    def _ip_link(self, args: List[str]) -> Tuple[int, str]:
        if not args or args[0] == "show":
            lines = []
            for index, iface in enumerate(self.interfaces.values(), start=2):
                state = "UP" if iface.up else "DOWN"
                lines.append(
                    f"{index}: {iface.name}: <BROADCAST,MULTICAST> state {state}"
                )
                lines.append(f"    link/ether {iface.mac}")
            return 0, "\n".join(lines)
        if args[0] == "set":
            if len(args) < 3:
                return 1, "ip link set: usage: ip link set DEV up|down"
            dev, action = args[1], args[2]
            iface = self.interfaces.get(dev)
            if iface is None:
                return 1, f'Cannot find device "{dev}"'
            if action == "up":
                iface.up = True
            elif action == "down":
                iface.up = False
            else:
                return 1, f'ip link set: unknown action "{action}"'
            return 0, ""
        return 1, f'ip link: unknown command "{args[0]}"'

    def _ip_addr(self, args: List[str]) -> Tuple[int, str]:
        if not args or args[0] == "show":
            lines = []
            for iface in self.interfaces.values():
                for address in iface.addresses:
                    lines.append(f"    inet {address} dev {iface.name}")
            return 0, "\n".join(lines)
        if args[0] == "add":
            if len(args) < 4 or args[2] != "dev":
                return 1, "ip addr add: usage: ip addr add CIDR dev DEV"
            cidr, dev = args[1], args[3]
            iface = self.interfaces.get(dev)
            if iface is None:
                return 1, f'Cannot find device "{dev}"'
            if cidr in iface.addresses:
                return 2, "RTNETLINK answers: File exists"
            iface.addresses.append(cidr)
            return 0, ""
        return 1, f'ip addr: unknown command "{args[0]}"'

    def _cmd_ethtool(self, args: List[str]) -> Tuple[int, str]:
        if not args:
            return 1, "ethtool: missing device"
        iface = self.interfaces.get(args[0])
        if iface is None:
            return 1, f"Cannot get device settings: No such device {args[0]}"
        speed = "Unknown!"
        if iface.nic is not None:
            speed = f"{int(iface.nic.line_rate_bps / 1e6)}Mb/s"
        state = "yes" if iface.up else "no"
        return 0, (
            f"Settings for {args[0]}:\n\tSpeed: {speed}\n\tLink detected: {state}"
        )

    def _cmd_lscpu(self, args: List[str]) -> Tuple[int, str]:
        return 0, (
            f"Model name: {self.cpu_model}\n"
            f"CPU(s): {self.cores}\n"
            f"Thread(s) per core: 1"
        )

    def _cmd_free(self, args: List[str]) -> Tuple[int, str]:
        total_kb = self.memory_gb * 1024 * 1024
        return 0, f"Mem: {total_kb} total"

    def _cmd_modprobe(self, args: List[str]) -> Tuple[int, str]:
        if not args:
            return 1, "modprobe: missing module name"
        self.filesystem.setdefault("/proc/modules", "")
        self.filesystem["/proc/modules"] += args[0] + "\n"
        return 0, ""

    # -- inventory ----------------------------------------------------------------

    def describe(self) -> dict:
        """Hardware/software inventory recorded with every experiment (R5)."""
        return {
            "hostname": self.name,
            "cpu": self.cpu_model,
            "cores": self.cores,
            "memory_gb": self.memory_gb,
            "image": self.image,
            "image_version": self.image_version,
            "kernel": self.kernel_version,
            "boot_parameters": dict(self.boot_parameters),
            "interfaces": [
                {"name": iface.name, "mac": iface.mac, "up": iface.up}
                for iface in self.interfaces.values()
            ],
        }
