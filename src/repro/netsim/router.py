"""Forwarding-device models, including the Linux router DuT.

The case study's device under test is "the Linux router": a Debian
machine forwarding packets between its two NIC ports.  Its throughput
ceiling on bare metal is CPU-bound for small frames (~1.75 Mpps on the
paper's Xeon Silver 4214) and line-rate-bound for 1500 B frames
(10 Gbit/s ≈ 0.82 Mpps).  We model the data path as a single-server
queue per device: frames received on a port enter a bounded softirq
backlog and are serviced one at a time with a size-dependent service
time, then transmitted on the opposite port.

A single traffic flow hashes onto a single RX queue and therefore a
single core, which is why the bare-metal ceiling reflects one core's
throughput even on a 12-core machine — the same effect the original
measurements exhibit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional


from repro.core.errors import SimulationError, TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet

__all__ = ["ForwardingStats", "ForwardingDevice", "LinuxRouter", "BARE_METAL_PROFILE"]


class ForwardingStats:
    """Counters for a forwarding device."""

    def __init__(self) -> None:
        self.received = 0
        self.forwarded = 0
        self.backlog_dropped = 0

    def snapshot(self) -> dict:
        return {
            "received": self.received,
            "forwarded": self.forwarded,
            "backlog_dropped": self.backlog_dropped,
        }


class ForwardingDevice:
    """Single-server store-and-forward element with a bounded backlog.

    Subclasses define the per-packet service time and may override the
    output-port decision.  The device can be *paused* (used by the
    hypervisor model to preempt a VM's vCPU): while paused, arriving
    frames still enter the backlog, but no service completions happen.
    """

    #: Declared replayability capability.  A class sets this to True to
    #: vouch that its per-packet service time is a pure function of the
    #: frame size (no RNG, no time dependence, no hidden state), which
    #: lets the batched fast path (:mod:`repro.netsim.fastpath`) replay
    #: it analytically.  The vouch covers exactly the queueing behaviour
    #: defined at or above the declaring class: a subclass that
    #: overrides any behaviour method without re-declaring the
    #: capability is rejected by the compiler and falls back to the
    #: event path.
    deterministic_service = False

    def __init__(
        self,
        sim: Simulator,
        name: str,
        backlog_limit: int = 1000,
    ):
        self.sim = sim
        self.name = name
        self.backlog_limit = backlog_limit
        self.stats = ForwardingStats()
        #: Optional admission gate: when set and returning False, received
        #: frames are dropped.  The testbed layer wires this to the host's
        #: ``net.ipv4.ip_forward`` sysctl and interface state so that an
        #: incomplete setup script visibly breaks the experiment.
        self.gate: Optional[Callable[[], bool]] = None
        self.ports: List[Nic] = []
        self._backlog: deque = deque()
        self._busy = False
        self._paused = False
        self._pause_resume_pending = False

    # -- wiring ------------------------------------------------------------

    def add_port(self, nic: Nic) -> Nic:
        """Attach a NIC port; its received frames feed this device."""
        nic.set_rx_handler(lambda packet, port=nic: self._on_receive(port, packet))
        nic.rx_owner = self
        self.ports.append(nic)
        return nic

    def output_port(self, in_port: Nic, packet: Packet) -> Optional[Nic]:
        """Pick the egress port.  Default: the *other* port of a 2-port box."""
        if len(self.ports) != 2:
            raise TopologyError(
                f"{self.name}: default forwarding needs exactly 2 ports, "
                f"has {len(self.ports)}"
            )
        return self.ports[1] if in_port is self.ports[0] else self.ports[0]

    # -- service model -----------------------------------------------------

    def service_time(self, packet: Packet) -> float:
        """Per-packet processing time; subclasses must implement."""
        raise NotImplementedError

    def pause(self) -> None:
        """Preempt the device's CPU (hypervisor descheduled the vCPU)."""
        self._paused = True

    def resume(self) -> None:
        """Give the CPU back; queued work continues."""
        if not self._paused:
            return
        self._paused = False
        if not self._busy and self._backlog:
            self._busy = True
            self._start_service()

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def backlog_depth(self) -> int:
        return len(self._backlog)

    def _on_receive(self, port: Nic, packet: Packet) -> None:
        self.stats.received += 1
        if self.gate is not None and not self.gate():
            self.stats.backlog_dropped += 1
            return
        if len(self._backlog) >= self.backlog_limit:
            self.stats.backlog_dropped += 1
            return
        self._backlog.append((port, packet))
        if not self._busy and not self._paused:
            self._busy = True
            self._start_service()

    def _start_service(self) -> None:
        if self._paused or not self._backlog:
            self._busy = False
            return
        port, packet = self._backlog[0]
        self.sim.schedule(self.service_time(packet), self._finish_service)

    def _finish_service(self) -> None:
        if not self._backlog:
            # Backlog was cleared externally (e.g. host reboot mid-service).
            self._busy = False
            return
        port, packet = self._backlog.popleft()
        packet.hops += 1
        out = self.output_port(port, packet)
        self.stats.forwarded += 1
        if out is not None:
            out.transmit(packet)
        if self._paused:
            self._busy = False
            return
        self._start_service()

    def clear(self) -> None:
        """Drop all queued work (models a reboot of the hosting node)."""
        self._backlog.clear()
        self._busy = False

    def describe(self) -> dict:
        """Device description for the experiment inventory."""
        return {
            "name": self.name,
            "model": type(self).__name__,
            "backlog_limit": self.backlog_limit,
            "ports": [port.describe() for port in self.ports],
        }


#: Calibrated against the paper's DuT (2x Xeon Silver 4214, kernel 4.19):
#: ~571 ns base cost per forwarded packet gives the measured 1.75 Mpps
#: ceiling at 64 B; the small per-byte term keeps 1500 B forwarding
#: comfortably above the 10 G line rate, so larger frames stay
#: bandwidth-limited exactly as in Fig. 3a.
BARE_METAL_PROFILE = {
    "base_cost_s": 1.0 / 1.75e6,
    "per_byte_s": 2.0e-11,
}


class LinuxRouter(ForwardingDevice):
    """Bare-metal Linux router forwarding between its two ports.

    Besides the linear cost model, the router reproduces a *robustness
    cliff* of real NIC drivers: a frame larger than one receive buffer
    (``rx_buffer_bytes``) spans multiple descriptors and pays
    ``extra_descriptor_cost_s`` for each additional one.  Crossing the
    buffer size by a single byte therefore drops throughput in a step —
    the kind of low-robustness behaviour Zilberman's NDP artifact study
    (cited in Sec. 2 of the paper) observed when nudging packet sizes.
    With the default 2 KiB buffers the cliff sits above standard frame
    sizes and the model is purely linear.
    """

    #: The service time is a pure function of the frame size.
    deterministic_service = True

    def __init__(
        self,
        sim: Simulator,
        name: str = "dut",
        base_cost_s: float = BARE_METAL_PROFILE["base_cost_s"],
        per_byte_s: float = BARE_METAL_PROFILE["per_byte_s"],
        backlog_limit: int = 1000,
        rx_buffer_bytes: int = 2048,
        extra_descriptor_cost_s: float = 250e-9,
    ):
        super().__init__(sim, name, backlog_limit=backlog_limit)
        if base_cost_s <= 0:
            raise SimulationError("base_cost_s must be positive")
        if rx_buffer_bytes <= 0:
            raise SimulationError("rx_buffer_bytes must be positive")
        self.base_cost_s = base_cost_s
        self.per_byte_s = per_byte_s
        self.rx_buffer_bytes = rx_buffer_bytes
        self.extra_descriptor_cost_s = extra_descriptor_cost_s
        #: Effective clock multiplier; firmware settings (turbo boost,
        #: C-states) scale the per-packet cost through this knob.
        self.frequency_scale = 1.0

    def descriptors_for(self, frame_size: int) -> int:
        """Receive descriptors a frame of this size occupies."""
        return (frame_size + self.rx_buffer_bytes - 1) // self.rx_buffer_bytes

    def service_time(self, packet: Packet) -> float:
        if self.frequency_scale <= 0:
            raise SimulationError(
                f"frequency_scale must be positive, got {self.frequency_scale}"
            )
        extra = self.descriptors_for(packet.frame_size) - 1
        return (
            self.base_cost_s
            + self.per_byte_s * packet.frame_size
            + extra * self.extra_descriptor_cost_s
        ) / self.frequency_scale

    def describe(self) -> dict:
        info = super().describe()
        info["base_cost_s"] = self.base_cost_s
        info["per_byte_s"] = self.per_byte_s
        info["rx_buffer_bytes"] = self.rx_buffer_bytes
        return info
