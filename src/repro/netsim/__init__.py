"""Discrete-event network simulation substrate.

Replaces the paper's physical hardware: NICs, links, switches, the
Linux-router DuT model, the virtualization overlay, and the simulated
live-booted Linux hosts pos manages.
"""

from repro.netsim.bridge import LinuxBridge
from repro.netsim.engine import Event, PeriodicTimer, Process, Simulator
from repro.netsim.host import CommandResult, Interface, SimHost
from repro.netsim.link import CutThroughSwitchPort, DirectWire, OpticalL1Switch
from repro.netsim.nic import HardwareNic, Nic, NicStats, VirtioNic
from repro.netsim.packet import (
    ETHERNET_OVERHEAD_BYTES,
    MAX_FRAME_SIZE,
    MIN_FRAME_SIZE,
    Packet,
    line_rate_pps,
    wire_bits,
)
from repro.netsim.asicswitch import AsicSwitch, attach_http_control
from repro.netsim.multicore import MultiCoreRouter
from repro.netsim.router import BARE_METAL_PROFILE, ForwardingDevice, LinuxRouter
from repro.netsim.vm import VM_PROFILE, Hypervisor, VirtualizedLinuxRouter

__all__ = [
    "LinuxBridge",
    "Event",
    "PeriodicTimer",
    "Process",
    "Simulator",
    "CommandResult",
    "Interface",
    "SimHost",
    "CutThroughSwitchPort",
    "DirectWire",
    "OpticalL1Switch",
    "HardwareNic",
    "Nic",
    "NicStats",
    "VirtioNic",
    "ETHERNET_OVERHEAD_BYTES",
    "MAX_FRAME_SIZE",
    "MIN_FRAME_SIZE",
    "Packet",
    "line_rate_pps",
    "wire_bits",
    "BARE_METAL_PROFILE",
    "ForwardingDevice",
    "LinuxRouter",
    "MultiCoreRouter",
    "AsicSwitch",
    "attach_http_control",
    "VM_PROFILE",
    "Hypervisor",
    "VirtualizedLinuxRouter",
]
