"""Network interface card model.

A :class:`Nic` serializes frames onto an attached link at its configured
line rate and delivers received frames to a handler.  Transmit and
receive sides each have a bounded descriptor ring; frames arriving at a
full ring are dropped and counted, which is the loss mechanism behind
the case study's throughput ceilings.

The model distinguishes *hardware* NICs (e.g. the Intel 82599 of the
paper's DuT), which support hardware timestamping and therefore latency
measurements, from *paravirtual* NICs (virtio in the vpos VMs), which do
not — mirroring Appendix A: "in our VM, we cannot generate latency
measurements, due to the limited hardware support".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.errors import SimulationError, TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet

__all__ = ["NicStats", "Nic", "HardwareNic", "VirtioNic"]


class NicStats:
    """Per-NIC counters mirroring what ethtool would report."""

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_dropped = 0
        self.rx_dropped = 0

    def snapshot(self) -> dict:
        """Counters as a plain dict for result files."""
        return {
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
            "tx_dropped": self.tx_dropped,
            "rx_dropped": self.rx_dropped,
        }


class Nic:
    """A single network port with bounded TX/RX rings.

    ``transmit`` enqueues a frame for serialization; the frame reaches
    the peer after the serialization delay dictated by the line rate
    plus the link's propagation delay.  ``deliver`` is called by the
    link when a frame arrives; it hands the frame to the receive handler
    installed by the owning device.
    """

    #: Whether MoonGen-style hardware timestamping is available.
    supports_timestamping = False

    def __init__(
        self,
        sim: Simulator,
        name: str,
        line_rate_bps: float = 10e9,
        tx_ring_size: int = 512,
        rx_ring_size: int = 512,
    ):
        if line_rate_bps <= 0:
            raise SimulationError(f"line rate must be positive, got {line_rate_bps}")
        self.sim = sim
        self.name = name
        self.line_rate_bps = line_rate_bps
        self.tx_ring_size = tx_ring_size
        self.rx_ring_size = rx_ring_size
        self.stats = NicStats()
        self.link = None  # type: Optional["object"]
        #: The device consuming this port's received frames (a forwarding
        #: device or a load generator).  Purely informational: the batched
        #: fast path uses it to discover whether a topology chain is
        #: analytically replayable (:mod:`repro.netsim.fastpath`).
        self.rx_owner: Optional[object] = None
        self._tx_queue: deque = deque()
        self._tx_busy = False
        self._rx_handler: Optional[Callable[[Packet], None]] = None
        self._rx_backlog = 0

    def attach_link(self, link) -> None:
        """Connect this port to a link endpoint.  One link per port."""
        if self.link is not None:
            raise TopologyError(f"port {self.name} already wired to a link")
        self.link = link

    def set_rx_handler(self, handler: Callable[[Packet], None]) -> None:
        """Install the device-side receive callback."""
        self._rx_handler = handler

    # -- transmit path ---------------------------------------------------

    def transmit(self, packet: Packet) -> bool:
        """Queue a frame for transmission.

        Returns False (and counts a drop) when the TX ring is full or the
        port is not wired.
        """
        if self.link is None:
            self.stats.tx_dropped += 1
            return False
        if len(self._tx_queue) >= self.tx_ring_size:
            self.stats.tx_dropped += 1
            return False
        self._tx_queue.append(packet)
        if not self._tx_busy:
            self._tx_busy = True
            self._serialize_next()
        return True

    def _serialize_next(self) -> None:
        if not self._tx_queue:
            self._tx_busy = False
            return
        packet = self._tx_queue.popleft()
        delay = packet.wire_bits / self.line_rate_bps
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.frame_size
        self.sim.schedule(delay, self._finish_serialization, packet)

    def _finish_serialization(self, packet: Packet) -> None:
        if self.link is not None:
            self.link.carry(self, packet)
        self._serialize_next()

    # -- receive path ----------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a frame arrives at this port."""
        if self._rx_backlog >= self.rx_ring_size or self._rx_handler is None:
            self.stats.rx_dropped += 1
            return
        self.stats.rx_packets += 1
        self.stats.rx_bytes += packet.frame_size
        self._rx_handler(packet)

    def rx_backlog_add(self, count: int = 1) -> None:
        """Devices servicing the ring asynchronously report backlog here."""
        self._rx_backlog += count

    def rx_backlog_remove(self, count: int = 1) -> None:
        """Inverse of :meth:`rx_backlog_add`."""
        self._rx_backlog = max(0, self._rx_backlog - count)

    def describe(self) -> dict:
        """Hardware description recorded in the experiment inventory."""
        return {
            "name": self.name,
            "model": type(self).__name__,
            "line_rate_bps": self.line_rate_bps,
            "tx_ring_size": self.tx_ring_size,
            "rx_ring_size": self.rx_ring_size,
            "timestamping": self.supports_timestamping,
        }


class HardwareNic(Nic):
    """Physical NIC (Intel 82599 class): hardware timestamping available."""

    supports_timestamping = True


class VirtioNic(Nic):
    """Paravirtual NIC as seen inside a vpos VM: no hardware timestamps.

    The advertised line rate of virtio devices is nominal; the actual
    ceiling comes from the virtualization CPU cost modelled in
    :mod:`repro.netsim.vm`.
    """

    supports_timestamping = False

    def __init__(self, sim: Simulator, name: str, line_rate_bps: float = 10e9, **kwargs):
        super().__init__(sim, name, line_rate_bps=line_rate_bps, **kwargs)
