"""Batched packet-event fast path: DAG compiler + array-at-a-time kernel.

The discrete-event engine schedules roughly six Python-level events per
generated packet, so a Fig. 3 sweep costs ``rates x sizes x packets``
heap operations and callback dispatches.  For every topology the case
studies measure — a load generator wired through deterministic
store-and-forward elements and back — those events are analytically
predictable: the network between the generator's TX and RX ports is a
*feed-forward DAG of FIFO stages* with constant per-stage delays, so
each packet's full trajectory follows from Lindley-style recurrences
over the packets sent before it.

:func:`compile_dag` walks the wiring from the TX port and emits a
:class:`DagSpec` — a stage table of serialization, FIFO-service,
RSS-fan-out and match-action stages — when every hop declares the
*deterministic-service capability* (``deterministic_service`` on
devices, ``constant_delay()`` on links).  Eligibility is declared, not
hard-coded: a :class:`~repro.netsim.router.LinuxRouter` subclass with a
different (but still size-pure) cost model compiles as long as it
re-declares the capability for its own overrides; a subclass that
overrides behaviour below the declaring class is rejected and falls
back to the event path.

:func:`run_batched` replays one whole measurement job through the
stage table *array-at-a-time*: the send loop materializes the batch
into flat parallel arrays (departure time, send time, latency-sampled
flag, flow id), then every stage makes one pass over the arrays,
compacting dropped frames — no heap, no callbacks, no per-packet
``Packet`` allocations.  Consecutive runs that share a compiled
topology (a rate x size sweep on one world) reuse both the spec and
the preallocated arrays through :func:`acquire_dag`, which re-verifies
quiescence instead of recompiling; ``fastpath.spec_reuse`` counts the
vectorized-sweep engagements.

The replay reproduces the event engine's arithmetic exactly:

* send times and interval boundaries accumulate iteratively
  (``t += gap``, ``boundary += interval_s``), like the event chain
  does, so float rounding matches bit for bit;
* TX-ring occupancy uses the pop-at-serialization-start semantics of
  :class:`~repro.netsim.nic.Nic`, device backlogs the
  pop-at-completion semantics of
  :class:`~repro.netsim.router.ForwardingDevice`;
* RSS completions from different cores are merged back into egress
  arrival order on (completion time, service start, arrival index) —
  the earlier-started service's finish event entered the heap first
  and wins the tie;
* latency samples, per-interval counters, NIC statistics and device
  statistics are accounted under the same conditions as the event path
  (a frame arriving at or after the job deadline is not counted
  against the job because the job's finish event wins the heap tie,
  interval boundaries roll on ``now >= boundary`` capped at the
  deadline, the send sequence number advances even for ring-dropped
  frames, the Poisson RNG is drawn once per send after the send, a
  bridge's FDB learns the flow's source exactly when a frame completes
  service).

Ineligible topologies — stochastic service times, undeclared
overrides, contended cut-through switch ports, flooding multi-port
bridges — silently fall back to the legacy per-packet event path,
which remains the semantic reference.  ``POS_NETSIM_BATCH=0`` disables
the fast path globally, which is how the equivalence tests and
benchmarks pit the two implementations against each other.

The fast path computes the *fully drained* end state: every frame in
flight at the deadline is followed to its terminal stage.  The DAG's
queues are bounded and its service times deterministic, so the
residual drain spans at most a few milliseconds of simulated time —
far below the drain window every caller in this repository runs the
simulator for — which makes the drained state and the event path's
post-run state identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.envcache import EnvSwitch
from repro.loadgen.moongen import IntervalStats
from repro.netsim.asicswitch import PIPELINE_LATENCY_S, AsicSwitch
from repro.netsim.bridge import LinuxBridge
from repro.netsim.multicore import MultiCoreRouter
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet, wire_bits
from repro.netsim.router import ForwardingDevice
from repro.telemetry import context as _telemetry

__all__ = [
    "DagSpec",
    "StageSpec",
    "compile_dag",
    "acquire_dag",
    "run_batched",
    "enabled",
]

#: Whether the batched path may engage (``POS_NETSIM_BATCH`` != 0).
#: Resolved once per world (:mod:`repro.core.envcache`), not per job.
enabled = EnvSwitch("POS_NETSIM_BATCH")

#: Feed-forward walk depth bound: a path longer than this is not a
#: measurement chain (and might be a wiring loop).
_MAX_HOPS = 64

#: Behaviour methods the capability declaration vouches for: each must
#: be defined at or above the class declaring ``deterministic_service``.
_DEVICE_METHODS = (
    "service_time",
    "output_port",
    "_on_receive",
    "_start_service",
    "_finish_service",
    "_start_core",
    "_finish_core",
    "core_for",
    "backlog_depth",
    "pause",
    "resume",
    "clear",
)

_capability_cache: Dict[type, bool] = {}
_link_cache: Dict[type, bool] = {}


def _defining_class(cls: type, name: str) -> Optional[type]:
    """The class in ``cls``'s MRO that defines attribute ``name``."""
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


def _device_capability(cls: type) -> bool:
    """Whether ``cls`` declared the deterministic-service capability.

    The first class in the MRO that *declares*
    ``deterministic_service`` must declare it truthy, and every
    behaviour method must be defined at or above that declarer —
    overriding behaviour below the declaration silently voids it.
    """
    cached = _capability_cache.get(cls)
    if cached is not None:
        return cached
    declarer = _defining_class(cls, "deterministic_service")
    ok = declarer is not None and bool(vars(declarer)["deterministic_service"])
    if ok:
        allowed = set(declarer.__mro__)
        for name in _DEVICE_METHODS:
            defining = _defining_class(cls, name)
            if defining is not None and defining not in allowed:
                ok = False
                break
    _capability_cache[cls] = ok
    return ok


def _link_replayable(cls: type) -> bool:
    """Whether a link class's ``carry`` is vouched by ``constant_delay``."""
    cached = _link_cache.get(cls)
    if cached is not None:
        return cached
    declarer = _defining_class(cls, "constant_delay")
    ok = declarer is not None
    if ok:
        allowed = set(declarer.__mro__)
        for name in ("carry", "peer"):
            defining = _defining_class(cls, name)
            if defining is not None and defining not in allowed:
                ok = False
                break
    _link_cache[cls] = ok
    return ok


def _link_delay(link) -> Optional[float]:
    """Constant carry delay of a link, or None when not replayable."""
    if link is None or not _link_replayable(type(link)):
        return None
    return link.constant_delay()


@dataclass
class StageSpec:
    """One stage of a compiled feed-forward path.

    Kinds: ``serialize`` (a NIC's TX ring + line-rate serialization,
    followed by ``post_delay_s`` of constant wire delay), ``fifo`` (a
    single-server :class:`ForwardingDevice` queue), ``rss`` (a
    :class:`MultiCoreRouter`'s per-core FIFO fan-out), ``asic`` (a
    match-action pipeline with constant latency).
    """

    kind: str
    nic: Optional[Nic] = None
    post_delay_s: float = 0.0
    device: Optional[object] = None
    ingress: Optional[Nic] = None
    learns_src: bool = False


class _Scratch:
    """Preallocated parallel arrays, reused across runs sharing a spec.

    ``main`` holds the live batch (departure time, send time, sampled
    flag, flow id); ``alt`` is the spare set the RSS merge permutes
    into before swapping.  Lists only ever grow, so the second run of
    a sweep replays entirely inside the first run's allocations.
    """

    __slots__ = ("_main", "_alt")

    def __init__(self):
        self._main = ([], [], [], [])
        self._alt = ([], [], [], [])

    @property
    def main(self):
        return self._main

    @property
    def alt(self):
        return self._alt

    def swap(self) -> None:
        self._main, self._alt = self._alt, self._main


@dataclass
class DagSpec:
    """A compiled, analytically replayable feed-forward measurement DAG."""

    owner: object
    tx_nic: Nic
    tx_post_delay_s: float
    rx_nic: Nic
    stages: List[StageSpec]
    scratch: _Scratch = field(default_factory=_Scratch, repr=False)
    #: How many runs re-engaged this spec (the vectorized sweep path).
    #: Deliberately not a telemetry metric: reuse depends on execution
    #: history (which runs shared a world), and per-run telemetry must
    #: stay a pure function of the run for serial-vs-parallel identity.
    reuse_count: int = 0

    @property
    def devices(self) -> List[object]:
        return [s.device for s in self.stages if s.device is not None]


def _nic_quiescent(nic: Nic) -> bool:
    return not nic._tx_queue and not nic._tx_busy


def _ingress_ready(nic: Nic) -> bool:
    return nic._rx_handler is not None and not nic._rx_backlog


def _device_quiescent(device) -> bool:
    if device.backlog_depth or getattr(device, "paused", False):
        return False
    if getattr(device, "_busy", False):
        return False
    core_busy = getattr(device, "_core_busy", None)
    if core_busy and any(core_busy):
        return False
    return True


def compile_dag(moongen) -> Optional[DagSpec]:
    """Discover whether ``moongen``'s traffic path is a replayable DAG.

    Walks the wiring hop by hop from the TX port: every link must
    declare a constant carry delay, every device the
    deterministic-service capability, every queue must be idle and
    empty (so the recurrences start from the same blank state a fresh
    run does), and the path must terminate at the generator's RX port.
    Returns None — event path — on the first hop that does not qualify.
    """
    tx, rx = moongen.tx_nic, moongen.rx_nic
    if tx is rx or getattr(rx, "rx_owner", None) is not moongen:
        return None
    if not _ingress_ready(rx):
        return None
    dst_key = rx.name
    stages: List[StageSpec] = []
    seen: set = set()
    nic = tx
    tx_post_delay = None
    for __ in range(_MAX_HOPS):
        if not _nic_quiescent(nic):
            return None
        delay = _link_delay(nic.link)
        if delay is None:
            return None
        try:
            peer = nic.link.peer(nic)
        except Exception:  # noqa: BLE001 - exotic link without a peer
            return None
        if tx_post_delay is None:
            tx_post_delay = delay
        else:
            stages.append(StageSpec(kind="serialize", nic=nic, post_delay_s=delay))
        if peer is rx:
            return DagSpec(
                owner=moongen,
                tx_nic=tx,
                tx_post_delay_s=tx_post_delay,
                rx_nic=rx,
                stages=stages,
            )
        owner = getattr(peer, "rx_owner", None)
        if owner is None or id(owner) in seen:
            return None
        seen.add(id(owner))
        if not _ingress_ready(peer):
            return None
        if isinstance(owner, AsicSwitch):
            if not _device_capability(type(owner)):
                return None
            if _defining_class(type(owner), "_process") is not AsicSwitch:
                return None
            if peer not in owner.ports:
                return None
            ingress_index = owner.ports.index(peer)
            egress_index = owner._table.get(dst_key)
            if egress_index is None or egress_index == ingress_index:
                return None
            stages.append(StageSpec(kind="asic", device=owner, ingress=peer))
            nic = owner.ports[egress_index]
        elif isinstance(owner, ForwardingDevice):
            if not _device_capability(type(owner)):
                return None
            if not _device_quiescent(owner):
                return None
            cls = type(owner)
            # The replay kernel models exactly two queueing disciplines
            # and two routing functions; anything else — even if
            # capability-declared — is unknown semantics.
            receive_def = _defining_class(cls, "_on_receive")
            output_def = _defining_class(cls, "output_port")
            if output_def not in (ForwardingDevice, LinuxBridge):
                return None
            if len(owner.ports) != 2 or peer not in owner.ports:
                return None
            egress = owner.ports[1] if peer is owner.ports[0] else owner.ports[0]
            if receive_def is ForwardingDevice:
                if _defining_class(cls, "_start_service") is not ForwardingDevice:
                    return None
                if _defining_class(cls, "_finish_service") is not ForwardingDevice:
                    return None
                stages.append(StageSpec(
                    kind="fifo", device=owner, ingress=peer,
                    learns_src=output_def is LinuxBridge,
                ))
            elif receive_def is MultiCoreRouter:
                for name in ("_start_core", "_finish_core", "core_for"):
                    if _defining_class(cls, name) is not MultiCoreRouter:
                        return None
                stages.append(StageSpec(
                    kind="rss", device=owner, ingress=peer,
                    learns_src=output_def is LinuxBridge,
                ))
            else:
                return None
            nic = egress
        else:
            return None
    return None


def _same_dag(cached: DagSpec, fresh: DagSpec) -> bool:
    """Whether a freshly compiled spec matches a cached one structurally."""
    if cached.tx_nic is not fresh.tx_nic or cached.rx_nic is not fresh.rx_nic:
        return False
    if cached.tx_post_delay_s != fresh.tx_post_delay_s:
        return False
    if len(cached.stages) != len(fresh.stages):
        return False
    for a, b in zip(cached.stages, fresh.stages):
        if (
            a.kind != b.kind
            or a.nic is not b.nic
            or a.post_delay_s != b.post_delay_s
            or a.device is not b.device
            or a.ingress is not b.ingress
            or a.learns_src != b.learns_src
        ):
            return False
    return True


def acquire_dag(moongen) -> Optional[DagSpec]:
    """Cached spec when the topology is unchanged, else a fresh compile.

    The compile walk re-runs every time (it doubles as the quiescence
    and eligibility re-verification — a re-wired link, a changed
    match-action rule or a busy queue all surface there), but when the
    result matches the cached spec structurally the *cached* spec is
    returned, keeping its preallocated replay arrays warm.  That reuse
    is what engages the vectorized sweep variant: every run of a
    rate x size sweep after the first replays entirely inside the first
    run's allocations.  ``DagSpec.reuse_count`` counts the engagements.
    """
    fresh = compile_dag(moongen)
    if fresh is None:
        moongen._dag_spec = None
        return None
    spec = getattr(moongen, "_dag_spec", None)
    if spec is not None and spec.owner is moongen and _same_dag(spec, fresh):
        spec.reuse_count += 1
        return spec
    moongen._dag_spec = fresh
    return fresh


def run_batched(moongen, job, spec: DagSpec) -> None:
    """Replay one whole measurement job through ``spec`` stage by stage.

    Mutates ``job`` (counters, intervals, latency samples) and every
    stage's statistics exactly as the event path would have after the
    run fully drained.  Called by ``MoonGen.start`` right after the job
    state was initialized; the job's finish event stays scheduled, so
    overlap detection and ``finished`` timing are unchanged.

    Telemetry is strictly O(1) per batch — one counter, one span whose
    wall-clock profile feeds the overhead benchmark — so the tight
    replay loops themselves carry zero instrumentation.
    """
    collector = _telemetry.current()
    if collector is None:
        _replay_dag(moongen, job, spec)
        return
    collector.count("fastpath.batches")
    span = collector.begin(
        "fastpath.batch", rate_pps=job.rate_pps, frame_size=job.frame_size,
        stages=len(spec.stages) + 1,
    )
    try:
        with span.profile():
            _replay_dag(moongen, job, spec)
    finally:
        collector.finish(span)


def _put(buf: list, index: int, value) -> None:
    if index < len(buf):
        buf[index] = value
    else:
        buf.append(value)


def _replay_dag(moongen, job, spec: DagSpec) -> None:
    deadline = moongen._deadline
    timestamping = job.timestamping
    sample_every = moongen.latency_sample_every
    poisson = job.pattern == "poisson"
    rng = moongen._rng
    flows = job.flows
    frame = job.frame_size
    rate = job.rate_pps
    bits = wire_bits(frame)
    probe = Packet(
        seq=0, frame_size=frame, flow=0,
        src=spec.tx_nic.name, dst=spec.rx_nic.name,
    )

    scratch = spec.scratch
    times, t_send, sampled_a, flow_a = scratch.main

    # Interval attribution.  The event path rolls one shared boundary
    # cursor in global time order; attribution is therefore a pure
    # function of the event's time.  We replay it with two independent
    # cursors (sends are visited in send order, receives in arrival
    # order, which runs ahead of the sends that produced them) plus one
    # creation cursor appending IntervalStats in boundary order — all
    # three accumulate ``+= interval_s`` from the same start, so they
    # yield bit-identical boundary floats at equal indices.
    intervals = job.intervals
    interval_s = job.interval_s
    tx_boundary = moongen._next_interval_end
    rx_boundary = tx_boundary
    create_boundary = tx_boundary
    tx_idx = 0
    rx_idx = 0

    # -- send loop + first TX stage (ring + serialization) ---------------
    tx_nic = spec.tx_nic
    tx_delay = bits / tx_nic.line_rate_bps
    tx_ring = tx_nic.tx_ring_size
    tx_stats = tx_nic.stats
    post = spec.tx_post_delay_s
    tx_free = -1.0
    tx_pops: deque = deque()

    n = 0
    t = moongen.sim.now
    seq = moongen._seq
    while t < deadline:
        while t >= tx_boundary and tx_boundary <= deadline:
            tx_boundary += interval_s
            tx_idx += 1
        while len(intervals) <= tx_idx:
            intervals.append(IntervalStats(start=create_boundary))
            create_boundary += interval_s
        sampled = timestamping and seq % sample_every == 0
        flow = seq % flows
        seq += 1

        while tx_pops and tx_pops[0] <= t:
            tx_pops.popleft()
        if len(tx_pops) >= tx_ring:
            tx_stats.tx_dropped += 1
        else:
            start = t if t >= tx_free else tx_free
            finish = start + tx_delay
            tx_pops.append(start)
            tx_free = finish
            tx_stats.tx_packets += 1
            tx_stats.tx_bytes += frame
            job.tx_packets += 1
            job.tx_bytes += frame
            interval = intervals[tx_idx]
            interval.tx_packets += 1
            interval.tx_bytes += frame
            _put(times, n, finish + post)
            _put(t_send, n, t)
            _put(sampled_a, n, sampled)
            _put(flow_a, n, flow)
            n += 1

        gap = rng.expovariate(rate) if poisson else 1.0 / rate
        t = t + gap
    moongen._seq = seq

    # -- one pass per compiled stage --------------------------------------
    for stage in spec.stages:
        if n == 0:
            break
        kind = stage.kind
        if kind == "serialize":
            n = _pass_serialize(stage, scratch, n, bits, frame)
        elif kind == "fifo":
            n = _pass_fifo(stage, scratch, n, probe, frame)
        elif kind == "rss":
            n = _pass_rss(stage, scratch, n, probe, frame)
        else:
            n = _pass_asic(stage, scratch, n, frame)
        times, t_send, sampled_a, flow_a = scratch.main

    # -- RX sink -----------------------------------------------------------
    rx_stats = spec.rx_nic.stats
    samples = job.latency_samples_s
    for i in range(n):
        back = times[i]
        rx_stats.rx_packets += 1
        rx_stats.rx_bytes += frame
        if back < deadline:
            while back >= rx_boundary and rx_boundary <= deadline:
                rx_boundary += interval_s
                rx_idx += 1
            while len(intervals) <= rx_idx:
                intervals.append(IntervalStats(start=create_boundary))
                create_boundary += interval_s
            rstats = intervals[rx_idx]
            job.rx_packets += 1
            job.rx_bytes += frame
            rstats.rx_packets += 1
            rstats.rx_bytes += frame
            if sampled_a[i]:
                samples.append(back - t_send[i])

    # Leave the shared roll state where the last (latest-time) counted
    # event would have left it.
    if rx_idx >= tx_idx:
        moongen._interval = intervals[rx_idx]
        moongen._next_interval_end = rx_boundary
    else:
        moongen._interval = intervals[tx_idx]
        moongen._next_interval_end = tx_boundary


def _pass_serialize(stage: StageSpec, scratch: _Scratch, n: int,
                    bits: int, frame: int) -> int:
    """One pass through a NIC's TX ring and serializer.

    A ring slot frees when its frame *starts* serializing; frames
    meeting a full ring are dropped and counted, exactly like
    :meth:`Nic.transmit`.
    """
    nic = stage.nic
    delay = bits / nic.line_rate_bps
    ring = nic.tx_ring_size
    stats = nic.stats
    post = stage.post_delay_s
    free = -1.0
    pops: deque = deque()
    times, t_send, sampled_a, flow_a = scratch.main
    w = 0
    for i in range(n):
        arrive = times[i]
        while pops and pops[0] <= arrive:
            pops.popleft()
        if len(pops) >= ring:
            stats.tx_dropped += 1
            continue
        start = arrive if arrive >= free else free
        finish = start + delay
        pops.append(start)
        free = finish
        stats.tx_packets += 1
        stats.tx_bytes += frame
        times[w] = finish + post
        t_send[w] = t_send[i]
        sampled_a[w] = sampled_a[i]
        flow_a[w] = flow_a[i]
        w += 1
    return w


def _pass_fifo(stage: StageSpec, scratch: _Scratch, n: int,
               probe: Packet, frame: int) -> int:
    """One pass through a single-server FIFO device.

    A backlog slot frees when its frame's service *completes*; the
    admission gate is probed once per batch (it is constant during a
    replayed run), the service time once per batch (the declared
    capability makes it a pure function of the frame size).
    """
    device = stage.device
    ingress_stats = stage.ingress.stats
    dev_stats = device.stats
    gate_open = device.gate() if device.gate is not None else True
    service = device.service_time(probe)
    limit = device.backlog_limit
    free = -1.0
    pops: deque = deque()
    times, t_send, sampled_a, flow_a = scratch.main
    w = 0
    for i in range(n):
        arrive = times[i]
        ingress_stats.rx_packets += 1
        ingress_stats.rx_bytes += frame
        dev_stats.received += 1
        if not gate_open:
            dev_stats.backlog_dropped += 1
            continue
        while pops and pops[0] <= arrive:
            pops.popleft()
        if len(pops) >= limit:
            dev_stats.backlog_dropped += 1
            continue
        begin = arrive if arrive >= free else free
        done = begin + service
        pops.append(done)
        free = done
        dev_stats.forwarded += 1
        times[w] = done
        t_send[w] = t_send[i]
        sampled_a[w] = sampled_a[i]
        flow_a[w] = flow_a[i]
        w += 1
    if stage.learns_src and w and probe.src:
        # The bridge learns src -> ingress the first time a frame
        # reaches output_port; idempotent for a single-flow batch.
        device._fdb[probe.src] = stage.ingress
    return w


def _pass_rss(stage: StageSpec, scratch: _Scratch, n: int,
              probe: Packet, frame: int) -> int:
    """One pass through a multi-core RSS device.

    Frames are steered to ``flow % cores`` and serviced per-core FIFO;
    completions are merged back into egress arrival order on
    (completion, service start, arrival index): at equal completion
    times the service that *started* earlier scheduled its finish
    event earlier and therefore wins the event heap's sequence tie.
    """
    device = stage.device
    cores = device.cores
    ingress_stats = stage.ingress.stats
    dev_stats = device.stats
    gate_open = device.gate() if device.gate is not None else True
    service = device.service_time(probe)
    limit = device.backlog_limit
    per_core_forwarded = device.per_core_forwarded
    free = [-1.0] * cores
    pops = [deque() for __ in range(cores)]
    times, t_send, sampled_a, flow_a = scratch.main
    out = []
    for i in range(n):
        arrive = times[i]
        ingress_stats.rx_packets += 1
        ingress_stats.rx_bytes += frame
        dev_stats.received += 1
        if not gate_open:
            dev_stats.backlog_dropped += 1
            continue
        core = flow_a[i] % cores
        cpops = pops[core]
        while cpops and cpops[0] <= arrive:
            cpops.popleft()
        if len(cpops) >= limit:
            dev_stats.backlog_dropped += 1
            continue
        begin = arrive if arrive >= free[core] else free[core]
        done = begin + service
        cpops.append(done)
        free[core] = done
        dev_stats.forwarded += 1
        per_core_forwarded[core] += 1
        out.append((done, begin, i))
    out.sort()
    if stage.learns_src and out and probe.src:
        device._fdb[probe.src] = stage.ingress
    times2, t_send2, sampled2, flow2 = scratch.alt
    for w, (done, __, i) in enumerate(out):
        _put(times2, w, done)
        _put(t_send2, w, t_send[i])
        _put(sampled2, w, sampled_a[i])
        _put(flow2, w, flow_a[i])
    scratch.swap()
    return len(out)


def _pass_asic(stage: StageSpec, scratch: _Scratch, n: int, frame: int) -> int:
    """One pass through a match-action pipeline.

    The compiler (and :func:`verify_dag`) only admit a switch whose
    table steers our flow to a fixed egress distinct from the ingress,
    so every frame of the batch matches and pays the constant pipeline
    latency.
    """
    device = stage.device
    ingress_stats = stage.ingress.stats
    times = scratch.main[0]
    for i in range(n):
        ingress_stats.rx_packets += 1
        ingress_stats.rx_bytes += frame
        times[i] = times[i] + PIPELINE_LATENCY_S
    device.matched += n
    return n
