"""Batched packet-event fast path for the measurement hot loop.

The discrete-event engine schedules roughly six Python-level events per
generated packet (send, two serializations, two deliveries, one router
service), so a Fig. 3 sweep costs ``rates x sizes x packets`` heap
operations and callback dispatches.  For the topology the case study
actually measures — a load generator wired through a deterministic
store-and-forward router and back — every one of those events is
analytically predictable: the network between the generator's TX and RX
ports is a *feed-forward chain of FIFO stages* with constant per-stage
delays, so each packet's full trajectory follows from Lindley-style
recurrences over the packets sent before it.

:func:`compile_chain` inspects the wiring and returns a
:class:`ChainSpec` when the topology qualifies; :func:`run_batched`
replays one whole measurement job through the chain in a single tight
loop — no heap, no callbacks, no per-packet ``Packet`` allocations —
while reproducing the event engine's arithmetic exactly:

* send times and interval boundaries accumulate iteratively
  (``t += gap``, ``boundary += interval_s``), like the event chain
  does, so float rounding matches bit for bit;
* TX-ring occupancy uses the pop-at-serialization-start semantics of
  :class:`~repro.netsim.nic.Nic`, the router backlog the
  pop-at-completion semantics of
  :class:`~repro.netsim.router.ForwardingDevice`;
* latency samples, per-interval counters, NIC statistics and router
  statistics are accounted under the same conditions (a frame arriving
  at or after the job deadline is not counted against the job because
  the job's finish event wins the tie, interval boundaries roll on
  ``now >= boundary`` capped at the deadline, the send sequence number
  advances even for ring-dropped frames, the Poisson RNG is drawn once
  per send after the send).

Ineligible topologies — virtualized routers with stochastic service
times, bridges, multi-queue RSS devices, contended cut-through switch
ports — silently fall back to the legacy per-packet event path, which
remains the semantic reference.  ``POS_NETSIM_BATCH=0`` disables the
fast path globally, which is how the equivalence tests and benchmarks
pit the two implementations against each other.

The fast path computes the *fully drained* end state: every frame in
flight at the deadline is followed to its terminal stage.  The chain's
queues are bounded (TX rings, router backlog) and its service times
deterministic, so the residual drain spans at most a few milliseconds
of simulated time — far below the drain window every caller in this
repository runs the simulator for — which makes the drained state and
the event path's post-run state identical.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.loadgen.moongen import IntervalStats
from repro.netsim.link import CutThroughSwitchPort, DirectWire, OpticalL1Switch
from repro.netsim.nic import Nic
from repro.netsim.packet import wire_bits
from repro.netsim.router import LinuxRouter
from repro.telemetry import context as _telemetry

__all__ = ["ChainSpec", "compile_chain", "run_batched", "enabled"]

_SUPPORTED_LINKS = (DirectWire, OpticalL1Switch, CutThroughSwitchPort)


def enabled() -> bool:
    """Whether the batched path may engage (``POS_NETSIM_BATCH`` != 0)."""
    return os.environ.get("POS_NETSIM_BATCH", "1") != "0"


@dataclass
class ChainSpec:
    """A compiled, analytically replayable LoadGen->DuT->LoadGen chain."""

    tx_nic: Nic
    ingress_nic: Nic
    router: LinuxRouter
    egress_nic: Nic
    rx_nic: Nic
    forward_delay_s: float
    return_delay_s: float


def _constant_link_delay(link) -> Optional[float]:
    """Constant carry delay of a link, or None when not replayable."""
    if type(link) not in _SUPPORTED_LINKS:
        return None
    if getattr(link, "background_load", 0.0):
        # A contended cut-through port adds random queueing jitter drawn
        # per frame, which can reorder deliveries — not feed-forward.
        return None
    return link.propagation_delay + link.switching_delay


def compile_chain(moongen) -> Optional[ChainSpec]:
    """Discover whether ``moongen``'s traffic path is a replayable chain.

    Requirements: TX port wired through a constant-delay link into a
    port of a *deterministic* :class:`LinuxRouter` (the exact class —
    stochastic subclasses like the virtualized router are rejected),
    whose opposite port is wired through a constant-delay link back to
    the generator's RX port, with every stage idle and empty, so the
    recurrences start from the same blank state a fresh run does.
    """
    tx, rx = moongen.tx_nic, moongen.rx_nic
    if tx is rx or tx.link is None or rx.link is None:
        return None
    forward_delay = _constant_link_delay(tx.link)
    if forward_delay is None:
        return None
    try:
        ingress = tx.link.peer(tx)
    except Exception:  # noqa: BLE001 - exotic link without a peer() notion
        return None
    router = getattr(ingress, "rx_owner", None)
    if type(router) is not LinuxRouter:
        return None
    if len(router.ports) != 2 or ingress not in router.ports:
        return None
    egress = router.ports[1] if ingress is router.ports[0] else router.ports[0]
    if egress.link is None:
        return None
    return_delay = _constant_link_delay(egress.link)
    if return_delay is None:
        return None
    try:
        back = egress.link.peer(egress)
    except Exception:  # noqa: BLE001
        return None
    if back is not rx or getattr(rx, "rx_owner", None) is not moongen:
        return None
    if tx._tx_queue or tx._tx_busy or egress._tx_queue or egress._tx_busy:
        return None
    if router.backlog_depth or router.paused or router._busy:
        return None
    if ingress._rx_backlog or ingress._rx_handler is None:
        return None
    if rx._rx_backlog or rx._rx_handler is None:
        return None
    return ChainSpec(
        tx_nic=tx,
        ingress_nic=ingress,
        router=router,
        egress_nic=egress,
        rx_nic=rx,
        forward_delay_s=forward_delay,
        return_delay_s=return_delay,
    )


def run_batched(moongen, job, chain: ChainSpec) -> None:
    """Replay one whole measurement job through ``chain`` in one loop.

    Mutates ``job`` (counters, intervals, latency samples) and every
    stage's statistics exactly as the event path would have after the
    run fully drained.  Called by ``MoonGen.start`` right after the job
    state was initialized; the job's finish event stays scheduled, so
    overlap detection and ``finished`` timing are unchanged.

    Telemetry is strictly O(1) per batch — one counter, one span whose
    wall-clock profile feeds the overhead benchmark — so the tight
    replay loop itself carries zero instrumentation.
    """
    collector = _telemetry.current()
    if collector is None:
        _replay_chain(moongen, job, chain)
        return
    collector.count("fastpath.batches")
    span = collector.begin(
        "fastpath.batch", rate_pps=job.rate_pps, frame_size=job.frame_size,
    )
    try:
        with span.profile():
            _replay_chain(moongen, job, chain)
    finally:
        collector.finish(span)


def _replay_chain(moongen, job, chain: ChainSpec) -> None:
    deadline = moongen._deadline
    timestamping = job.timestamping
    sample_every = moongen.latency_sample_every
    poisson = job.pattern == "poisson"
    rng = moongen._rng

    tx_nic = chain.tx_nic
    router = chain.router
    egress = chain.egress_nic
    gate_open = router.gate() if router.gate is not None else True

    # Per-stage constants; the same expressions (and therefore the same
    # float results) as the per-packet computations of the event path.
    bits = wire_bits(job.frame_size)
    tx_delay = bits / tx_nic.line_rate_bps
    eg_delay = bits / egress.line_rate_bps
    extra_desc = router.descriptors_for(job.frame_size) - 1
    service = (
        router.base_cost_s
        + router.per_byte_s * job.frame_size
        + extra_desc * router.extra_descriptor_cost_s
    ) / router.frequency_scale

    tx_ring = tx_nic.tx_ring_size
    eg_ring = egress.tx_ring_size
    backlog_limit = router.backlog_limit

    # Lindley state per stage: the previous frame's finish time plus the
    # queue-pop times of still-occupying frames.  A TX ring slot frees
    # when its frame *starts* serializing; a router backlog slot frees
    # when its frame's service *completes*.
    tx_free = -1.0
    tx_pops: deque = deque()
    rt_free = -1.0
    rt_pops: deque = deque()
    eg_free = -1.0
    eg_pops: deque = deque()

    # Interval attribution.  The event path rolls one shared boundary
    # cursor in global time order; attribution is therefore a pure
    # function of the event's time.  We replay it with two independent
    # cursors (sends are visited in send order, receives ride along with
    # their send, which runs ahead of time order) plus one creation
    # cursor appending IntervalStats in boundary order — all three
    # accumulate ``+= interval_s`` from the same start, so they yield
    # bit-identical boundary floats at equal indices.
    intervals = job.intervals
    interval_s = job.interval_s
    tx_boundary = moongen._next_interval_end
    rx_boundary = tx_boundary
    create_boundary = tx_boundary
    tx_idx = 0
    rx_idx = 0

    tx_stats = tx_nic.stats
    in_stats = chain.ingress_nic.stats
    rt_stats = router.stats
    eg_stats = egress.stats
    rx_stats = chain.rx_nic.stats
    samples = job.latency_samples_s
    frame = job.frame_size
    fwd_delay = chain.forward_delay_s
    ret_delay = chain.return_delay_s
    rate = job.rate_pps

    t = moongen.sim.now
    seq = moongen._seq
    while t < deadline:
        # -- MoonGen._send_next at time t --------------------------------
        while t >= tx_boundary and tx_boundary <= deadline:
            tx_boundary += interval_s
            tx_idx += 1
        while len(intervals) <= tx_idx:
            intervals.append(IntervalStats(start=create_boundary))
            create_boundary += interval_s
        sampled = timestamping and seq % sample_every == 0
        seq += 1

        # -- TX NIC ring + serialization ---------------------------------
        while tx_pops and tx_pops[0] <= t:
            tx_pops.popleft()
        if len(tx_pops) >= tx_ring:
            tx_stats.tx_dropped += 1
        else:
            start = t if t >= tx_free else tx_free
            finish = start + tx_delay
            tx_pops.append(start)
            tx_free = finish
            tx_stats.tx_packets += 1
            tx_stats.tx_bytes += frame
            job.tx_packets += 1
            job.tx_bytes += frame
            interval = intervals[tx_idx]
            interval.tx_packets += 1
            interval.tx_bytes += frame

            # -- wire -> DuT ingress port --------------------------------
            arrive = finish + fwd_delay
            in_stats.rx_packets += 1
            in_stats.rx_bytes += frame
            rt_stats.received += 1
            if not gate_open:
                rt_stats.backlog_dropped += 1
            else:
                while rt_pops and rt_pops[0] <= arrive:
                    rt_pops.popleft()
                if len(rt_pops) >= backlog_limit:
                    rt_stats.backlog_dropped += 1
                else:
                    begin = arrive if arrive >= rt_free else rt_free
                    done = begin + service
                    rt_pops.append(done)
                    rt_free = done
                    rt_stats.forwarded += 1

                    # -- egress NIC ring + serialization -----------------
                    while eg_pops and eg_pops[0] <= done:
                        eg_pops.popleft()
                    if len(eg_pops) >= eg_ring:
                        eg_stats.tx_dropped += 1
                    else:
                        start2 = done if done >= eg_free else eg_free
                        finish2 = start2 + eg_delay
                        eg_pops.append(start2)
                        eg_free = finish2
                        eg_stats.tx_packets += 1
                        eg_stats.tx_bytes += frame

                        # -- wire -> LoadGen RX port ---------------------
                        back = finish2 + ret_delay
                        rx_stats.rx_packets += 1
                        rx_stats.rx_bytes += frame
                        if back < deadline:
                            while (
                                back >= rx_boundary
                                and rx_boundary <= deadline
                            ):
                                rx_boundary += interval_s
                                rx_idx += 1
                            while len(intervals) <= rx_idx:
                                intervals.append(
                                    IntervalStats(start=create_boundary)
                                )
                                create_boundary += interval_s
                            rstats = intervals[rx_idx]
                            job.rx_packets += 1
                            job.rx_bytes += frame
                            rstats.rx_packets += 1
                            rstats.rx_bytes += frame
                            if sampled:
                                samples.append(back - t)

        # -- pacing -------------------------------------------------------
        gap = rng.expovariate(rate) if poisson else 1.0 / rate
        t = t + gap

    moongen._seq = seq
    # Leave the shared roll state where the last (latest-time) counted
    # event would have left it.
    if rx_idx >= tx_idx:
        moongen._interval = intervals[rx_idx]
        moongen._next_interval_end = rx_boundary
    else:
        moongen._interval = intervals[tx_idx]
        moongen._next_interval_end = tx_boundary
