"""Discrete-event simulation core.

The pos case study measures a load generator and a device under test
exchanging packets over real hardware.  Our substitute is a classic
discrete-event simulator: a time-ordered event heap, a simulated clock,
and helper abstractions (processes, periodic timers) on top.

Determinism is a hard requirement — the whole point of the paper is
reproducibility — so the engine never consults wall-clock time or global
random state.  All randomness flows through per-component
:class:`random.Random` instances seeded from the experiment variables.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional


from repro.core.errors import SimulationError
from repro.telemetry import context as _telemetry

__all__ = ["Event", "Simulator", "Process", "PeriodicTimer"]


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent.

        Cancelling also drops the callback and argument references, so a
        large closure (a stopped process's generator frame, a timer's
        bound state) is freed immediately instead of living on in the
        event heap until its scheduled time is reached.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        self.args = ()
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event-driven simulator with a monotonically advancing clock.

    Events scheduled for the same instant run in scheduling order, which
    keeps runs bit-for-bit reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for accounting/tests)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """An in-heap event was cancelled; compact when mostly garbage.

        Long-lived simulations that start and stop many processes and
        timers would otherwise accumulate an unbounded tail of cancelled
        entries that ``run`` only discards once their scheduled time
        arrives.  Rebuilding costs O(live) and is amortized O(1) per
        cancellation because it only fires when more than half the heap
        is garbage.
        """
        self._cancelled_in_heap += 1
        if self._cancelled_in_heap > len(self._heap) // 2:
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time, next(self._seq), callback, args)
        event._sim = self
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the simulated time when the run stopped.  ``max_events``
        guards against accidental infinite event loops in tests.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed_this_run = 0
        # One collector lookup per run() call, never per event: the
        # engine self-reports its event count and extent, so callers in
        # the measurement hot loop pay no per-packet telemetry cost.
        collector = _telemetry.current()
        span = collector.begin("engine.run") if collector is not None else None
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                # The event left the heap: a later cancel() must not count
                # it against the in-heap garbage tally.
                event._sim = None
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible event loop"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if span is not None:
                span.set(events=processed_this_run)
                collector.count("engine.events", processed_this_run)
                collector.finish(span)
        return self._now

    def process(self, generator: Generator[float, None, None]) -> "Process":
        """Run a generator-based process; each yielded value is a delay."""
        return Process(self, generator)


class Process:
    """Generator-based cooperative process.

    The wrapped generator yields non-negative floats; each yield suspends
    the process for that many simulated seconds.  Returning (or raising
    ``StopIteration``) ends the process.
    """

    def __init__(self, sim: Simulator, generator: Generator[float, None, None]):
        self._sim = sim
        self._generator = generator
        self._alive = True
        self._event: Optional[Event] = None
        self._step()

    @property
    def alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._alive

    def stop(self) -> None:
        """Terminate the process before its generator finishes."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if self._alive:
            self._generator.close()
            self._alive = False

    def _step(self) -> None:
        try:
            delay = next(self._generator)
        except StopIteration:
            self._alive = False
            self._event = None
            return
        if not isinstance(delay, (int, float)) or delay < 0:
            raise SimulationError(f"process yielded invalid delay {delay!r}")
        self._event = self._sim.schedule(delay, self._step)


class PeriodicTimer:
    """Invoke a callback every ``interval`` seconds until stopped."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._event = sim.schedule(first, self._fire)

    def stop(self) -> None:
        """Cancel future invocations."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule(self._interval, self._fire)
