"""Linux software-bridge model.

vpos connects its experiment VMs with Linux bridges on the physical
host.  A software bridge is itself a store-and-forward element with a
per-packet CPU cost — far cheaper than a full routing decision inside a
VM, but not free, and it shares the host CPU with everything else.

The bridge learns which port leads to which destination address the
first time it sees the address as a source (a minimal MAC-learning
table); unknown destinations are flooded to all other ports, as a real
bridge would.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netsim.engine import Simulator
from repro.netsim.nic import Nic
from repro.netsim.packet import Packet
from repro.netsim.router import ForwardingDevice

__all__ = ["LinuxBridge", "BRIDGE_COST_S"]

#: Per-packet forwarding cost of the in-kernel bridge path on the host.
BRIDGE_COST_S = 2.0e-6


class LinuxBridge(ForwardingDevice):
    """Learning software bridge with N ports."""

    #: Constant per-packet cost; FDB learning is the only side effect
    #: and is replayed by the batched fast path.
    deterministic_service = True

    def __init__(
        self,
        sim: Simulator,
        name: str = "br0",
        cost_s: float = BRIDGE_COST_S,
        backlog_limit: int = 1000,
    ):
        super().__init__(sim, name, backlog_limit=backlog_limit)
        self.cost_s = cost_s
        self._fdb: Dict[str, Nic] = {}

    def service_time(self, packet: Packet) -> float:
        return self.cost_s

    def output_port(self, in_port: Nic, packet: Packet) -> Optional[Nic]:
        if packet.src:
            self._fdb[packet.src] = in_port
        known = self._fdb.get(packet.dst)
        if known is not None and known is not in_port:
            return known
        # Flood: deliver to every other port.  The common two-port case
        # degenerates to "the other port".
        flooded = [port for port in self.ports if port is not in_port]
        if not flooded:
            return None
        for extra in flooded[1:]:
            extra.transmit(packet)
        return flooded[0]

    @property
    def fdb(self) -> Dict[str, str]:
        """Forwarding database as address → port-name (for inspection)."""
        return {addr: port.name for addr, port in self._fdb.items()}

    def describe(self) -> dict:
        info = super().describe()
        info["cost_s"] = self.cost_s
        return info
