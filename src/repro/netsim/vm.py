"""Virtualization overlay: the vpos performance model.

The paper's vpos runs the experiment hosts as KVM guests pinned to
fixed cores, connected through Linux bridges.  Two mechanisms dominate
guest packet-forwarding performance and we model both:

* **Per-packet virtualization cost.**  Every forwarded packet pays for
  VM exits, vhost notification and the extra copy between guest and
  host.  Calibrated so the drop-free forwarding ceiling lands around
  0.04 Mpps *independent of frame size* — the headline observation of
  Fig. 3b.
* **Hypervisor preemption and overload instability.**  Even pinned
  vCPUs are occasionally preempted by host housekeeping, and once the
  guest is overloaded its service times degrade unpredictably (IRQ
  storms, cache thrash).  Below the ceiling the backlog absorbs the
  pauses, so throughput is stable; above it the combination produces
  the erratic, size-dependent throughput the paper reports ("beyond
  0.04 Mpps, the forwarding performance becomes unstable").
"""

from __future__ import annotations

import math
import random
from typing import List


from repro.netsim.engine import PeriodicTimer, Simulator
from repro.netsim.packet import Packet
from repro.netsim.router import ForwardingDevice, LinuxRouter

__all__ = ["Hypervisor", "VirtualizedLinuxRouter", "VM_PROFILE"]

#: Calibrated against Fig. 3b: ~21 us of virtualization cost per packet
#: (≈48 kpps calm capacity) plus a small copy cost keeps the measured
#: 0.04 Mpps sweep point drop-free for both frame sizes while anything
#: above it overloads the guest — matching "forwards packets without
#: drops at a maximum rate of 0.04 Mpps, regardless of the packet size"
#: and the factor-44 gap to the 1.75 Mpps bare-metal ceiling.
VM_PROFILE = {
    "base_cost_s": 21.0e-6,
    "per_byte_s": 1.0e-9,
    "overload_backlog": 64,
    "overload_sigma": 0.55,
    "calm_sigma": 0.03,
}


class Hypervisor:
    """Periodic vCPU preemption for a set of guest devices.

    Every scheduling ``quantum`` the hypervisor may steal the vCPU for an
    exponentially distributed pause.  With pinned cores (the vpos setup)
    the pauses are short but non-zero.
    """

    def __init__(
        self,
        sim: Simulator,
        quantum_s: float = 4e-3,
        pause_mean_s: float = 120e-6,
        seed: int = 0,
    ):
        self.sim = sim
        self.quantum_s = quantum_s
        self.pause_mean_s = pause_mean_s
        self._rng = random.Random(seed)
        self._guests: List[ForwardingDevice] = []
        self._timer = PeriodicTimer(sim, quantum_s, self._preempt)
        self.preemptions = 0
        self.total_stolen_s = 0.0

    def attach(self, guest: ForwardingDevice) -> None:
        """Register a guest device whose vCPU this hypervisor schedules."""
        self._guests.append(guest)

    def stop(self) -> None:
        """Stop scheduling (end of simulation)."""
        self._timer.stop()

    def reseed(self, seed: int) -> None:
        """Restart preemption from a fresh seed and a fresh timer phase.

        Run isolation hook: cancels the current quantum timer (whose
        phase encodes execution history), resumes any paused guest, and
        restarts scheduling aligned to the current simulation time, so
        the preemption pattern of a run depends only on its seed and its
        start epoch.
        """
        self._rng = random.Random(seed)
        self._timer.stop()
        for guest in self._guests:
            guest.resume()
        self._timer = PeriodicTimer(self.sim, self.quantum_s, self._preempt)

    def _preempt(self) -> None:
        if not self._guests:
            return
        pause = self._rng.expovariate(1.0 / self.pause_mean_s)
        self.preemptions += 1
        self.total_stolen_s += pause
        for guest in self._guests:
            guest.pause()
        self.sim.schedule(pause, self._release)

    def _release(self) -> None:
        for guest in self._guests:
            guest.resume()


class VirtualizedLinuxRouter(LinuxRouter):
    """Linux router running inside a KVM guest.

    Service times follow a lognormal distribution whose spread depends on
    the backlog: calm while the guest keeps up, erratic once overloaded.
    """

    #: Stochastic service times: never replayable analytically.
    deterministic_service = False

    def __init__(
        self,
        sim: Simulator,
        name: str = "vdut",
        base_cost_s: float = VM_PROFILE["base_cost_s"],
        per_byte_s: float = VM_PROFILE["per_byte_s"],
        overload_backlog: int = VM_PROFILE["overload_backlog"],
        overload_sigma: float = VM_PROFILE["overload_sigma"],
        calm_sigma: float = VM_PROFILE["calm_sigma"],
        backlog_limit: int = 256,
        seed: int = 0,
    ):
        super().__init__(
            sim,
            name,
            base_cost_s=base_cost_s,
            per_byte_s=per_byte_s,
            backlog_limit=backlog_limit,
        )
        self.overload_backlog = overload_backlog
        self.overload_sigma = overload_sigma
        self.calm_sigma = calm_sigma
        self._rng = random.Random(seed)
        self._epoch_end = -1.0
        self._epoch_factor = 1.0

    def reseed(self, seed: int) -> None:
        """Restart the service-time RNG and forget the overload epoch.

        Run isolation hook, see :meth:`Hypervisor.reseed`.
        """
        self._rng = random.Random(seed)
        self._epoch_end = -1.0
        self._epoch_factor = 1.0

    #: Degradation episodes last tens of milliseconds (IRQ storms, cache
    #: thrash, vhost wakeup trains), so the slowdown factor is resampled
    #: per *epoch* rather than per packet — per-packet noise would simply
    #: average out over a measurement run and look stable.
    EPOCH_MIN_S = 20e-3
    EPOCH_MAX_S = 80e-3

    def _overload_factor(self) -> float:
        if self.sim.now >= self._epoch_end:
            # Overload only ever *slows* the guest (folded lognormal):
            # the drop-free ceiling stays the physical maximum, and the
            # throughput beyond it fluctuates downward, as in Fig. 3b.
            sigma = self.overload_sigma
            self._epoch_factor = math.exp(abs(self._rng.gauss(0.0, sigma)))
            self._epoch_end = self.sim.now + self._rng.uniform(
                self.EPOCH_MIN_S, self.EPOCH_MAX_S
            )
        return self._epoch_factor

    def service_time(self, packet: Packet) -> float:
        mean = self.base_cost_s + self.per_byte_s * packet.frame_size
        factor = math.exp(self._rng.gauss(0.0, self.calm_sigma))
        if self.backlog_depth >= self.overload_backlog:
            factor *= self._overload_factor()
        return mean * factor

    def describe(self) -> dict:
        info = super().describe()
        info["overload_backlog"] = self.overload_backlog
        info["overload_sigma"] = self.overload_sigma
        info["calm_sigma"] = self.calm_sigma
        return info
