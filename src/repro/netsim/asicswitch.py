"""ASIC switch experiment host (Tofino-class).

Section 4.2: "Hardware packet generators may also come in the form of
tightly integrated systems, e.g., Intel's Tofino ASIC built into
switches.  In that case, the entire device can be added to the testbed
as a new experiment host and managed through the provided configuration
APIs."

The model: a match-action pipeline forwarding at line rate with a
small, constant pipeline latency (no CPU on the data path — its
ceiling is the port speed, not a service rate).  The control plane is
an HTTP API (the runtime agent of a real programmable switch), which is
how an experiment's scripts configure it through pos'
:class:`~repro.testbed.transport.HttpTransport`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from repro.core.errors import TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.nic import HardwareNic, Nic
from repro.netsim.packet import Packet

__all__ = ["AsicSwitch", "attach_http_control"]

#: Pipeline traversal latency of a Tofino-class ASIC.
PIPELINE_LATENCY_S = 400e-9


class AsicSwitch:
    """Match-action forwarding at line rate.

    Forwarding rules map a destination key to an egress port index.
    Packets with no matching rule are dropped (the default-deny of a
    freshly booted pipeline) and counted — configuring the table is the
    experiment's setup script's job.
    """

    #: The pipeline adds a constant latency and the match-action lookup
    #: is a pure function of the packet's destination key: replayable.
    deterministic_service = True

    def __init__(self, sim: Simulator, name: str = "tofino", ports: int = 4):
        if ports < 2:
            raise TopologyError("a switch needs at least two ports")
        self.sim = sim
        self.name = name
        self.ports: List[Nic] = []
        for index in range(ports):
            nic = HardwareNic(sim, f"{name}.p{index}", line_rate_bps=100e9)
            nic.set_rx_handler(
                lambda packet, port_index=index: self._process(port_index, packet)
            )
            nic.rx_owner = self
            self.ports.append(nic)
        self._table: Dict[str, int] = {}
        self.matched = 0
        self.missed = 0

    # -- control plane -----------------------------------------------------

    def add_rule(self, dst_key: str, egress_port: int) -> None:
        if not 0 <= egress_port < len(self.ports):
            raise TopologyError(
                f"{self.name}: egress port {egress_port} out of range"
            )
        self._table[dst_key] = egress_port

    def remove_rule(self, dst_key: str) -> bool:
        return self._table.pop(dst_key, None) is not None

    def rules(self) -> Dict[str, int]:
        return dict(self._table)

    # -- data plane ----------------------------------------------------------

    def _process(self, ingress: int, packet: Packet) -> None:
        egress = self._table.get(packet.dst)
        if egress is None or egress == ingress:
            self.missed += 1
            return
        self.matched += 1
        packet.hops += 1
        self.sim.schedule(
            PIPELINE_LATENCY_S, self.ports[egress].transmit, packet
        )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "model": "AsicSwitch",
            "ports": len(self.ports),
            "rules": len(self._table),
            "pipeline_latency_s": PIPELINE_LATENCY_S,
        }


def attach_http_control(switch: AsicSwitch, transport) -> None:
    """Expose the switch's table on an HttpTransport.

    Endpoints (the runtime-agent shape):

    * ``GET /tables/forward`` — list rules as ``key->port`` lines,
    * ``POST /tables/forward KEY PORT`` — insert a rule,
    * ``POST /tables/forward/delete KEY`` — remove a rule.
    """

    def list_rules(body: str) -> Tuple[int, str]:
        lines = [
            f"{key}->{port}" for key, port in sorted(switch.rules().items())
        ]
        return 200, "\n".join(lines)

    def add_rule(body: str) -> Tuple[int, str]:
        parts = body.split()
        if len(parts) != 2:
            return 400, "expected: KEY PORT"
        try:
            port = int(parts[1])
            switch.add_rule(parts[0], port)
        except (ValueError, TopologyError) as exc:
            return 400, str(exc)
        return 200, f"added {parts[0]}->{port}"

    def delete_rule(body: str) -> Tuple[int, str]:
        key = body.strip()
        if switch.remove_rule(key):
            return 200, f"deleted {key}"
        return 404, f"no rule for {key}"

    transport.register("GET", "/tables/forward", list_rules)
    transport.register("POST", "/tables/forward", add_rule)
    transport.register("POST", "/tables/forward/delete", delete_rule)
