"""Packet model for the network simulator.

Packet sizes follow the convention of the paper and of MoonGen: the
*frame size* is the Ethernet frame from destination MAC through FCS
(64 B minimum, 1518 B maximum for standard frames).  On the wire every
frame additionally occupies 20 B of preamble, start-of-frame delimiter
and inter-frame gap, which is what limits a 10 Gbit/s link to
14.88 Mpps at 64 B and ~0.82 Mpps at 1500 B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import SimulationError

__all__ = [
    "Packet",
    "ETHERNET_OVERHEAD_BYTES",
    "MIN_FRAME_SIZE",
    "MAX_FRAME_SIZE",
    "wire_bits",
    "line_rate_pps",
]

#: Preamble (7 B) + SFD (1 B) + inter-frame gap (12 B).
ETHERNET_OVERHEAD_BYTES = 20

#: Minimum legal Ethernet frame size (incl. FCS).
MIN_FRAME_SIZE = 64

#: Maximum standard (non-jumbo) Ethernet frame size (incl. FCS).
MAX_FRAME_SIZE = 1518


def wire_bits(frame_size: int) -> int:
    """Bits a frame of ``frame_size`` bytes occupies on the wire."""
    return (frame_size + ETHERNET_OVERHEAD_BYTES) * 8


def line_rate_pps(link_rate_bps: float, frame_size: int) -> float:
    """Maximum packet rate of a link for a given frame size.

    >>> round(line_rate_pps(10e9, 64) / 1e6, 2)
    14.88
    """
    return link_rate_bps / wire_bits(frame_size)


@dataclass
class Packet:
    """A single simulated frame.

    ``tx_time`` is stamped by the generator when the frame leaves the
    load generator NIC; ``rx_time`` when it arrives back.  ``hops``
    counts forwarding elements traversed, used by tests to assert the
    topology actually carried the packet through the DuT.
    """

    seq: int
    frame_size: int
    flow: int = 0
    src: str = ""
    dst: str = ""
    tx_time: Optional[float] = None
    rx_time: Optional[float] = None
    hops: int = 0
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.frame_size < MIN_FRAME_SIZE or self.frame_size > MAX_FRAME_SIZE:
            raise SimulationError(
                f"frame size {self.frame_size} outside "
                f"[{MIN_FRAME_SIZE}, {MAX_FRAME_SIZE}]"
            )

    @property
    def wire_bits(self) -> int:
        """Bits this frame occupies on the wire, including overhead."""
        return wire_bits(self.frame_size)

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency if both timestamps are set."""
        if self.tx_time is None or self.rx_time is None:
            return None
        return self.rx_time - self.tx_time
