"""Live experiment monitoring from artifacts alone.

``pos status <expdir>`` renders a one-shot progress and node-health
view, and ``pos watch <expdir>`` follows the folder while an experiment
executes.  Both are *read-only tailers*: everything they show is
reconstructed from the files the controller flushes as it goes — the
run journal (``journal.jsonl``), the per-run telemetry and health
snapshots, and the experiment-level aggregates.  No controller handle,
no IPC, no shared state: the monitor can run in a different process
(or on a different machine, over a synced artifact folder) while a
parallel ``--jobs N`` execution is writing, because every record is
written with a single flushed ``write()`` and torn tails are dropped
exactly like the resume path drops them.

The only wall-clock information in the deterministic artifacts is the
filesystem itself, so the ETA is extrapolated from run-directory
mtimes — it is an operator convenience, never an artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core.errors import PosError
from repro.telemetry.jsonl import read_jsonl
from repro.testbed.health import HEALTH_NAME, ExperimentHealth

__all__ = [
    "StatusError",
    "load_status",
    "render_status",
    "watch",
    "load_health_timeline",
]


class StatusError(PosError):
    """The folder does not carry the artifacts a status view needs."""


def _read_journal(experiment_path: str) -> List[dict]:
    """Journal entries, tolerant of a torn (in-flight) final line."""
    path = os.path.join(experiment_path, "journal.jsonl")
    if not os.path.isfile(path):
        raise StatusError(
            f"no journal.jsonl in {experiment_path} "
            f"(not an experiment result folder?)"
        )
    return read_jsonl(path)


def _read_json(path: str) -> Optional[dict]:
    """One JSON artifact, or None while it is missing or mid-write."""
    if not os.path.isfile(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except ValueError:
        return None


def _latest_runs(entries: List[dict]) -> Dict[int, dict]:
    latest: Dict[int, dict] = {}
    for entry in entries:
        if entry.get("event") == "run":
            latest[int(entry["index"])] = entry
    return latest


def _run_payloads(
    experiment_path: str, runs: Dict[int, dict], name: str,
) -> Dict[int, dict]:
    """Per-run snapshot files (telemetry or health), by run index."""
    payloads: Dict[int, dict] = {}
    for index in sorted(runs):
        run_dir = runs[index].get("dir")
        if not run_dir:
            continue
        payload = _read_json(os.path.join(experiment_path, run_dir, name))
        if payload is not None:
            payloads[index] = payload
    return payloads


def _eta_seconds(
    experiment_path: str, runs: Dict[int, dict], remaining: int,
) -> Optional[float]:
    """Extrapolate from run-directory mtimes; None below two samples."""
    if remaining <= 0:
        return None
    times = []
    for index in sorted(runs):
        run_dir = runs[index].get("dir")
        if not run_dir:
            continue
        path = os.path.join(experiment_path, run_dir)
        if os.path.isdir(path):
            times.append(os.path.getmtime(path))
    if len(times) < 2:
        return None
    times.sort()
    per_run = (times[-1] - times[0]) / (len(times) - 1)
    return per_run * remaining


def load_status(
    experiment_path: str, require_runs: bool = True,
) -> Dict[str, Any]:
    """Assemble the progress/health view as plain data.

    ``require_runs=False`` (the ``watch`` mode) tolerates an experiment
    that has not journalled any run yet — it is probably still in the
    setup phase; ``pos status`` on such a folder is an error instead.
    """
    if not os.path.isdir(experiment_path):
        raise StatusError(f"no such experiment directory: {experiment_path}")
    entries = _read_journal(experiment_path)
    if not entries or entries[0].get("event") != "experiment":
        raise StatusError(
            f"journal.jsonl in {experiment_path} has no experiment header "
            f"(crashed before the first fsync?)"
        )
    header = entries[0]
    runs = _latest_runs(entries)
    if require_runs and not runs:
        raise StatusError(
            f"no measurement runs journalled in {experiment_path} yet "
            f"(use 'pos watch' to follow a starting experiment)"
        )
    complete = any(entry.get("event") == "complete" for entry in entries)
    total = header.get("total_runs")
    done = len(runs)
    ok = sum(1 for entry in runs.values() if entry.get("ok"))
    skipped = sum(1 for entry in runs.values() if entry.get("skipped"))
    failed = done - ok - skipped
    retried = sum(1 for entry in runs.values() if entry.get("retried"))

    telemetry = _run_payloads(experiment_path, runs, "telemetry.json")
    faults = 0
    for payload in telemetry.values():
        counters = payload.get("metrics", {}).get("counters", {})
        faults += sum(
            value for name, value in counters.items()
            if name.startswith("faults.injected.")
        )

    health = ExperimentHealth()
    for index, payload in sorted(
        _run_payloads(experiment_path, runs, HEALTH_NAME).items()
    ):
        health.fold(payload)

    if complete:
        phase = "complete"
    elif not runs:
        phase = "setup"
    else:
        phase = "measurement"
    remaining = (total - done) if isinstance(total, int) else 0
    return {
        "experiment": header.get("name"),
        "total_runs": total,
        "phase": phase,
        "complete": complete,
        "done": done,
        "ok": ok,
        "failed": failed,
        "skipped": skipped,
        "retried": retried,
        "faults": faults,
        "health": health.snapshot(),
        "eta_s": (
            None if complete
            else _eta_seconds(experiment_path, runs, remaining)
        ),
    }


def render_status(experiment_path: str, require_runs: bool = True) -> str:
    """Render the one-shot ``pos status`` view as text."""
    status = load_status(experiment_path, require_runs=require_runs)
    lines: List[str] = []
    lines.append(f"experiment: {status['experiment']}")
    lines.append(
        f"phase:      {status['phase']} "
        f"({status['done']}/{status['total_runs']} runs journalled)"
    )
    lines.append(
        f"runs:       {status['ok']} ok, {status['failed']} failed, "
        f"{status['skipped']} skipped, {status['retried']} retried"
    )
    lines.append(f"faults:     {status['faults']} injected")
    nodes = status["health"]["nodes"]
    if nodes:
        lines.append("health:")
        for name in sorted(nodes):
            node = nodes[name]
            sensors = node.get("sensors") or {}
            reading = (
                f"{sensors['temperature_c']:5.1f} C "
                f"{sensors['power_w']:6.1f} W "
                f"{sensors['fan_rpm']:>4d} rpm"
                if sensors else "(no sensors)"
            )
            lines.append(
                f"  {name:<10s} {node['state']:<11s} {reading}   "
                f"sel {node['sel_records']}"
            )
    else:
        lines.append("health:     (no health snapshots)")
    if status["eta_s"] is not None:
        lines.append(
            f"eta:        ~{status['eta_s']:.1f} s "
            f"(extrapolated from {status['done']} completed runs)"
        )
    return "\n".join(lines) + "\n"


def watch(
    experiment_path: str,
    stream=None,
    interval_s: float = 2.0,
    max_updates: Optional[int] = None,
    sleep=time.sleep,
) -> int:
    """Follow an experiment folder, re-rendering the status per tick.

    Read-only and safe to run concurrently with the scheduler: every
    tick re-tails the flushed artifacts from scratch.  Stops when the
    journal records completion (or after ``max_updates`` renders).
    """
    stream = stream if stream is not None else sys.stdout
    if not os.path.isdir(experiment_path):
        raise StatusError(f"no such experiment directory: {experiment_path}")
    updates = 0
    while True:
        complete = False
        try:
            text = render_status(experiment_path, require_runs=False)
            complete = "phase:      complete" in text
        except StatusError as exc:
            text = f"waiting: {exc}\n"
        stream.write(text)
        stream.write("\n")
        stream.flush()
        updates += 1
        if complete:
            return 0
        if max_updates is not None and updates >= max_updates:
            return 0
        sleep(interval_s)


def load_health_timeline(experiment_path: str) -> Dict[str, Any]:
    """Per-run health observations and SEL records, for the dashboard.

    Returns the node list, one observation row per journalled run, the
    flattened SEL records, and the final per-node machine state —
    everything the published website needs to draw the health timeline
    without re-running anything.
    """
    entries = _read_journal(experiment_path)
    runs = _latest_runs(entries)
    payloads = _run_payloads(experiment_path, runs, HEALTH_NAME)
    node_names: List[str] = sorted(
        {name for payload in payloads.values() for name in payload["nodes"]}
    )
    timeline: List[Dict[str, Any]] = []
    sel: List[Dict[str, Any]] = []
    health = ExperimentHealth()
    for index in sorted(payloads):
        payload = payloads[index]
        health.fold(payload)
        observations = {
            name: payload["nodes"].get(name, {}).get(
                "observation", "unmonitored"
            )
            for name in node_names
        }
        timeline.append({"run": index, "observations": observations})
        for name in sorted(payload["nodes"]):
            for record in payload["nodes"][name].get("sel", []):
                sel.append(dict(record, run=index, node=name))
    snapshot = health.snapshot()
    return {
        "nodes": node_names,
        "timeline": timeline,
        "sel": sel,
        "final": {
            name: node["state"] for name, node in snapshot["nodes"].items()
        },
    }
