"""Campaign-level telemetry: spans, metric aggregate, health roll-up.

One layer above the experiment telemetry plane.  Everything here is
written at campaign finalization as a *pure function* of the admission
plan and the ordered outcome set, so the artifacts are byte-identical
for any ``--jobs N`` and across crash+resume — no incremental state, no
wall clock, no resume markers.

``campaign-trace.jsonl``
    Span records on a logical tick clock: a ``campaign`` root span
    wrapping the ``admission`` decisions and one ``experiment`` span
    per admitted experiment, in admission order.  The name deliberately
    differs from the per-experiment ``trace.jsonl`` so experiment-level
    tooling never mistakes the campaign directory for a result folder.
``campaign.json``
    The aggregate: admission counts, per-user statistics, the ordered
    experiment outcomes, merged metrics from every experiment's
    ``telemetry.json``, and a health roll-up from every experiment's
    ``health.json``.  Metrics and health sections appear only for the
    experiments that produced them (the ``POS_TELEMETRY`` /
    ``POS_HEALTH`` kill switches hold at campaign scope too).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.telemetry import plane as _plane
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import LogicalClock, RunTelemetry

__all__ = ["CAMPAIGN_TRACE_NAME", "CAMPAIGN_SUMMARY_NAME", "CampaignTelemetry"]

CAMPAIGN_TRACE_NAME = "campaign-trace.jsonl"
CAMPAIGN_SUMMARY_NAME = "campaign.json"


class CampaignTelemetry:
    """Collects and writes one campaign's telemetry artifacts."""

    def __init__(self, campaign_dir: str):
        self.campaign_dir = campaign_dir

    # -- artifact readers ---------------------------------------------------

    def _experiment_file(self, outcome: dict, name: str) -> Optional[dict]:
        relative = outcome.get("dir")
        if not relative:
            return None
        path = os.path.join(self.campaign_dir, relative, name)
        if not os.path.isfile(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except ValueError:
            return None

    # -- writers ------------------------------------------------------------

    def _write_trace(self, spec, plan, outcomes: List[dict]) -> None:
        collector = RunTelemetry(clock=LogicalClock())
        campaign_span = collector.begin(
            "campaign",
            campaign=spec.name,
            pool=sorted(spec.pool),
            experiments=len(spec.experiments),
        )
        with collector.span(
            "admission",
            admitted=len(plan.admitted),
            rejected=len(plan.rejected),
        ):
            for entry in plan.entries():
                # "start"/"end" would clash with the span's own extent;
                # they are the *planned window*, so name them as such.
                attrs = {
                    {"start": "window_start", "end": "window_end"}.get(key, key):
                        value
                    for key, value in entry.items()
                    if key != "event"
                }
                collector.event(f"admission.{entry['event']}", **attrs)
        for outcome in outcomes:
            # No adoption/resume markers here: the trace is a pure
            # function of the outcome set, byte-identical across resume.
            collector.event(
                "experiment",
                index=outcome["index"],
                experiment=outcome["name"],
                user=outcome["user"],
                ok=bool(outcome["ok"]),
                runs_completed=int(outcome.get("runs_completed", 0)),
                runs_failed=int(outcome.get("runs_failed", 0)),
            )
        collector.finish(campaign_span)
        path = os.path.join(self.campaign_dir, CAMPAIGN_TRACE_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            for span in collector.spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _health_rollup(self, outcomes: List[dict]) -> Optional[dict]:
        observations: Dict[str, int] = {}
        found = False
        for outcome in outcomes:
            payload = self._experiment_file(outcome, "health.json")
            if payload is None:
                continue
            found = True
            for entry in payload.get("nodes", {}).values():
                kind = str(entry.get("observation", "unknown"))
                observations[kind] = observations.get(kind, 0) + 1
        if not found:
            return None
        return {"node_observations": observations}

    def finalize(self, spec, plan, outcomes: List[dict]) -> str:
        """Write the campaign artifacts from the final outcome set."""
        if _plane.enabled():
            self._write_trace(spec, plan, outcomes)
        per_user: Dict[str, Dict[str, int]] = {}
        for outcome in outcomes:
            stats = per_user.setdefault(
                outcome["user"],
                {"experiments": 0, "ok": 0, "runs_completed": 0,
                 "runs_failed": 0},
            )
            stats["experiments"] += 1
            if outcome["ok"]:
                stats["ok"] += 1
            stats["runs_completed"] += int(outcome.get("runs_completed", 0))
            stats["runs_failed"] += int(outcome.get("runs_failed", 0))
        summary: Dict[str, object] = {
            "campaign": spec.name,
            "pool": sorted(spec.pool),
            "admitted": len(plan.admitted),
            "rejected": [
                rejection.entry() for rejection in plan.rejected
            ],
            "users": {user: per_user[user] for user in sorted(per_user)},
            "experiments": [
                {
                    "index": outcome["index"],
                    "name": outcome["name"],
                    "user": outcome["user"],
                    "ok": bool(outcome["ok"]),
                    "dir": outcome.get("dir"),
                    "runs_completed": int(outcome.get("runs_completed", 0)),
                    "runs_failed": int(outcome.get("runs_failed", 0)),
                }
                for outcome in outcomes
            ],
            "ok": all(outcome.get("ok") for outcome in outcomes),
        }
        if _plane.enabled():
            metrics = MetricsRegistry()
            merged = False
            for outcome in outcomes:
                payload = self._experiment_file(outcome, "telemetry.json")
                if payload is None:
                    continue
                snapshot = payload.get("metrics")
                if snapshot:
                    metrics.merge(snapshot)
                    merged = True
            if merged:
                summary["metrics"] = metrics.snapshot()
        health = self._health_rollup(outcomes)
        if health is not None:
            summary["health"] = health
        path = os.path.join(self.campaign_dir, CAMPAIGN_SUMMARY_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        return path
