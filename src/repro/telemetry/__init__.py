"""Deterministic telemetry plane: spans, metrics, per-run provenance.

pos's reproducibility story rests on *enforced central collection* of
results **and** metadata (R1-R3): a published artifact must let a
reader retrace not only what was measured but how the toolchain behaved
while measuring it — retries, injected faults, recovery, scheduler
sharding, and which netsim path executed a run.  This package collects
that execution metadata as first-class artifacts:

* :mod:`repro.telemetry.spans` — nested, monotonic-sequence-ordered
  spans with attributes; virtual-time durations only, so artifacts stay
  byte-reproducible (wall-clock profiling is opt-in via
  ``POS_TELEMETRY_WALLCLOCK=1`` and lands in a sidecar, never in the
  deterministic trace);
* :mod:`repro.telemetry.metrics` — counters, gauges and histograms with
  deterministic snapshots;
* :mod:`repro.telemetry.context` — the ambient collector deep layers
  (retry policy, fault injector, event engine, fast path, load
  generator) report into without explicit plumbing;
* :mod:`repro.telemetry.plane` — the experiment-level plane: writes
  ``trace.jsonl`` / ``telemetry.json`` / per-run ``telemetry.json``
  artifacts and the byte-compatible legacy ``controller.log``;
* :mod:`repro.telemetry.report` — renders the per-run provenance table
  from the published artifacts alone (``pos report``);
* :mod:`repro.telemetry.schema` — dependency-free validation of the
  telemetry artifacts against the checked-in JSON schemas.

The plane is deterministic by construction: artifacts are byte-identical
for any ``--jobs N`` (workers return span/metric buffers inside
``RunOutcome``; the parent assigns global sequence numbers in run order)
and across a crash plus :meth:`Controller.resume` (adopted runs replay
their buffers from ``run-NNN/telemetry.json``).  ``POS_TELEMETRY=0``
disables collection entirely (the overhead-benchmark baseline).
"""

from __future__ import annotations

from repro.telemetry.context import current, run_collector
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.plane import ExperimentTelemetry, enabled
from repro.telemetry.spans import RunTelemetry, Span

__all__ = [
    "ExperimentTelemetry",
    "MetricsRegistry",
    "RunTelemetry",
    "Span",
    "current",
    "enabled",
    "run_collector",
]
