"""The experiment-level telemetry plane.

Owns every telemetry artifact of one experiment execution:

``controller.log``
    The legacy sequence-numbered workflow log, byte-compatible with
    pre-telemetry readers.  A resumed execution *appends*, continuing
    the crashed execution's sequence numbers — the evidence is never
    destroyed.
``trace.jsonl``
    One JSON record per completed span, written in completion order
    (children before parents), with globally unique sequence numbers
    assigned at span start — workflow spans live on a logical tick
    clock, run-scoped spans on the netsim virtual clock.  The file is
    *rewritten* by a resumed execution: adopted runs replay their
    buffers from ``run-NNN/telemetry.json``, so the finished trace is a
    pure function of the run set and stays byte-identical across any
    ``--jobs N`` and across crash + resume.
``run-NNN/telemetry.json``
    Per-run span/metric snapshot, written when the run is persisted
    (in run order, through the scheduler's reorder buffer).
``telemetry.json``
    The experiment-wide metric aggregate, written at finalization.
``trace-wall.jsonl``
    Opt-in sidecar (``POS_TELEMETRY_WALLCLOCK=1``) carrying wall-clock
    profile measurements; deliberately separate so the deterministic
    artifacts never embed wall time.
``dispatch.jsonl``
    Evidence sidecar of the distributed execution plane (``--agents``):
    agent spawns, registrations, leases, dispatches, deaths,
    re-dispatches, quarantines.  Deliberately quarantined from the
    determinism contract — which agent ran which run and how often it
    crashed depends on the placement and the crash schedule, while the
    merged artifacts must not — so determinism comparisons exclude it
    (``diff -r -x dispatch.jsonl``) or disable it (``POS_DISPATCH_LOG=0``).
    A resumed execution appends: crash evidence is never destroyed.
``fleet-trace.jsonl``
    The stitched causal DAG of the whole execution: one
    dispatch → run → persist span chain per delivered run, parented
    under a single ``fleet.experiment`` root, every record stamped with
    the execution's trace id.  Causal spans live on a monotone causal
    tick clock, run spans on the netsim virtual clock; records are
    emitted through the reorder-buffer delivery pipeline in strict run
    order, so the finished trace — like ``trace.jsonl`` — is a pure
    function of the run set: rewritten on resume and byte-identical for
    any ``--jobs``/``--agents``/transport/crash schedule.  Disabled
    wholesale with ``POS_FLEET_TRACE=0``.
``fleet-trace-wall.jsonl``
    Evidence sidecar quarantining the *real* timings of the distributed
    pump (transport-clock send/recv/deliver/death instants, per-run
    agent wall seconds), following the ``trace-wall.jsonl`` precedent:
    wall time never enters a deterministic artifact.  Shares the
    evidence gate of the other sidecars (``POS_DISPATCH_LOG=0``
    silences every sidecar at once) and is excluded from determinism
    comparisons exactly like ``dispatch.jsonl``.

Every record is flushed as written; phase boundaries additionally fsync
both the legacy log and the trace, matching the journal's durability —
a crashed controller loses no completed-span evidence the journal
already promised.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.core.envcache import EnvSwitch
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import LogicalClock, Span, strip_wall

__all__ = [
    "ExperimentTelemetry",
    "TRACE_NAME",
    "TELEMETRY_NAME",
    "RUN_TELEMETRY_NAME",
    "WALL_SIDECAR_NAME",
    "DISPATCH_NAME",
    "CACHE_NAME",
    "FLEET_TRACE_NAME",
    "FLEET_WALL_NAME",
    "EVIDENCE_SIDECARS",
    "enabled",
    "wallclock_enabled",
    "dispatch_enabled",
    "fleet_enabled",
]

TRACE_NAME = "trace.jsonl"
TELEMETRY_NAME = "telemetry.json"
WALL_SIDECAR_NAME = "trace-wall.jsonl"
RUN_TELEMETRY_NAME = "telemetry.json"
DISPATCH_NAME = "dispatch.jsonl"
CACHE_NAME = "cache.jsonl"
FLEET_TRACE_NAME = "fleet-trace.jsonl"
FLEET_WALL_NAME = "fleet-trace-wall.jsonl"

#: Every evidence sidecar quarantined from the byte-identity contract;
#: determinism comparisons between executions exclude exactly these.
EVIDENCE_SIDECARS = (DISPATCH_NAME, CACHE_NAME, FLEET_WALL_NAME)

_LEGACY_LINE = re.compile(r"^\[(\d+)\] ")


#: Whether telemetry collection is on (``POS_TELEMETRY`` != 0).
#: Resolved once per world (:mod:`repro.core.envcache`), not per run.
enabled = EnvSwitch("POS_TELEMETRY")

#: Whether wall-clock profiles go to the ``trace-wall.jsonl`` sidecar
#: (``POS_TELEMETRY_WALLCLOCK`` == 1; off by default).
wallclock_enabled = EnvSwitch("POS_TELEMETRY_WALLCLOCK", default="0", mode="one")

#: Whether the ``dispatch.jsonl`` evidence sidecar is written
#: (``POS_DISPATCH_LOG`` != 0; on by default).
dispatch_enabled = EnvSwitch("POS_DISPATCH_LOG")

#: Whether the causal fleet trace (``fleet-trace.jsonl`` and its wall
#: sidecar) is written (``POS_FLEET_TRACE`` != 0; on by default).
fleet_enabled = EnvSwitch("POS_FLEET_TRACE")


class _WorkflowLog:
    """The legacy sequence-numbered ``controller.log``, kept byte-compatible.

    A resumed execution appends and *continues* the sequence numbers of
    the crashed execution's log (the old implementation restarted at
    0001, corrupting the artifact's ordering guarantee).  Every event is
    flushed immediately; the crash-evidence bug of the buffered writer —
    trace lines lost while the journal had already fsync'd the run — is
    gone.
    """

    def __init__(self, experiment_path: str, append: bool = False):
        path = os.path.join(experiment_path, "controller.log")
        self._sequence = self._last_sequence(path) if append else 0
        self._handle = open(path, "a" if append else "w", encoding="utf-8")

    @staticmethod
    def _last_sequence(path: str) -> int:
        if not os.path.isfile(path):
            return 0
        last = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                match = _LEGACY_LINE.match(line)
                if match is not None:
                    last = int(match.group(1))
        return last

    def event(self, message: str) -> None:
        self._sequence += 1
        self._handle.write(f"[{self._sequence:04d}] {message}\n")
        self._handle.flush()

    def flush(self, fsync: bool = False) -> None:
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()


class ExperimentTelemetry:
    """Spans, metrics and the legacy log for one experiment execution."""

    def __init__(self, experiment_path: str, resumed: bool = False):
        # Imported lazily: the testbed package must stay importable
        # without triggering the telemetry package (and vice versa).
        from repro.testbed.health import ExperimentHealth, health_enabled

        self.path = experiment_path
        self.enabled = enabled()
        #: The experiment-level health fold (``health.json``); carried
        #: by the telemetry plane so merge/adopt/finalize stay a single
        #: call site, but gated independently (``POS_HEALTH=0``).
        self.health = (
            ExperimentHealth(experiment_path) if health_enabled() else None
        )
        self._log = _WorkflowLog(experiment_path, append=resumed)
        self._trace = None
        self._wall = None
        self._dispatch = None
        self._dispatch_append = resumed
        self._dispatch_seq = 0
        self._cache_log = None
        self._cache_append = resumed
        self._cache_seq = 0
        self._fleet_on = self.enabled and fleet_enabled()
        self._fleet = None
        self._fleet_id: Optional[str] = None
        self._fleet_name: Optional[str] = None
        self._fleet_total = 0
        self._fleet_seq = 0
        self._fleet_tick = 0
        self._fleet_root_written = False
        self._fleet_wall = None
        self._fleet_wall_append = resumed
        self._fleet_wall_seq = 0
        self._clock = LogicalClock()
        self._seq = 0
        self._stack: List[Span] = []
        self._spans_written = 0
        self.run_metrics = MetricsRegistry()
        self.experiment_metrics = MetricsRegistry()
        if self.enabled:
            # The trace is rewritten (not appended) on resume: adopted
            # runs replay their buffers, so the finished file is a pure
            # function of the run set — byte-identical to an
            # uninterrupted execution's.
            self._trace = open(
                os.path.join(experiment_path, TRACE_NAME), "w", encoding="utf-8"
            )
            if wallclock_enabled():
                self._wall = open(
                    os.path.join(experiment_path, WALL_SIDECAR_NAME),
                    "a" if resumed else "w",
                    encoding="utf-8",
                )

    # -- legacy log ----------------------------------------------------------

    def event(self, message: str) -> None:
        """Write one legacy ``controller.log`` line (flushed immediately)."""
        self._log.event(message)

    # -- distributed-execution evidence --------------------------------------

    def dispatch_event(self, event: str, **fields: Any) -> None:
        """Append one record to the ``dispatch.jsonl`` evidence sidecar.

        Lazily opened: experiments that never fan out to agents never
        create the file.  The sidecar is outside the determinism
        contract (see the module docstring), so records may carry
        placement- and crash-schedule-dependent detail freely.
        """
        if not dispatch_enabled():
            return
        if self._dispatch is None:
            self._dispatch = open(
                os.path.join(self.path, DISPATCH_NAME),
                "a" if self._dispatch_append else "w",
                encoding="utf-8",
            )
        self._dispatch_seq += 1
        record = {"seq": self._dispatch_seq, "event": event}
        record.update(fields)
        self._dispatch.write(json.dumps(record, sort_keys=True) + "\n")
        self._dispatch.flush()

    # -- run-cache evidence ---------------------------------------------------

    def cache_event(self, event: str, **fields: Any) -> None:
        """Append one record to the ``cache.jsonl`` evidence sidecar.

        Same contract as :meth:`dispatch_event`: lazily opened (runs
        without a cache never create the file) and deliberately outside
        the byte-identity contract — whether a run was served from the
        cache is execution history, not run content, so a warm tree
        must stay ``diff -r -x cache.jsonl``-identical to a cold one.
        ``pos report`` folds these records into cache provenance.
        """
        if not dispatch_enabled():
            return
        if self._cache_log is None:
            self._cache_log = open(
                os.path.join(self.path, CACHE_NAME),
                "a" if self._cache_append else "w",
                encoding="utf-8",
            )
        self._cache_seq += 1
        record = {"seq": self._cache_seq, "event": event}
        record.update(fields)
        self._cache_log.write(json.dumps(record, sort_keys=True) + "\n")
        self._cache_log.flush()

    # -- causal fleet trace ---------------------------------------------------

    def fleet_begin(self, experiment: str, total_runs: int) -> Optional[str]:
        """Open the stitched causal fleet trace for this execution.

        The trace id is a pure function of the experiment identity (so
        a resumed execution carries the same id as the crashed one),
        and the file is rewritten — not appended — on resume: per-run
        span chains are emitted through the reorder-buffer delivery
        pipeline in strict run order, so the finished DAG is a pure
        function of the run set and stays byte-identical across any
        executor and crash schedule.  Returns the trace id, or None
        when the plane is off.
        """
        if not self._fleet_on:
            return None
        identity = json.dumps(
            {"experiment": experiment, "runs": total_runs}, sort_keys=True
        )
        self._fleet_id = hashlib.sha256(
            identity.encode("utf-8")
        ).hexdigest()[:16]
        self._fleet_name = experiment
        self._fleet_total = total_runs
        self._fleet = open(
            os.path.join(self.path, FLEET_TRACE_NAME), "w", encoding="utf-8"
        )
        return self._fleet_id

    def fleet_context(self) -> Optional[str]:
        """The live trace id — what the dist plane stamps on Envelopes."""
        return self._fleet_id

    def fleet_wall_event(self, event: str, **fields: Any) -> None:
        """Append one record to the ``fleet-trace-wall.jsonl`` sidecar.

        Real transport-clock instants and agent wall seconds of the
        distributed pump, quarantined from the deterministic fleet
        trace exactly as ``trace-wall.jsonl`` quarantines profile wall
        time.  Shares the evidence gate of the other sidecars — with
        ``POS_DISPATCH_LOG=0`` an execution leaves *no* sidecar at all —
        and dies with the whole plane under ``POS_FLEET_TRACE=0``.
        """
        if not (self._fleet_on and dispatch_enabled()):
            return
        if self._fleet_wall is None:
            self._fleet_wall = open(
                os.path.join(self.path, FLEET_WALL_NAME),
                "a" if self._fleet_wall_append else "w",
                encoding="utf-8",
            )
        self._fleet_wall_seq += 1
        record = {"seq": self._fleet_wall_seq, "event": event}
        record.update(fields)
        self._fleet_wall.write(json.dumps(record, sort_keys=True) + "\n")
        self._fleet_wall.flush()

    def _fleet_write(
        self,
        span: str,
        parent: Optional[str],
        name: str,
        start: float,
        end: float,
        clock: str,
        run: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._fleet_seq += 1
        record = {
            "seq": self._fleet_seq,
            "trace": self._fleet_id,
            "span": span,
            "parent": parent,
            "name": name,
            "start": start,
            "end": end,
            "clock": clock,
            "run": run,
            "attrs": attrs,
        }
        self._fleet.write(json.dumps(record, sort_keys=True) + "\n")
        self._fleet.flush()

    def _fleet_run(self, index: int, spans: List[dict]) -> None:
        """Emit one run's dispatch → run → persist chain, in run order.

        Called from the merge/adopt path — i.e. at reorder-buffer
        delivery time, which every executor reaches in strict run-index
        order — so the causal ticks are a pure function of the run
        index.  Attrs carry only run-set-pure facts (outcome of the
        run), never execution history like which agent ran it or
        whether the cache served it: that detail lives in the
        sidecars.
        """
        if self._fleet is None:
            return
        root = next(
            (
                span for span in spans
                if span.get("name") == "run" and span.get("parent") is None
            ),
            None,
        )
        attrs: Dict[str, Any] = {}
        if root is not None:
            source = root.get("attrs", {})
            attrs = {
                key: source[key]
                for key in ("ok", "attempts", "recovered", "faults")
                if key in source
            }
        tick = float(self._fleet_tick)
        self._fleet_tick += 2
        self._fleet_write(
            f"r{index}.dispatch", "root", "fleet.dispatch",
            tick, tick, "causal", index, {},
        )
        self._fleet_write(
            f"r{index}.run", f"r{index}.dispatch", "fleet.run",
            float(root.get("start", 0.0)) if root else 0.0,
            float(root.get("end", 0.0)) if root else 0.0,
            "sim", index, attrs,
        )
        self._fleet_write(
            f"r{index}.persist", f"r{index}.run", "fleet.persist",
            tick + 1.0, tick + 1.0, "causal", index, {},
        )

    def _fleet_root(self, extra: Optional[Dict[str, Any]] = None) -> None:
        """Write the ``fleet.experiment`` root, post-order (children first)."""
        if self._fleet is None or self._fleet_root_written:
            return
        attrs: Dict[str, Any] = {
            "experiment": self._fleet_name,
            "runs": self._fleet_total,
        }
        if extra:
            attrs.update(extra)
        self._fleet_write(
            "root", None, "fleet.experiment",
            0.0, float(self._fleet_tick), "causal", None, attrs,
        )
        self._fleet_root_written = True

    # -- workflow spans ------------------------------------------------------

    def begin_span(self, name: str, **attrs: Any) -> Span:
        """Open a workflow span on the logical tick clock."""
        parent = self._stack[-1].seq if self._stack else None
        span = Span(name, self._seq, parent, self._clock(), dict(attrs))
        self._seq += 1
        self._stack.append(span)
        return span

    def finish_span(self, span: Span) -> None:
        while self._stack:
            top = self._stack.pop()
            self._write_span(top.record(self._clock()), clock="ticks")
            if top is span:
                return
        raise ValueError(f"span {span.name!r} is not a live workflow span")

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.begin_span(name, **attrs)
        try:
            yield span
        finally:
            self.finish_span(span)

    # -- run buffers ---------------------------------------------------------

    def merge_run(
        self, index: int, payload: Optional[dict], run_dir_path: Optional[str],
        health: Optional[dict] = None,
    ) -> None:
        """Merge one executed run's buffer, in run order.

        Assigns global sequence numbers to the buffer's local ones,
        parents the run's root spans under the innermost live workflow
        span (the measurement phase), snapshots the buffer into
        ``run-NNN/telemetry.json``, and aggregates the metrics.  The
        run's health payload (if any) is snapshotted and folded the
        same way (``run-NNN/health.json``).
        """
        if self.health is not None:
            self.health.merge_run(index, health, run_dir_path)
        if not self.enabled or payload is None:
            return
        if run_dir_path is not None:
            snapshot = {
                "run": index,
                "spans": [strip_wall(span) for span in payload.get("spans", [])],
                "metrics": payload.get("metrics", {}),
            }
            with open(
                os.path.join(run_dir_path, RUN_TELEMETRY_NAME),
                "w", encoding="utf-8",
            ) as handle:
                handle.write(json.dumps(snapshot, sort_keys=True, indent=2))
                handle.write("\n")
        self._merge_buffer(payload)
        self._fleet_run(index, payload.get("spans", []))

    def adopt_run(self, index: int, run_dir_path: str) -> None:
        """Replay an adopted (journalled, resumed) run's buffer from disk.

        The snapshot file is left byte-untouched; only the trace and the
        aggregate are fed, exactly as if the run had executed here.
        """
        if self.health is not None:
            self.health.adopt_run(index, run_dir_path)
        if not self.enabled:
            return
        snapshot_path = os.path.join(run_dir_path, RUN_TELEMETRY_NAME)
        if not os.path.isfile(snapshot_path):
            return  # pre-telemetry artifact: nothing to replay
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        self._merge_buffer(
            {"spans": snapshot.get("spans", []),
             "metrics": snapshot.get("metrics", {})}
        )
        self._fleet_run(index, snapshot.get("spans", []))

    def _merge_buffer(self, payload: dict) -> None:
        spans = payload.get("spans", [])
        base = self._seq
        parent = self._stack[-1].seq if self._stack else None
        top = 0
        for span in spans:
            top = max(top, int(span["seq"]) + 1)
            entry = strip_wall(span)
            entry = dict(entry)
            entry["seq"] = base + int(span["seq"])
            entry["parent"] = (
                parent if span.get("parent") is None
                else base + int(span["parent"])
            )
            self._write_span(entry, clock="sim", wall=span.get("wall_s"))
        self._seq = base + top
        self.run_metrics.merge(payload.get("metrics", {}))

    # -- finalization --------------------------------------------------------

    def finalize(
        self,
        experiment: str,
        runs: Dict[str, int],
        journal_entries: Optional[int] = None,
        extra_gauges: Optional[Dict[str, float]] = None,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Write the experiment-wide ``telemetry.json`` aggregate
        (and, when the health plane is on, ``health.json``).

        ``provenance`` records the execution's reproducibility
        fingerprint (code epoch, platform, seed, …) so comparative
        tooling (``pos diff``) can attribute result deltas between two
        executions to an identified input change.  It must be a pure
        function of the experiment's inputs — never of the schedule —
        to preserve the byte-identity contract.
        """
        if self.health is not None:
            self.health.finalize(experiment)
        if not self.enabled:
            return
        for name, value in sorted(runs.items()):
            self.experiment_metrics.gauge(f"runs.{name}", value)
        if journal_entries is not None:
            self.experiment_metrics.gauge("journal.appends", journal_entries)
        for name, value in sorted((extra_gauges or {}).items()):
            self.experiment_metrics.gauge(name, value)
        aggregate = MetricsRegistry()
        aggregate.merge(self.run_metrics)
        aggregate.merge(self.experiment_metrics)
        payload = {
            "experiment": experiment,
            "metrics": aggregate.snapshot(),
            "runs": {name: runs[name] for name in sorted(runs)},
            "spans": self._spans_written + len(self._stack),
        }
        if provenance:
            payload["provenance"] = provenance
        with open(
            os.path.join(self.path, TELEMETRY_NAME), "w", encoding="utf-8"
        ) as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2))
            handle.write("\n")
        self._fleet_root()

    # -- durability ----------------------------------------------------------

    def flush(self, fsync: bool = False) -> None:
        """Flush (and on phase boundaries fsync) log and trace."""
        self._log.flush(fsync=fsync)
        if self._trace is not None:
            self._trace.flush()
            if fsync:
                os.fsync(self._trace.fileno())
        if self._fleet is not None:
            self._fleet.flush()
            if fsync:
                os.fsync(self._fleet.fileno())

    def close(self) -> None:
        """Close all handles; dangling spans are recorded as evidence."""
        while self._stack:
            top = self._stack.pop()
            top.set(unfinished=True)
            self._write_span(top.record(self._clock()), clock="ticks")
        self._log.close()
        if self._trace is not None:
            self._trace.close()
            self._trace = None
        if self._wall is not None:
            self._wall.close()
            self._wall = None
        if self._fleet is not None:
            # A crash closes the trace with an unfinished root — crash
            # evidence in the torn file; resume rewrites it whole.
            self._fleet_root({"unfinished": True})
            self._fleet.close()
            self._fleet = None
        if self._fleet_wall is not None:
            self._fleet_wall.close()
            self._fleet_wall = None
        if self._dispatch is not None:
            self._dispatch.close()
            self._dispatch = None
        if self._cache_log is not None:
            self._cache_log.close()
            self._cache_log = None

    # -- internals -----------------------------------------------------------

    def _write_span(
        self, entry: dict, clock: str, wall: Optional[float] = None,
    ) -> None:
        if self._trace is None:
            return
        wall = entry.pop("wall_s", wall)
        record = dict(entry)
        record["clock"] = clock
        self._trace.write(json.dumps(record, sort_keys=True) + "\n")
        self._trace.flush()
        self._spans_written += 1
        if self._wall is not None and wall is not None:
            self._wall.write(
                json.dumps(
                    {"name": entry["name"], "seq": entry["seq"], "wall_s": wall},
                    sort_keys=True,
                )
                + "\n"
            )
            self._wall.flush()
