"""Dependency-free validation of telemetry artifacts.

The telemetry artifacts are a published interface: external tooling may
parse ``trace.jsonl`` and ``telemetry.json`` long after the toolchain
that wrote them is gone.  The interface is pinned by JSON schemas
checked in under ``docs/schemas/`` and enforced in CI; this module
implements the small subset of JSON Schema those files use (``type``,
``required``, ``properties``, ``items``, ``enum``, ``minimum``,
``additionalProperties``), so validation needs no third-party
``jsonschema`` package.

Run as a module to validate one experiment result folder::

    python -m repro.telemetry.schema <experiment folder>
"""

from __future__ import annotations

import json
import os
from typing import Any, List

__all__ = [
    "SchemaError",
    "validate",
    "validate_experiment",
    "validate_history",
    "validate_study",
    "schema_dir",
]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """An instance does not conform to its schema."""


def _type_ok(value: Any, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False
    return isinstance(value, expected)


def validate(instance: Any, schema: dict, path: str = "$") -> None:
    """Validate ``instance`` against the supported JSON Schema subset."""
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            raise SchemaError(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} is not one of {schema['enum']!r}"
        )
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance!r} is below minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        for name in schema.get("required", []):
            if name not in instance:
                raise SchemaError(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                validate(value, properties[name], f"{path}.{name}")
            elif schema.get("additionalProperties") is False:
                raise SchemaError(f"{path}: unexpected key {name!r}")
            elif isinstance(schema.get("additionalProperties"), dict):
                validate(
                    value, schema["additionalProperties"], f"{path}.{name}"
                )
    if isinstance(instance, list) and isinstance(schema.get("items"), dict):
        for position, value in enumerate(instance):
            validate(value, schema["items"], f"{path}[{position}]")


def schema_dir() -> str:
    """Location of the checked-in schema files (``docs/schemas/``)."""
    return os.path.normpath(
        os.path.join(
            os.path.dirname(__file__), "..", "..", "..", "docs", "schemas"
        )
    )


def _load_schema(name: str) -> dict:
    with open(
        os.path.join(schema_dir(), name), "r", encoding="utf-8"
    ) as handle:
        return json.load(handle)


def validate_experiment(experiment_path: str) -> List[str]:
    """Validate every telemetry artifact in one result folder.

    Returns the list of validated files; raises :class:`SchemaError`
    (with the file and JSON path) on the first violation.
    """
    validated: List[str] = []
    trace_schema = _load_schema("trace.schema.json")
    fleet_schema = _load_schema("fleet-trace.schema.json")
    telemetry_schema = _load_schema("telemetry.schema.json")
    run_schema = _load_schema("run-telemetry.schema.json")
    health_schema = _load_schema("health.schema.json")
    run_health_schema = _load_schema("run-health.schema.json")
    dispatch_schema = _load_schema("dispatch.schema.json")
    cache_schema = _load_schema("cache.schema.json")

    # Deterministic artifacts are strict: every line must parse.
    for trace_name, schema in (
        ("trace.jsonl", trace_schema),
        ("fleet-trace.jsonl", fleet_schema),
    ):
        trace_path = os.path.join(experiment_path, trace_name)
        if not os.path.isfile(trace_path):
            continue
        with open(trace_path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise SchemaError(
                        f"{trace_path}:{number}: not valid JSON: {exc}"
                    ) from exc
                try:
                    validate(record, schema)
                except SchemaError as exc:
                    raise SchemaError(f"{trace_path}:{number}: {exc}") from exc
        validated.append(trace_path)

    # Evidence sidecars tolerate a torn tail (a crashed writer's last
    # line is evidence, not a violation); complete records must conform.
    from repro.telemetry.jsonl import read_jsonl

    for sidecar_name, schema in (
        ("dispatch.jsonl", dispatch_schema),
        ("cache.jsonl", cache_schema),
    ):
        sidecar_path = os.path.join(experiment_path, sidecar_name)
        if not os.path.isfile(sidecar_path):
            continue
        for number, record in enumerate(read_jsonl(sidecar_path), start=1):
            try:
                validate(record, schema)
            except SchemaError as exc:
                raise SchemaError(f"{sidecar_path}:{number}: {exc}") from exc
        validated.append(sidecar_path)

    telemetry_path = os.path.join(experiment_path, "telemetry.json")
    if os.path.isfile(telemetry_path):
        with open(telemetry_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate(payload, telemetry_schema)
        except SchemaError as exc:
            raise SchemaError(f"{telemetry_path}: {exc}") from exc
        validated.append(telemetry_path)

    health_path = os.path.join(experiment_path, "health.json")
    if os.path.isfile(health_path):
        with open(health_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate(payload, health_schema)
        except SchemaError as exc:
            raise SchemaError(f"{health_path}: {exc}") from exc
        validated.append(health_path)

    for name in sorted(os.listdir(experiment_path)):
        if not name.startswith("run-"):
            continue
        run_path = os.path.join(experiment_path, name, "telemetry.json")
        if os.path.isfile(run_path):
            with open(run_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            try:
                validate(payload, run_schema)
            except SchemaError as exc:
                raise SchemaError(f"{run_path}: {exc}") from exc
            validated.append(run_path)
        run_health_path = os.path.join(experiment_path, name, "health.json")
        if os.path.isfile(run_health_path):
            with open(run_health_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            try:
                validate(payload, run_health_schema)
            except SchemaError as exc:
                raise SchemaError(f"{run_health_path}: {exc}") from exc
            validated.append(run_health_path)

    # Comparative-analysis reports saved back into the tree (`pos diff
    # --save`, `pos doctor --save`) are part of the published interface
    # too.
    for name, schema_name in (
        ("diff.json", "diff.schema.json"),
        ("doctor.json", "doctor.schema.json"),
    ):
        report_path = os.path.join(experiment_path, name)
        if not os.path.isfile(report_path):
            continue
        with open(report_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        try:
            validate(payload, _load_schema(schema_name))
        except SchemaError as exc:
            raise SchemaError(f"{report_path}: {exc}") from exc
        validated.append(report_path)
    return validated


def validate_history(history_dir: str) -> List[str]:
    """Validate a perf-history ledger (``history.jsonl``) record by record.

    The ledger is append-only with one flushed write per record, so —
    like the evidence sidecars — a torn final line is tolerated; every
    complete record must conform.
    """
    from repro.telemetry.jsonl import read_jsonl

    history_path = os.path.join(history_dir, "history.jsonl")
    if not os.path.isfile(history_path):
        raise SchemaError(f"no history.jsonl in {history_dir}")
    schema = _load_schema("perf-history.schema.json")
    for number, record in enumerate(read_jsonl(history_path), start=1):
        try:
            validate(record, schema)
        except SchemaError as exc:
            raise SchemaError(f"{history_path}:{number}: {exc}") from exc
    return [history_path]


def validate_study(study_dir: str) -> List[str]:
    """Validate a study tree's own artifacts (aggregate + journal).

    The per-experiment artifacts below the replications are covered by
    :func:`validate_experiment`; this checks the study layer's two
    published files: ``study.json`` against its schema, and every
    complete ``study.jsonl`` record (the journal is append-only with
    one flushed write per record, so — like the evidence sidecars — a
    torn final line is tolerated).
    """
    from repro.telemetry.jsonl import read_jsonl

    validated: List[str] = []
    aggregate_path = os.path.join(study_dir, "study.json")
    if not os.path.isfile(aggregate_path):
        raise SchemaError(f"no study.json in {study_dir}")
    with open(aggregate_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        validate(payload, _load_schema("study.schema.json"))
    except SchemaError as exc:
        raise SchemaError(f"{aggregate_path}: {exc}") from exc
    validated.append(aggregate_path)

    journal_path = os.path.join(study_dir, "study.jsonl")
    if os.path.isfile(journal_path):
        schema = _load_schema("study-journal.schema.json")
        for number, record in enumerate(read_jsonl(journal_path), start=1):
            try:
                validate(record, schema)
            except SchemaError as exc:
                raise SchemaError(f"{journal_path}:{number}: {exc}") from exc
        validated.append(journal_path)
    return validated


def _main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.schema <experiment folder>")
        return 2
    try:
        validated = validate_experiment(argv[0])
    except SchemaError as exc:
        print(f"schema violation: {exc}")
        return 1
    if not validated:
        print(f"no telemetry artifacts found in {argv[0]}")
        return 1
    for path in validated:
        print(f"valid: {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main(sys.argv[1:]))
