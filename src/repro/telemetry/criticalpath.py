"""Critical-path profiling over the stitched fleet trace.

``pos trace <dir>`` answers the question the flat evidence sidecars
cannot: *where did the wall-clock go across the fleet*.  The input is
the artifact pair the tracing plane leaves behind:

``fleet-trace.jsonl``
    The deterministic causal skeleton — one dispatch → run → persist
    chain per delivered run under one ``fleet.experiment`` root.
``fleet-trace-wall.jsonl``
    The quarantined real timings of the distributed pump: transport-
    clock instants for every send, receive, delivery, death and
    completion, plus per-run agent wall seconds riding the result
    payloads.

With wall evidence present, the analyzer walks the delivery sequence
and attributes **every instant** of the pump's lifetime
``[begin, complete]`` to exactly one phase — dispatch latency, run
execution, reorder-buffer stall, persist/finalize — so the breakdown
*sums to the total by construction*.  The per-run reasoning mirrors a
longest-path argument over the causal DAG: run ``k`` can only be
delivered once (a) it arrived and (b) run ``k-1`` was delivered;
whichever edge finished later was the critical one, and the time since
the previous delivery is charged to that edge's phase.

Without wall evidence (a serial execution traces causally but has no
pump), the profile degrades to the virtual clock: run execution is the
whole critical path.

Everything here is read-side only — plain functions over artifact
files, no controller, no live state — like the rest of the telemetry
read plane (:mod:`repro.telemetry.report`, :mod:`repro.telemetry.live`).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.errors import PosError
from repro.telemetry.jsonl import read_jsonl, read_jsonl_or_none
from repro.telemetry.plane import CACHE_NAME, FLEET_TRACE_NAME, FLEET_WALL_NAME

__all__ = [
    "TraceError",
    "find_fleet_trace",
    "load_fleet_trace",
    "analyze",
    "analyze_campaign",
    "render_analysis",
    "render_campaign_analysis",
]

#: The phase keys of every breakdown, in presentation order.
PHASES = ("admission", "dispatch", "run", "reorder", "persist")


class TraceError(PosError):
    """The folder does not carry the artifacts a trace profile needs."""


def find_fleet_trace(path: str) -> Optional[str]:
    """Locate ``fleet-trace.jsonl`` at ``path`` or in any folder below."""
    direct = os.path.join(path, FLEET_TRACE_NAME)
    if os.path.isfile(direct):
        return direct
    candidates: List[str] = []
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        if FLEET_TRACE_NAME in filenames:
            candidates.append(os.path.join(dirpath, FLEET_TRACE_NAME))
    return candidates[0] if candidates else None


def load_fleet_trace(trace_path: str) -> Dict[str, Any]:
    """The stitched DAG as plain data: root, per-run chains, trace id."""
    records = read_jsonl(trace_path)
    if not records:
        raise TraceError(
            f"{trace_path} carries no complete trace record "
            f"(crashed before the first delivery?)"
        )
    by_span = {record["span"]: record for record in records}
    root = by_span.get("root")
    runs: Dict[int, Dict[str, dict]] = {}
    for record in records:
        index = record.get("run")
        if index is None:
            continue
        stage = record["name"].rpartition(".")[2]  # dispatch | run | persist
        runs.setdefault(int(index), {})[stage] = record
    return {
        "trace": records[0].get("trace"),
        "experiment": (root or {}).get("attrs", {}).get("experiment"),
        "total_runs": (root or {}).get("attrs", {}).get("runs"),
        "root": root,
        "records": records,
        "runs": runs,
    }


def _cache_profile(events: Optional[List[dict]]) -> Optional[Dict[str, Any]]:
    if events is None:
        return None
    profile = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
    for event in events:
        kind = event.get("event", "")
        name = kind.rpartition(".")[2]
        if kind.startswith("cache.") and name + "s" in ("hits", "misses", "stores"):
            profile[name + "s"] += 1
        elif kind == "cache.corrupt":
            profile["corrupt"] += 1
    return profile


def _wall_profile(events: List[dict]) -> Dict[str, Any]:
    """Attribute the pump's whole lifetime to phases, exactly once each.

    The sidecar is append-only across resumes, so one file may hold
    several pump lifetimes (a crashed execution's segment followed by
    the resume's).  Each segment has its own transport-clock origin;
    they are profiled independently and folded: phase seconds add,
    agent books merge, and the timeline is rebased onto one synthetic
    concatenated clock so later segments follow earlier ones.
    """
    segments: List[List[dict]] = []
    current: List[dict] = []
    for event in events:
        if event.get("event") == "begin" and current:
            segments.append(current)
            current = []
        current.append(event)
    if current:
        segments.append(current)

    phases = {name: 0.0 for name in PHASES}
    agents: Dict[str, Dict[str, Any]] = {}
    slowest_by_run: Dict[int, dict] = {}
    timeline: List[dict] = []
    seen_runs: set = set()
    wall_of: Dict[int, float] = {}
    deaths = 0
    total = 0.0
    for segment in segments:
        part = _segment_profile(segment)
        offset = total - part["begin"]
        total += part["total"]
        for name in PHASES:
            phases[name] += part["phases"][name]
        deaths += part["deaths"]
        for book in part["agents"]:
            merged = agents.setdefault(
                book["agent"],
                {"agent": book["agent"], "runs": 0, "busy": 0.0,
                 "wall_s": 0.0},
            )
            merged["runs"] += book["runs"]
            merged["busy"] += book["busy"]
            merged["wall_s"] += book["wall_s"]
        for row in part["slowest"]:
            slowest_by_run.setdefault(row["run"], row)
        for entry in part["timeline"]:
            if entry["run"] in seen_runs:
                continue
            seen_runs.add(entry["run"])
            timeline.append({
                "run": entry["run"],
                "agent": entry["agent"],
                "dispatch": entry["dispatch"] + offset,
                "arrival": entry["arrival"] + offset,
                "deliver": (
                    entry["deliver"] + offset
                    if entry["deliver"] is not None else None
                ),
            })
        wall_of.update(part["executed_wall_s"])
    for book in agents.values():
        book["idle"] = max(0.0, total - book["busy"])
        book["utilization"] = (book["busy"] / total) if total > 0 else 0.0
    slowest = sorted(
        slowest_by_run.values(),
        key=lambda row: (-row["duration"], row["run"]),
    )
    return {
        "clock": "transport",
        "total": total,
        "begin": 0.0,
        "phases": phases,
        "agents": [agents[name] for name in sorted(agents)],
        "slowest": slowest,
        "deaths": deaths,
        "timeline": timeline,
        "executed_wall_s": wall_of,
    }


def _segment_profile(events: List[dict]) -> Dict[str, Any]:
    """Profile one pump lifetime (one ``begin``..``complete`` segment).

    Works in the transport-clock domain (virtual rounds on loopback,
    seconds on pipe): the units cancel in the percentages, and the
    agent wall seconds ride along separately for absolute numbers.
    """
    begin_t = next(
        (e["t"] for e in events if e.get("event") == "begin"), None,
    )
    complete_t = next(
        (e["t"] for e in events if e.get("event") == "complete"), None,
    )
    if begin_t is None:
        begin_t = events[0]["t"] if events else 0.0
    if complete_t is None:
        complete_t = events[-1]["t"] if events else begin_t
    dispatch_t: Dict[int, float] = {}
    arrival_t: Dict[int, float] = {}
    deliver_t: Dict[int, float] = {}
    agent_of: Dict[int, str] = {}
    wall_of: Dict[int, float] = {}
    deaths: List[dict] = []
    for event in events:
        kind = event.get("event")
        if kind == "send" and event.get("kind") == "dispatch":
            for index in event.get("runs") or []:
                dispatch_t.setdefault(int(index), event["t"])
        elif kind == "recv" and event.get("kind") == "result":
            index = int(event["run"])
            if index not in arrival_t:
                arrival_t[index] = event["t"]
                agent_of[index] = event.get("agent", "?")
                if event.get("wall_s") is not None:
                    wall_of[index] = float(event["wall_s"])
        elif kind == "deliver":
            deliver_t.setdefault(int(event["run"]), event["t"])
        elif kind == "death":
            deaths.append(event)

    phases = {name: 0.0 for name in PHASES}
    prev = begin_t
    for index in sorted(deliver_t):
        delivered = deliver_t[index]
        arrived = arrival_t.get(index)
        if arrived is None:
            # Adopted or cache-served: no agent produced it here, the
            # delivery instant is pure merge/persist work.
            phases["persist"] += max(0.0, delivered - prev)
        elif arrived >= prev:
            # The run's production was the critical edge: charge the
            # window since the previous delivery to getting the work
            # out (dispatch), doing it (run), and merging it (reorder
            # covers the in-buffer wait between arrival and delivery).
            dispatched = dispatch_t.get(index, prev)
            phases["dispatch"] += max(0.0, dispatched - prev)
            phases["run"] += arrived - max(prev, dispatched)
            phases["reorder"] += max(0.0, delivered - arrived)
        else:
            # Arrived before its turn: the run sat in the reorder
            # buffer while earlier indices were still the bottleneck.
            phases["reorder"] += max(0.0, delivered - prev)
        prev = max(prev, delivered)
    phases["persist"] += max(0.0, complete_t - prev)

    # Per-agent occupancy in the transport-clock domain: the union of
    # each run's [dispatch, arrival] window, folded per agent.
    total = max(0.0, complete_t - begin_t)
    agents: Dict[str, Dict[str, Any]] = {}
    for index in sorted(arrival_t):
        agent = agent_of[index]
        book = agents.setdefault(
            agent, {"agent": agent, "runs": 0, "busy": 0.0, "wall_s": 0.0,
                    "cursor": begin_t},
        )
        book["runs"] += 1
        started = max(dispatch_t.get(index, begin_t), book["cursor"])
        book["busy"] += max(0.0, arrival_t[index] - started)
        book["cursor"] = max(book["cursor"], arrival_t[index])
        book["wall_s"] += wall_of.get(index, 0.0)
    for book in agents.values():
        book.pop("cursor", None)
        book["idle"] = max(0.0, total - book["busy"])
        book["utilization"] = (book["busy"] / total) if total > 0 else 0.0

    slowest = sorted(
        (
            {
                "run": index,
                "agent": agent_of.get(index),
                "duration": (
                    wall_of[index] if index in wall_of
                    else arrival_t[index] - dispatch_t.get(index, begin_t)
                ),
                "unit": "s" if index in wall_of else "t",
            }
            for index in arrival_t
        ),
        key=lambda row: (-row["duration"], row["run"]),
    )
    timeline = [
        {
            "run": index,
            "agent": agent_of[index],
            "dispatch": dispatch_t.get(index, begin_t),
            "arrival": arrival_t[index],
            "deliver": deliver_t.get(index),
        }
        for index in sorted(arrival_t)
    ]
    return {
        "clock": "transport",
        "total": total,
        "begin": begin_t,
        "phases": phases,
        "agents": [agents[name] for name in sorted(agents)],
        "slowest": slowest,
        "deaths": len(deaths),
        "timeline": timeline,
        "executed_wall_s": wall_of,
    }


def _sim_profile(runs: Dict[int, Dict[str, dict]]) -> Dict[str, Any]:
    """Virtual-clock fallback when no pump left wall evidence."""
    durations = {
        index: float(chain["run"]["end"]) - float(chain["run"]["start"])
        for index, chain in sorted(runs.items())
        if "run" in chain
    }
    total = sum(durations.values())
    phases = {name: 0.0 for name in PHASES}
    phases["run"] = total
    slowest = sorted(
        (
            {"run": index, "agent": None, "duration": durations[index],
             "unit": "s"}
            for index in durations
        ),
        key=lambda row: (-row["duration"], row["run"]),
    )
    cursor = 0.0
    timeline = []
    for index in sorted(durations):
        timeline.append({
            "run": index,
            "agent": None,
            "dispatch": cursor,
            "arrival": cursor + durations[index],
            "deliver": cursor + durations[index],
        })
        cursor += durations[index]
    return {
        "clock": "sim",
        "total": total,
        "begin": 0.0,
        "phases": phases,
        "agents": [],
        "slowest": slowest,
        "deaths": 0,
        "timeline": timeline,
        "executed_wall_s": {},
    }


def analyze(experiment_path: str, clock: str = "auto") -> Dict[str, Any]:
    """The full trace profile of one experiment folder, as plain data.

    ``clock`` selects the time base: ``"auto"`` prefers the quarantined
    wall evidence when a pump left any; ``"sim"`` forces the virtual-
    clock profile, which is a pure function of the deterministic trace
    and therefore safe for byte-stable comparative reports
    (:mod:`repro.telemetry.diff`).
    """
    if clock not in ("auto", "sim"):
        raise TraceError(f"unknown trace clock {clock!r} (auto or sim)")
    trace_path = find_fleet_trace(experiment_path)
    if trace_path is None:
        raise TraceError(
            f"no {FLEET_TRACE_NAME} under {experiment_path}; was the "
            f"experiment run with telemetry on (POS_TELEMETRY, "
            f"POS_FLEET_TRACE not 0)?"
        )
    dag = load_fleet_trace(trace_path)
    folder = os.path.dirname(trace_path)
    wall_events = (
        read_jsonl_or_none(os.path.join(folder, FLEET_WALL_NAME))
        if clock == "auto" else None
    )
    if wall_events:
        profile = _wall_profile(wall_events)
    else:
        profile = _sim_profile(dag["runs"])

    cache = _cache_profile(
        read_jsonl_or_none(os.path.join(folder, CACHE_NAME))
    )
    if cache is not None:
        executed = profile["executed_wall_s"]
        mean = (
            sum(executed.values()) / len(executed) if executed else None
        )
        if mean is None:
            sim = [
                float(c["run"]["end"]) - float(c["run"]["start"])
                for c in dag["runs"].values() if "run" in c
            ]
            mean = (sum(sim) / len(sim)) if sim else 0.0
        cache["saved_s"] = cache["hits"] * mean
    profile.pop("executed_wall_s", None)
    return {
        "path": trace_path,
        "trace": dag["trace"],
        "experiment": dag["experiment"],
        "total_runs": dag["total_runs"],
        "spans": len(dag["records"]),
        "runs_traced": len(dag["runs"]),
        "cache": cache,
        **profile,
    }


def analyze_campaign(campaign_path: str) -> Dict[str, Any]:
    """Fold per-experiment profiles under one campaign, admission-aware.

    Joins the campaign's ``admission.jsonl`` windows with each admitted
    experiment's fleet trace (where one exists): per-experiment totals
    plus the calendar wait between submission order and the planned
    window start — the campaign-level "admission" phase the
    single-experiment profile cannot see.
    """
    from repro.campaign.admission import ADMISSION_NAME

    entries = read_jsonl_or_none(os.path.join(campaign_path, ADMISSION_NAME))
    if entries is None:
        raise TraceError(
            f"no {ADMISSION_NAME} in {campaign_path} "
            f"(not a campaign folder?)"
        )
    experiments: List[Dict[str, Any]] = []
    aggregate = {name: 0.0 for name in PHASES}
    for entry in entries:
        if entry.get("event") != "admit":
            continue
        row: Dict[str, Any] = {
            "experiment": entry.get("experiment"),
            "user": entry.get("user"),
            "window": [entry.get("start"), entry.get("end")],
            "admission_wait": float(entry.get("start") or 0.0),
            "profile": None,
        }
        base = os.path.join(
            campaign_path, "experiments",
            str(entry.get("user")), str(entry.get("experiment")),
        )
        trace_path = (
            find_fleet_trace(base) if os.path.isdir(base) else None
        )
        if trace_path is not None:
            profile = analyze(os.path.dirname(trace_path))
            row["profile"] = profile
            for name in PHASES:
                aggregate[name] += profile["phases"][name]
        aggregate["admission"] += row["admission_wait"]
        experiments.append(row)
    return {
        "campaign": campaign_path,
        "experiments": experiments,
        "phases": aggregate,
        "total": sum(aggregate.values()),
    }


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------

def _phase_lines(phases: Dict[str, float], total: float) -> List[str]:
    lines = []
    for name in PHASES:
        value = phases.get(name, 0.0)
        share = (100.0 * value / total) if total > 0 else 0.0
        bar = "#" * int(round(share / 4))
        lines.append(f"  {name:<10} {value:>10.4f} {share:>5.1f}%  {bar}")
    lines.append(f"  {'total':<10} {total:>10.4f} 100.0%")
    return lines


def render_analysis(analysis: Dict[str, Any], top: int = 5) -> str:
    """Human-readable trace profile for the CLI."""
    lines: List[str] = []
    lines.append(f"fleet trace: {analysis['path']}")
    lines.append(
        f"trace id {analysis['trace']} | experiment "
        f"{analysis['experiment']} | {analysis['runs_traced']}/"
        f"{analysis['total_runs']} runs traced | "
        f"{analysis['spans']} spans"
    )
    clock = analysis["clock"]
    unit = "transport clock units" if clock == "transport" else "sim seconds"
    lines.append("")
    lines.append(f"critical path ({unit}):")
    lines.extend(_phase_lines(analysis["phases"], analysis["total"]))
    if analysis["agents"]:
        lines.append("")
        header = (
            f"  {'agent':<12} {'runs':>4} {'busy':>9} {'idle':>9} "
            f"{'util':>6} {'run wall s':>10}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for book in analysis["agents"]:
            lines.append(
                f"  {book['agent']:<12} {book['runs']:>4} "
                f"{book['busy']:>9.3f} {book['idle']:>9.3f} "
                f"{book['utilization']:>5.1%} {book['wall_s']:>10.4f}"
            )
    if analysis["deaths"]:
        lines.append("")
        lines.append(f"  agent deaths observed: {analysis['deaths']}")
    slowest = analysis["slowest"][:top]
    if slowest:
        lines.append("")
        lines.append(f"slowest runs (top {len(slowest)}):")
        for row in slowest:
            where = f" on {row['agent']}" if row.get("agent") else ""
            lines.append(
                f"  run {row['run']:>3}  {row['duration']:.4f}"
                f"{row.get('unit', 's')}{where}"
            )
    cache = analysis.get("cache")
    if cache is not None:
        lines.append("")
        lines.append(
            f"run cache: {cache['hits']} hit(s), {cache['misses']} "
            f"miss(es), {cache['stores']} store(s), "
            f"{cache['corrupt']} corrupt — "
            f"~{cache['saved_s']:.4f}s execution avoided"
        )
    return "\n".join(lines) + "\n"


def render_campaign_analysis(analysis: Dict[str, Any], top: int = 5) -> str:
    """Campaign-level roll-up: admission windows + per-experiment totals."""
    lines: List[str] = []
    lines.append(f"campaign: {analysis['campaign']}")
    lines.append("")
    header = (
        f"  {'experiment':<16} {'user':<10} {'window':<16} "
        f"{'wait':>8} {'total':>10}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for row in analysis["experiments"]:
        # Admission rows written by older planners may lack window
        # bounds; render the gap instead of crashing on None.
        start, end = row["window"]
        if start is None or end is None:
            window = "(no window)"
        else:
            window = f"[{start:g}, {end:g}]"
        profile = row.get("profile")
        total = f"{profile['total']:.4f}" if profile else "(no trace)"
        lines.append(
            f"  {str(row['experiment']):<16} {str(row['user']):<10} "
            f"{window:<16} {row['admission_wait']:>8g} {total:>10}"
        )
    lines.append("")
    lines.append("aggregate critical path (campaign calendar + traces):")
    lines.extend(_phase_lines(analysis["phases"], analysis["total"]))
    return "\n".join(lines) + "\n"
