"""Nested, monotonic-sequence-ordered spans.

A span is one step of the execution process — an experiment, a phase, a
run, an attempt, a script, a recovery, a load-generator job — with a
name, a parent, attributes, and virtual start/end times.  Sequence
numbers are assigned at span *start* and are the authoritative order;
records are emitted at span *end* (a span's children therefore precede
it in the artifact, exactly like a post-order trace).

Times come from an injectable virtual clock — the netsim simulator for
run-scoped spans, a logical tick clock for controller workflow spans —
never from the wall clock, so the trace artifact is byte-reproducible.
Wall-clock profiling (:meth:`Span.profile`) stores its measurement on
the in-memory span only; the artifact writers strip it from the
deterministic files and divert it to a sidecar when
``POS_TELEMETRY_WALLCLOCK=1`` is set.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["LogicalClock", "Span", "RunTelemetry", "strip_wall"]


class LogicalClock:
    """Virtual time as a monotone event counter.

    Every call returns the next integer tick.  Controller workflow spans
    use this instead of the controller's retry clock: retry backoff
    sleeps accumulate on the *sequential* controller's clock but on the
    workers' private clocks under ``--jobs N``, so wall- or sleep-based
    phase times would be job-count-dependent.  Tick times are a pure
    function of the recorded span structure.
    """

    def __init__(self) -> None:
        self._ticks = 0

    def __call__(self) -> float:
        self._ticks += 1
        return float(self._ticks)


class Span:
    """One live span; becomes a plain record dict when it ends."""

    __slots__ = ("name", "seq", "parent", "start", "end", "attrs", "wall_s")

    def __init__(
        self,
        name: str,
        seq: int,
        parent: Optional[int],
        start: float,
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.seq = seq
        self.parent = parent
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.wall_s: Optional[float] = None

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes while the span is live."""
        self.attrs.update(attrs)

    @contextmanager
    def profile(self) -> Iterator["Span"]:
        """Measure wall-clock time of a block onto this span.

        The measurement never enters the deterministic artifacts; it
        feeds the overhead benchmark and, when
        ``POS_TELEMETRY_WALLCLOCK=1``, the ``trace-wall.jsonl`` sidecar.
        """
        begin = _time.perf_counter()
        try:
            yield self
        finally:
            elapsed = _time.perf_counter() - begin
            self.wall_s = (self.wall_s or 0.0) + elapsed

    def record(self, end: float) -> dict:
        self.end = end
        entry: Dict[str, Any] = {
            "seq": self.seq,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "end": end,
            "attrs": dict(self.attrs),
        }
        if self.wall_s is not None:
            entry["wall_s"] = self.wall_s
        return entry


def strip_wall(span: dict) -> dict:
    """A copy of a span record without the wall-clock measurement."""
    if "wall_s" not in span:
        return span
    return {key: value for key, value in span.items() if key != "wall_s"}


class RunTelemetry:
    """Span + metric buffer for one scope (a run, or the workflow).

    Picklable plain-data payloads: a parallel worker fills one per run
    and ships it back inside ``RunOutcome``; the parent re-assigns
    global sequence numbers in run order, so local sequence numbers
    always start at 0 and the buffer is position-independent.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._seq = 0
        self._stack: List[Span] = []
        self.spans: List[dict] = []
        self.metrics = MetricsRegistry()

    # -- spans ---------------------------------------------------------------

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the innermost live span."""
        parent = self._stack[-1].seq if self._stack else None
        span = Span(name, self._seq, parent, self._clock(), dict(attrs))
        self._seq += 1
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> dict:
        """Close ``span`` (and any dangling children) and record it."""
        while self._stack:
            top = self._stack.pop()
            entry = top.record(self._clock())
            self.spans.append(entry)
            if top is span:
                return entry
        raise ValueError(f"span {span.name!r} is not live in this collector")

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    def record_span(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> dict:
        """Record a completed span with explicit virtual times.

        Used when the span's extent is known analytically (the batched
        fast path computes a whole measurement job without advancing the
        simulator through it).
        """
        parent = self._stack[-1].seq if self._stack else None
        span = Span(name, self._seq, parent, start, dict(attrs))
        self._seq += 1
        entry = span.record(end)
        self.spans.append(entry)
        return entry

    def event(self, name: str, **attrs: Any) -> dict:
        """A zero-duration span: something happened at one instant."""
        now = self._clock()
        return self.record_span(name, now, now, **attrs)

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.metrics.count(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- export --------------------------------------------------------------

    def payload(self) -> dict:
        """Picklable buffer: local-sequence spans plus metric snapshot."""
        return {"spans": list(self.spans), "metrics": self.metrics.snapshot()}
