"""Append-only performance history and regression detection.

The benchmark suite leaves one ``BENCH_*.json`` per subsystem — a
snapshot of the *current* tree's performance with no memory of any
earlier one.  A regression therefore only surfaces when a human
remembers what the numbers used to be.  This module gives the numbers
a memory:

* ``pos perf record`` flattens every numeric leaf of a benchmark
  snapshot into seq-numbered records appended to
  ``benchmarks/history/history.jsonl`` (the bench conftest does this
  automatically after each benchmark session);
* ``pos perf trend`` folds the history into per-metric series and runs
  a deterministic detector over each: the newest point is compared
  against the robust baseline (median of all earlier points) with a
  direction-aware threshold, and a median-split change-point scan
  locates *where* a shift entered the history;
* ``pos perf trend --check`` exits non-zero on any regression, which
  is what CI gates on.

Records carry **no timestamps** — ordering is the append order,
identity is the monotone ``seq`` — so the history file and every
report derived from it are pure functions of the recorded values:
re-running ``pos perf trend`` anywhere, any time, yields byte-identical
output.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import PosError
from repro.evaluation.tendencies import median
from repro.telemetry.jsonl import read_jsonl

__all__ = [
    "PerfHistoryError",
    "HISTORY_NAME",
    "flatten_bench",
    "record_bench",
    "load_history",
    "trend",
    "render_trend",
]

#: The single append-only ledger inside the history directory.
HISTORY_NAME = "history.jsonl"

#: Relative change of the newest point against the robust baseline
#: beyond which a directed metric counts as regressed.  Wall-clock
#: benches are noisy across machines; half-again is decisively outside
#: that noise while a genuine 2x slowdown (rel = +1.0) clears it.
DEFAULT_THRESHOLD = 0.5

#: Leaves that are benchmark *configuration*, not measured outcomes.
CONFIG_LEAVES = frozenset({
    "cpu_count", "sweep_runs", "reps", "gate", "agents",
    "frame_size", "rate_pps", "runs",
})


class PerfHistoryError(PosError):
    """The history ledger is missing or malformed."""


def _direction(metric: str) -> Optional[str]:
    """Which way is better for this metric, if knowable from its name."""
    leaf = metric.rpartition(".")[2]
    if leaf in CONFIG_LEAVES:
        return None
    if leaf == "speedup" or leaf == "reduction" or leaf.endswith("_speedup"):
        return "higher"
    if leaf.endswith("_s") or leaf == "overhead":
        return "lower"
    return None


def flatten_bench(payload: Dict[str, Any]) -> Dict[str, float]:
    """Every numeric leaf of a BENCH snapshot as ``dotted.path: value``."""
    flat: Dict[str, float] = {}

    def walk(node: Any, prefix: str) -> None:
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, bool):
            return  # booleans are flags, not measurements
        elif isinstance(node, (int, float)):
            flat[prefix] = float(node)

    walk(payload, "")
    return flat


def load_history(history_dir: str) -> List[dict]:
    """All records of the ledger, in append (= seq) order."""
    path = os.path.join(history_dir, HISTORY_NAME)
    if not os.path.isfile(path):
        raise PerfHistoryError(
            f"no {HISTORY_NAME} in {history_dir}; record a benchmark "
            f"snapshot first (pos perf record)"
        )
    return read_jsonl(path)


def record_bench(history_dir: str, bench_path: str) -> List[dict]:
    """Append one BENCH snapshot's numeric leaves to the ledger."""
    if not os.path.isfile(bench_path):
        raise PerfHistoryError(f"no such benchmark snapshot: {bench_path}")
    with open(bench_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    source = os.path.basename(bench_path)
    bench = source
    if bench.startswith("BENCH_"):
        bench = bench[len("BENCH_"):]
    if bench.endswith(".json"):
        bench = bench[: -len(".json")]
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, HISTORY_NAME)
    existing = read_jsonl(path) if os.path.isfile(path) else []
    seq = max((int(r.get("seq", 0)) for r in existing), default=0)
    records: List[dict] = []
    for metric, value in sorted(flatten_bench(payload).items()):
        seq += 1
        records.append({
            "seq": seq,
            "bench": bench,
            "metric": metric,
            "value": value,
            "direction": _direction(metric),
            "source": source,
        })
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return records


def _change_point(values: Sequence[float]) -> Optional[int]:
    """Index where a level shift most plausibly entered, or ``None``.

    Scans every split with at least two points on each side and keeps
    the one maximizing the absolute difference of the side medians,
    CUSUM-weighted by ``sqrt(k * (n - k))`` so among equal shifts the
    balanced split (the actual entry point of the level change) wins
    over one that merely clips the edge; reported only when the shift
    is large relative to the left level.
    """
    n = len(values)
    if n < 4:
        return None
    best_index: Optional[int] = None
    best_score = 0.0
    best_shift = 0.0
    for split in range(2, n - 1):
        left = median(values[:split])
        right = median(values[split:])
        shift = abs(right - left)
        score = shift * (split * (n - split)) ** 0.5
        if score > best_score:
            best_score = score
            best_shift = shift
            best_index = split
    if best_index is None:
        return None
    left_level = abs(median(values[:best_index]))
    scale = left_level if left_level > 0 else 1.0
    if best_shift / scale < 0.25:
        return None
    return best_index


def trend(
    records: List[dict], threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, Any]:
    """Fold history records into per-metric series with verdicts."""
    series_values: Dict[str, List[float]] = {}
    series_meta: Dict[str, dict] = {}
    for record in records:
        key = f"{record['bench']}.{record['metric']}"
        series_values.setdefault(key, []).append(float(record["value"]))
        series_meta[key] = record
    series: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    for key in sorted(series_values):
        values = series_values[key]
        direction = series_meta[key].get("direction")
        row: Dict[str, Any] = {
            "series": key,
            "bench": series_meta[key]["bench"],
            "metric": series_meta[key]["metric"],
            "n": len(values),
            "first": values[0],
            "last": values[-1],
            "direction": direction,
            "baseline": None,
            "rel": None,
            "regressed": False,
            "change_point": _change_point(values),
        }
        if direction is not None and len(values) >= 2:
            baseline = median(values[:-1])
            row["baseline"] = baseline
            if baseline != 0.0:
                rel = (values[-1] - baseline) / abs(baseline)
                row["rel"] = rel
                regressed = (
                    rel > threshold if direction == "lower"
                    else rel < -threshold
                )
                row["regressed"] = regressed
                if regressed:
                    regressions.append(row)
        series.append(row)
    return {
        "threshold": threshold,
        "series": series,
        "regressions": regressions,
    }


def render_trend(report: Dict[str, Any], verbose: bool = False) -> str:
    """Human-readable trend report for the CLI."""
    lines: List[str] = []
    lines.append(
        f"perf history: {len(report['series'])} series, "
        f"threshold {report['threshold']:.0%}"
    )
    shown = 0
    for row in report["series"]:
        interesting = (
            row["regressed"] or row["change_point"] is not None
            or (verbose and row["direction"] is not None)
        )
        if not interesting:
            continue
        shown += 1
        rel = f"{row['rel']:+.1%}" if row["rel"] is not None else "n/a"
        flags = []
        if row["regressed"]:
            flags.append("REGRESSION")
        if row["change_point"] is not None:
            flags.append(f"shift at point {row['change_point']}")
        lines.append(
            f"  {row['series']}: {row['first']:g} .. {row['last']:g} "
            f"(n={row['n']}, last vs baseline {rel})"
            + (f" [{', '.join(flags)}]" if flags else "")
        )
    if shown == 0:
        lines.append("  no regressions, no level shifts")
    if report["regressions"]:
        lines.append(
            f"verdict: {len(report['regressions'])} regression(s) detected"
        )
    else:
        lines.append("verdict: no regressions")
    return "\n".join(lines) + "\n"
