"""Automated diagnosis of one experiment result tree (``pos doctor``).

The artifact tree already carries everything needed to explain a bad
(or suspicious) execution — the journal, the metric aggregates, the
health ledger, and the quarantined evidence sidecars of the distributed
plane.  What it lacks is a reader that folds them *together*: the
journal says run 7 was retried, the dispatch log says agent-01 died
twice, the health ledger says the DuT wedged — but nobody connects
those dots at two in the morning.  ``pos doctor DIR`` is that reader:
it turns the tree into a ranked list of findings, each carrying the
artifact that evidences it.

Determinism contract: the default report is byte-identical no matter
which schedule (``--jobs``/``--agents``/crash + ``--resume``) produced
the tree.  That holds because every finding derives either from the
deterministic artifacts (journal, telemetry, health, fleet trace) or
from evidence events that only occur when something notable happened
(deaths, quarantines, re-dispatches, cache corruption) — a clean run
produces no evidence findings regardless of schedule, and the folded
counts carry no wall-clock values.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.errors import PosError
from repro.evaluation.tendencies import median, robust_z
from repro.telemetry.jsonl import read_jsonl, read_jsonl_or_none
from repro.telemetry.plane import CACHE_NAME, DISPATCH_NAME

__all__ = ["DoctorError", "diagnose", "render_diagnosis", "DOCTOR_NAME"]

#: File name a saved report lands under (``pos doctor --save``).
DOCTOR_NAME = "doctor.json"

#: Robust z-score beyond which a run's duration is anomalous.  3.5 is
#: the customary Iglewicz–Hoaglin cutoff for modified z-scores.
ANOMALY_Z = 3.5

#: Retried-run count at which retries stop being routine.
RETRY_STORM = 3

_SEVERITY_RANK = {"critical": 0, "warning": 1, "info": 2}


class DoctorError(PosError):
    """The folder does not look like an experiment result tree."""


def _read_json(path: str) -> Optional[dict]:
    import json

    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _finding(
    severity: str, code: str, message: str, evidence: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "severity": severity, "code": code,
        "message": message, "evidence": evidence,
    }


def diagnose(path: str) -> Dict[str, Any]:
    """Fold every artifact of one tree into ranked findings."""
    if not os.path.isdir(path):
        raise DoctorError(f"no such experiment directory: {path}")
    journal_path = os.path.join(path, "journal.jsonl")
    if not os.path.isfile(journal_path):
        raise DoctorError(
            f"no journal.jsonl in {path} (not an experiment result folder?)"
        )
    entries = read_jsonl(journal_path)
    if not entries or entries[0].get("event") != "experiment":
        raise DoctorError(
            f"journal.jsonl in {path} has no experiment header "
            f"(truncated or not written by this toolchain)"
        )
    header = entries[0]
    findings: List[Dict[str, Any]] = []

    # -- journal: completion, failures, skips, retries -------------------
    complete = any(e.get("event") == "complete" for e in entries)
    runs = {
        int(e["index"]): e for e in entries if e.get("event") == "run"
    }
    failed = sorted(
        i for i, e in runs.items()
        if not e.get("ok", False) and not e.get("skipped")
    )
    skipped = sorted(i for i, e in runs.items() if e.get("skipped"))
    retried = sorted(i for i, e in runs.items() if e.get("retried"))
    total = header.get("total_runs")
    if not complete:
        findings.append(_finding(
            "critical", "incomplete",
            f"execution never completed: journal records "
            f"{len(runs)}/{total} runs and no complete event "
            f"(crashed mid-flight? resume with --resume)",
            {"file": "journal.jsonl", "runs_recorded": len(runs)},
        ))
    if failed:
        errors = sorted({
            str(runs[i].get("error") or "unknown") for i in failed
        })
        findings.append(_finding(
            "critical", "run-failures",
            f"{len(failed)} run(s) failed: "
            f"{', '.join(str(i) for i in failed)} "
            f"({'; '.join(errors)})",
            {"file": "journal.jsonl", "runs": failed},
        ))
    if skipped:
        findings.append(_finding(
            "warning", "runs-skipped",
            f"{len(skipped)} run(s) skipped by planner policy: "
            f"{', '.join(str(i) for i in skipped)}",
            {"file": "journal.jsonl", "runs": skipped},
        ))
    if retried:
        severity = "warning" if len(retried) >= RETRY_STORM else "info"
        label = "retry storm" if len(retried) >= RETRY_STORM else "retries"
        findings.append(_finding(
            severity, "retry-storm" if severity == "warning" else "retries",
            f"{label}: {len(retried)} run(s) needed more than one attempt: "
            f"{', '.join(str(i) for i in retried)}",
            {"file": "journal.jsonl", "runs": retried},
        ))

    # -- telemetry: fault injections, anomalous runs ---------------------
    telemetry = _read_json(os.path.join(path, "telemetry.json")) or {}
    counters = telemetry.get("metrics", {}).get("counters", {})
    faults = {
        name.rpartition(".")[2]: value
        for name, value in sorted(counters.items())
        if name.startswith("faults.injected.") and value
    }
    if faults:
        findings.append(_finding(
            "info", "faults-injected",
            "fault injection was active: " + ", ".join(
                f"{count}x {kind}" for kind, count in faults.items()
            ),
            {"file": "telemetry.json", "faults": faults},
        ))
    durations: Dict[int, float] = {}
    for index, entry in sorted(runs.items()):
        run_dir = os.path.join(path, entry.get("dir") or f"run-{index:03d}")
        snapshot = _read_json(os.path.join(run_dir, "telemetry.json"))
        if snapshot is None:
            continue
        for span in snapshot.get("spans", []):
            if span.get("name") == "run":
                durations[index] = (
                    float(span.get("end", 0.0))
                    - float(span.get("start", 0.0))
                )
                break
    if len(durations) >= 4:
        sample = list(durations.values())
        mid = median(sample)
        for index in sorted(durations):
            score = robust_z(durations[index], sample)
            if abs(score) > ANOMALY_Z:
                direction = "slower" if score > 0 else "faster"
                findings.append(_finding(
                    "warning", "anomalous-run",
                    f"run {index} is anomalous: sim duration "
                    f"{durations[index]:.4f}s vs median {mid:.4f}s "
                    f"(robust z {score:+.1f}, {direction} than the fleet)",
                    {"file": f"run-{index:03d}/telemetry.json",
                     "runs": [index]},
                ))

    # -- health ledger ---------------------------------------------------
    health = _read_json(os.path.join(path, "health.json"))
    if health:
        for name, node in sorted(health.get("nodes", {}).items()):
            state = node.get("state")
            observations = node.get("observations", {})
            wedged = int(observations.get("wedged", 0))
            degraded = int(observations.get("degraded", 0))
            if state == "wedged" or wedged:
                findings.append(_finding(
                    "critical", "node-wedged",
                    f"node {name} wedged ({wedged} observation(s)); "
                    f"final state {state} — the testbed likely needed a "
                    f"power-cycle",
                    {"file": "health.json", "nodes": [name]},
                ))
            elif state == "degraded" or degraded:
                findings.append(_finding(
                    "warning", "node-degraded",
                    f"node {name} degraded ({degraded} observation(s)); "
                    f"final state {state}",
                    {"file": "health.json", "nodes": [name]},
                ))
            sel = int(node.get("sel_records", 0))
            if sel:
                findings.append(_finding(
                    "warning", "sel-records",
                    f"node {name} logged {sel} system-event-log "
                    f"record(s) during the execution",
                    {"file": "health.json", "nodes": [name]},
                ))

    # -- dispatch evidence: deaths, re-dispatch chains, quarantine -------
    fleet = {
        "deaths": 0, "redispatched_runs": 0, "quarantined": 0,
        "duplicates_dropped": 0,
    }
    dispatch = read_jsonl_or_none(os.path.join(path, DISPATCH_NAME))
    if dispatch:
        deaths: Dict[str, List[str]] = {}
        redispatched: Dict[str, List[int]] = {}
        quarantined: List[str] = []
        for record in dispatch:
            event = record.get("event")
            agent = record.get("agent")
            if event == "agent-dead":
                deaths.setdefault(agent, []).append(
                    str(record.get("reason", "unknown"))
                )
            elif event == "quarantine":
                quarantined.append(agent)
            elif event == "redispatch" or (
                event == "dispatch"
                and record.get("reason") == "redispatch"
            ):
                redispatched.setdefault(agent, []).extend(
                    int(i) for i in record.get("runs", [])
                )
        fleet["deaths"] = sum(len(v) for v in deaths.values())
        fleet["redispatched_runs"] = sum(
            len(v) for v in redispatched.values()
        )
        fleet["quarantined"] = len(quarantined)
        fleet["duplicates_dropped"] = sum(
            1 for r in dispatch if r.get("event") == "duplicate-dropped"
        )
        for agent in sorted(deaths):
            reasons = deaths[agent]
            findings.append(_finding(
                "warning", "agent-death",
                f"agent {agent} died {len(reasons)} time(s) "
                f"({', '.join(reasons)}); its orphaned work was "
                f"re-dispatched",
                {"file": DISPATCH_NAME, "agents": [agent]},
            ))
        for agent in sorted(redispatched):
            work = sorted(set(redispatched[agent]))
            findings.append(_finding(
                "info", "redispatch-chain",
                f"run(s) {', '.join(str(i) for i in work)} were "
                f"re-dispatched to {agent} after a death elsewhere in "
                f"the fleet",
                {"file": DISPATCH_NAME, "agents": [agent], "runs": work},
            ))
        for agent in sorted(set(quarantined)):
            findings.append(_finding(
                "critical", "agent-quarantined",
                f"agent {agent} was quarantined after repeated deaths; "
                f"its share of the fleet ran elsewhere",
                {"file": DISPATCH_NAME, "agents": [agent]},
            ))

    # -- cache evidence: corruption ---------------------------------------
    cache_events = read_jsonl_or_none(os.path.join(path, CACHE_NAME))
    if cache_events:
        corrupt = sum(
            1 for e in cache_events if e.get("event") == "cache.corrupt"
        )
        if corrupt:
            findings.append(_finding(
                "warning", "cache-corrupt",
                f"{corrupt} cached artifact(s) failed fingerprint "
                f"verification and were re-executed",
                {"file": CACHE_NAME},
            ))

    # -- critical-path inflation (only for executions already in trouble,
    # so clean runs stay byte-identical across schedules) ----------------
    if fleet["deaths"] or fleet["quarantined"]:
        from repro.telemetry.criticalpath import TraceError, analyze

        try:
            profile = analyze(path)
        except TraceError:
            profile = None
        if profile is not None and profile["total"] > 0:
            overhead = sum(
                value for name, value in profile["phases"].items()
                if name != "run"
            )
            share = overhead / profile["total"]
            if share > 0.5:
                findings.append(_finding(
                    "warning", "critical-path-inflation",
                    f"{share:.0%} of the critical path is not run "
                    f"execution (dispatch/reorder/persist overhead) — "
                    f"consistent with the observed fleet instability",
                    {"file": "fleet-trace-wall.jsonl"},
                ))

    findings.sort(key=lambda f: (
        _SEVERITY_RANK[f["severity"]], f["code"], f["message"],
    ))
    return {
        "path": path,
        "experiment": header.get("name"),
        "provenance": telemetry.get("provenance"),
        "summary": {
            "total_runs": total,
            "recorded_runs": len(runs),
            "failed_runs": len(failed),
            "skipped_runs": len(skipped),
            "retried_runs": len(retried),
            "complete": complete,
            "deaths": fleet["deaths"],
            "redispatched_runs": fleet["redispatched_runs"],
            "quarantined": fleet["quarantined"],
            "duplicates_dropped": fleet["duplicates_dropped"],
        },
        "findings": findings,
        "verdict": _verdict(findings),
    }


def _verdict(findings: List[Dict[str, Any]]) -> str:
    if any(f["severity"] == "critical" for f in findings):
        return "unhealthy"
    if any(f["severity"] == "warning" for f in findings):
        return "degraded"
    return "healthy"


def render_diagnosis(diagnosis: Dict[str, Any]) -> str:
    """Human-readable diagnosis for the CLI."""
    summary = diagnosis["summary"]
    lines: List[str] = []
    lines.append(f"pos doctor: {diagnosis['path']}")
    lines.append(
        f"experiment {diagnosis['experiment']} | "
        f"{summary['recorded_runs']}/{summary['total_runs']} runs | "
        f"{summary['failed_runs']} failed | {summary['retried_runs']} "
        f"retried | {summary['skipped_runs']} skipped | "
        f"{'complete' if summary['complete'] else 'INCOMPLETE'}"
    )
    lines.append(
        f"fleet: {summary['deaths']} death(s) | "
        f"{summary['redispatched_runs']} re-dispatched run(s) | "
        f"{summary['quarantined']} quarantined | "
        f"{summary['duplicates_dropped']} duplicate(s) dropped"
    )
    lines.append("")
    if not diagnosis["findings"]:
        lines.append("no findings: the execution looks healthy")
    else:
        lines.append(f"findings ({len(diagnosis['findings'])}):")
        for finding in diagnosis["findings"]:
            lines.append(
                f"  [{finding['severity']:<8}] {finding['code']}: "
                f"{finding['message']}"
            )
            evidence = finding["evidence"]
            lines.append(f"             evidence: {evidence['file']}")
    lines.append("")
    lines.append(f"verdict: {diagnosis['verdict']}")
    return "\n".join(lines) + "\n"
