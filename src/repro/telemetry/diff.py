"""Comparative analysis of two experiment result trees (``pos diff``).

Reproducible experiments exist to be *compared*: the toolchain's whole
determinism contract (byte-identical trees for any ``--jobs``/
``--agents``/crash schedule) is only useful if, when two result trees
*do* differ, the difference can be attributed to an identified input
change.  ``pos diff A B`` makes that attribution a computation:

* the **reproducibility fingerprint** of each side — the same fields
  the run cache hashes (code epoch, platform, seed, testbed digest),
  recorded by the controller in ``telemetry.json`` — is compared first;
  every changed field is a *cause*;
* runs are matched by their variable **assignment** (the loop instance,
  not the index), and every per-run metric — parsed measurement output,
  telemetry counters, sim-clock durations, attempts — is joined pair
  by pair;
* each observed delta is attributed to the identified causes, or
  **flagged unexplained** — identical fingerprints with differing
  results is precisely a reproducibility violation, and the report
  says so instead of averaging it away;
* per-metric effects across all matched pairs are summarized robustly
  (Hodges–Lehmann estimate with a seeded-bootstrap CI, via
  :mod:`repro.evaluation.tendencies`), and health/fault/retry event
  counts and the sim-clock critical-path phase breakdown ride along.

Everything is a pure function of the on-disk artifacts: the report is
byte-identical no matter which schedule produced either tree, because
only deterministic artifacts are consulted (the sim-clock profile, not
the wall evidence).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import PosError
from repro.evaluation.tendencies import paired_effect
from repro.telemetry.jsonl import read_jsonl, read_jsonl_or_none
from repro.telemetry.plane import CACHE_NAME, FLEET_TRACE_NAME

__all__ = ["DiffError", "load_side", "diff_experiments", "render_diff",
           "DIFF_NAME"]

#: File name a saved report lands under (``pos diff --save``).
DIFF_NAME = "diff.json"

#: Fingerprint fields in attribution priority order.
FINGERPRINT_FIELDS = ("code_epoch", "platform", "seed", "testbed")

_POS_LOG_LINE = re.compile(
    r"^run \d+: rate=\d+ size=\d+ tx=(\d+) rx=(\d+)\s*$"
)


class DiffError(PosError):
    """A side does not carry the artifacts a comparison needs."""


def _read_json(path: str) -> Optional[dict]:
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _assignment_key(loop: Dict[str, Any]) -> str:
    return json.dumps(loop, sort_keys=True)


def _run_metrics(run_dir: str) -> Dict[str, float]:
    """Every comparable numeric fact of one run, as a flat mapping."""
    metrics: Dict[str, float] = {}
    snapshot = _read_json(os.path.join(run_dir, "telemetry.json"))
    if snapshot is not None:
        for name, value in snapshot.get("metrics", {}).get(
            "counters", {}
        ).items():
            metrics[f"counters.{name}"] = float(value)
        attempts = 0
        for span in snapshot.get("spans", []):
            if span.get("name") == "attempt":
                attempts += 1
            elif span.get("name") == "run" and "duration_s" not in metrics:
                metrics["duration_s"] = (
                    float(span.get("end", 0.0)) - float(span.get("start", 0.0))
                )
        metrics["attempts"] = float(attempts)
    pos_log = os.path.join(run_dir, "loadgen", "pos.log")
    if os.path.isfile(pos_log):
        with open(pos_log, "r", encoding="utf-8") as handle:
            for line in handle:
                match = _POS_LOG_LINE.match(line.strip())
                if match is not None:
                    metrics["tx_packets"] = float(match.group(1))
                    metrics["rx_packets"] = float(match.group(2))
    return metrics


def _health_summary(payload: Optional[dict]) -> Dict[str, Any]:
    if not payload:
        return {"nodes": {}, "sel_records": 0, "degraded": 0, "wedged": 0}
    nodes = {}
    sel = degraded = wedged = 0
    for name, node in sorted(payload.get("nodes", {}).items()):
        nodes[name] = node.get("state")
        sel += int(node.get("sel_records", 0))
        observations = node.get("observations", {})
        degraded += int(observations.get("degraded", 0))
        wedged += int(observations.get("wedged", 0))
    return {
        "nodes": nodes, "sel_records": sel,
        "degraded": degraded, "wedged": wedged,
    }


def _cache_summary(events: Optional[List[dict]]) -> Optional[Dict[str, int]]:
    if events is None:
        return None
    summary = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
    for event in events:
        name = event.get("event", "").rpartition(".")[2]
        if name in ("hit", "miss", "store"):
            summary[name + ("es" if name == "miss" else "s")] += 1
        elif name == "corrupt":
            summary["corrupt"] += 1
    return summary


def load_side(path: str) -> Dict[str, Any]:
    """Digest one experiment result tree into comparable plain data."""
    if not os.path.isdir(path):
        raise DiffError(f"no such experiment directory: {path}")
    journal_path = os.path.join(path, "journal.jsonl")
    if not os.path.isfile(journal_path):
        raise DiffError(
            f"no journal.jsonl in {path} (not an experiment result folder?)"
        )
    entries = read_jsonl(journal_path)
    if not entries or entries[0].get("event") != "experiment":
        raise DiffError(
            f"journal.jsonl in {path} has no experiment header "
            f"(truncated or not written by this toolchain)"
        )
    header = entries[0]
    runs: Dict[int, dict] = {}
    retried = failed = skipped = 0
    for entry in entries:
        if entry.get("event") != "run":
            continue
        runs[int(entry["index"])] = entry
    for entry in runs.values():
        if entry.get("retried"):
            retried += 1
        if entry.get("skipped"):
            skipped += 1
        elif not entry.get("ok", False):
            failed += 1
    telemetry = _read_json(os.path.join(path, "telemetry.json")) or {}
    counters = telemetry.get("metrics", {}).get("counters", {})
    faults = sum(
        value for name, value in counters.items()
        if name.startswith("faults.injected.")
    )
    run_rows: Dict[str, Dict[str, Any]] = {}
    for index in sorted(runs):
        entry = runs[index]
        run_dir = os.path.join(path, entry.get("dir") or f"run-{index:03d}")
        row = {
            "index": index,
            "loop": entry.get("loop", {}),
            "ok": bool(entry.get("ok", False)),
            "skipped": bool(entry.get("skipped", False)),
            "metrics": _run_metrics(run_dir) if os.path.isdir(run_dir) else {},
        }
        run_rows[_assignment_key(row["loop"])] = row
    phases = _sim_phases(path)
    return {
        "path": path,
        "experiment": header.get("name"),
        "total_runs": header.get("total_runs"),
        "complete": any(e.get("event") == "complete" for e in entries),
        "provenance": telemetry.get("provenance"),
        "runs": run_rows,
        "events": {
            "faults": int(faults),
            "retried_runs": retried,
            "failed_runs": failed,
            "skipped_runs": skipped,
        },
        "health": _health_summary(_read_json(os.path.join(path, "health.json"))),
        "cache": _cache_summary(
            read_jsonl_or_none(os.path.join(path, CACHE_NAME))
        ),
        "phases": phases,
    }


def _sim_phases(path: str) -> Optional[Dict[str, float]]:
    """Deterministic (sim-clock) critical-path breakdown, or ``None``."""
    from repro.telemetry.criticalpath import TraceError, analyze

    if not os.path.isfile(os.path.join(path, FLEET_TRACE_NAME)):
        return None
    try:
        analysis = analyze(path, clock="sim")
    except TraceError:
        return None
    return {
        "total": analysis["total"],
        **{name: value for name, value in analysis["phases"].items()},
    }


def _relative(a: float, b: float) -> Optional[float]:
    if a == b:
        return 0.0
    if a == 0.0:
        return None  # born from nothing: no finite relative change
    return (b - a) / abs(a)


def diff_experiments(
    path_a: str, path_b: str, tolerance: float = 0.0,
) -> Dict[str, Any]:
    """Structured diff of two experiment trees, every delta attributed.

    ``tolerance`` is the relative change below which a numeric pair is
    considered equal (default 0: reproducible experiments are expected
    to agree exactly).
    """
    a = load_side(path_a)
    b = load_side(path_b)

    causes: List[Dict[str, Any]] = []
    prov_a, prov_b = a["provenance"], b["provenance"]
    if prov_a is None or prov_b is None:
        if (prov_a is None) != (prov_b is None):
            causes.append({
                "field": "provenance",
                "a": "recorded" if prov_a is not None else "absent",
                "b": "recorded" if prov_b is not None else "absent",
            })
    else:
        for field in FINGERPRINT_FIELDS:
            if prov_a.get(field) != prov_b.get(field):
                causes.append({
                    "field": field,
                    "a": prov_a.get(field), "b": prov_b.get(field),
                })
        for field in sorted(set(prov_a) | set(prov_b)):
            if field in FINGERPRINT_FIELDS:
                continue
            if prov_a.get(field) != prov_b.get(field):
                causes.append({
                    "field": field,
                    "a": prov_a.get(field), "b": prov_b.get(field),
                })
    if a["experiment"] != b["experiment"]:
        causes.append({
            "field": "experiment", "a": a["experiment"], "b": b["experiment"],
        })
    if a["total_runs"] != b["total_runs"]:
        causes.append({
            "field": "total_runs", "a": a["total_runs"], "b": b["total_runs"],
        })
    cause_names = [cause["field"] for cause in causes]
    fingerprints_comparable = prov_a is not None and prov_b is not None

    keys_a, keys_b = set(a["runs"]), set(b["runs"])
    matched = sorted(keys_a & keys_b, key=lambda k: a["runs"][k]["index"])
    only_a = sorted(keys_a - keys_b)
    only_b = sorted(keys_b - keys_a)
    if only_a or only_b:
        causes.append({
            "field": "assignments",
            "a": f"{len(only_a)} unmatched", "b": f"{len(only_b)} unmatched",
        })
        cause_names = [cause["field"] for cause in causes]

    deltas: List[Dict[str, Any]] = []
    paired: Dict[str, List[Tuple[float, float]]] = {}
    for key in matched:
        row_a, row_b = a["runs"][key], b["runs"][key]
        metrics = sorted(set(row_a["metrics"]) | set(row_b["metrics"]))
        for metric in metrics:
            value_a = row_a["metrics"].get(metric)
            value_b = row_b["metrics"].get(metric)
            if value_a is not None and value_b is not None:
                paired.setdefault(metric, []).append((value_a, value_b))
            if value_a is None or value_b is None:
                rel = None
                changed = True
            else:
                rel = _relative(value_a, value_b)
                changed = (
                    rel is None or abs(rel) > tolerance
                ) and value_a != value_b
            if not changed:
                continue
            deltas.append({
                "run_a": row_a["index"],
                "run_b": row_b["index"],
                "loop": row_a["loop"],
                "metric": metric,
                "a": value_a,
                "b": value_b,
                "rel": rel,
                "cause": ",".join(cause_names) if cause_names else None,
            })

    effects: Dict[str, Dict[str, float]] = {}
    for metric, pairs in sorted(paired.items()):
        if len(pairs) < 2:
            continue
        if all(pa == pb for pa, pb in pairs):
            continue
        effects[metric] = paired_effect(
            [pa for pa, _ in pairs], [pb for _, pb in pairs],
        )

    events = {
        name: [a["events"][name], b["events"][name]]
        for name in sorted(a["events"])
    }
    health = {
        name: [a["health"][name], b["health"][name]]
        for name in ("sel_records", "degraded", "wedged")
    }
    health["node_states"] = {
        node: [a["health"]["nodes"].get(node), b["health"]["nodes"].get(node)]
        for node in sorted(set(a["health"]["nodes"]) | set(b["health"]["nodes"]))
    }

    phases: Optional[Dict[str, List[Optional[float]]]] = None
    if a["phases"] is not None or b["phases"] is not None:
        names = sorted(set(a["phases"] or {}) | set(b["phases"] or {}))
        phases = {
            name: [
                (a["phases"] or {}).get(name), (b["phases"] or {}).get(name),
            ]
            for name in names
        }

    explained = sum(1 for delta in deltas if delta["cause"] is not None)
    return {
        "a": {"path": a["path"], "experiment": a["experiment"],
              "provenance": prov_a, "complete": a["complete"]},
        "b": {"path": b["path"], "experiment": b["experiment"],
              "provenance": prov_b, "complete": b["complete"]},
        "causes": causes,
        "fingerprints_comparable": fingerprints_comparable,
        "runs": {
            "matched": len(matched),
            "only_a": [a["runs"][k]["loop"] for k in only_a],
            "only_b": [b["runs"][k]["loop"] for k in only_b],
        },
        "deltas": deltas,
        "effects": effects,
        "events": events,
        "health": health,
        "phases": phases,
        "cache": {"a": a["cache"], "b": b["cache"]},
        "attribution": {
            "total": len(deltas),
            "explained": explained,
            "unexplained": len(deltas) - explained,
            "causes": cause_names,
        },
    }


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.4f}"


def _format_rel(rel: Optional[float]) -> str:
    if rel is None:
        return "new"
    return f"{rel:+.1%}"


def render_diff(diff: Dict[str, Any], top: int = 10) -> str:
    """Human-readable comparison report for the CLI."""
    lines: List[str] = []
    lines.append(f"pos diff: {diff['a']['path']}")
    lines.append(f"      vs: {diff['b']['path']}")
    lines.append(
        f"experiment: {diff['a']['experiment']} vs {diff['b']['experiment']}"
        f" | {diff['runs']['matched']} run(s) matched by assignment"
        f" | {len(diff['runs']['only_a'])} only in A"
        f" | {len(diff['runs']['only_b'])} only in B"
    )
    lines.append("")
    if diff["causes"]:
        lines.append("fingerprint causes (identified input changes):")
        for cause in diff["causes"]:
            lines.append(
                f"  {cause['field']}: {cause['a']!r} -> {cause['b']!r}"
            )
    elif not diff["fingerprints_comparable"]:
        lines.append(
            "fingerprints unavailable on both sides: deltas cannot be "
            "attributed (pre-provenance artifacts)"
        )
    else:
        lines.append(
            "fingerprints identical: any delta below is UNEXPLAINED "
            "(a reproducibility violation)"
        )
    lines.append("")

    deltas = diff["deltas"]
    if not deltas:
        lines.append("no metric deltas: both trees agree on every compared "
                     "metric")
    else:
        lines.append(
            f"per-run metric deltas ({len(deltas)} across "
            f"{diff['runs']['matched']} matched runs, top {min(top, len(deltas))}):"
        )
        for delta in deltas[:top]:
            loop = " ".join(
                f"{key}={delta['loop'][key]}" for key in sorted(delta["loop"])
            )
            cause = delta["cause"] or "UNEXPLAINED"
            lines.append(
                f"  run {delta['run_a']:>3} [{loop}] {delta['metric']}: "
                f"{_format_value(delta['a'])} -> {_format_value(delta['b'])} "
                f"({_format_rel(delta['rel'])}) [{cause}]"
            )
        if len(deltas) > top:
            lines.append(f"  ... {len(deltas) - top} more")
    if diff["effects"]:
        lines.append("")
        lines.append("metric effects (paired, robust; B - A):")
        for metric in sorted(diff["effects"]):
            effect = diff["effects"][metric]
            lines.append(
                f"  {metric}: HL {effect['hl_estimate']:+.4f} "
                f"[{effect['ci_low']:+.4f}, {effect['ci_high']:+.4f}] "
                f"over {int(effect['n'])} pairs"
            )
    if diff["phases"] is not None:
        lines.append("")
        lines.append("critical-path phases (sim clock, A vs B):")
        for name, (value_a, value_b) in sorted(diff["phases"].items()):
            lines.append(
                f"  {name:<10} {_format_value(value_a):>12} "
                f"{_format_value(value_b):>12}"
            )
    lines.append("")
    lines.append(
        "events: " + " | ".join(
            f"{name} {pair[0]} vs {pair[1]}"
            for name, pair in diff["events"].items()
        )
    )
    health = diff["health"]
    lines.append(
        f"health: sel {health['sel_records'][0]} vs "
        f"{health['sel_records'][1]} | degraded "
        f"{health['degraded'][0]} vs {health['degraded'][1]} | wedged "
        f"{health['wedged'][0]} vs {health['wedged'][1]}"
    )
    for node, (state_a, state_b) in sorted(health["node_states"].items()):
        if state_a != state_b:
            lines.append(f"  node {node}: {state_a} -> {state_b}")
    attribution = diff["attribution"]
    lines.append("")
    if attribution["total"] == 0:
        lines.append("attribution: 0 deltas — the trees replicate")
    elif attribution["unexplained"] == 0:
        lines.append(
            f"attribution: {attribution['total']} delta(s), all explained "
            f"by: {', '.join(attribution['causes'])}"
        )
    else:
        lines.append(
            f"attribution: {attribution['total']} delta(s), "
            f"{attribution['explained']} explained, "
            f"{attribution['unexplained']} UNEXPLAINED — identical inputs "
            f"produced different results; investigate with pos doctor"
        )
    return "\n".join(lines) + "\n"
