"""Deterministic metrics: counters, gauges, histograms.

No wall-clock, no sampling, no background threads — a metric value is a
pure function of the operations that touched it, so snapshots taken in
run order are byte-identical across job counts and across crash/resume.
Registries are plain-dict-backed and picklable: a parallel worker fills
one per run and ships it back inside ``RunOutcome``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["MetricsRegistry", "LATENCY_BUCKETS_S"]

#: Histogram bucket upper bounds for latency samples, in seconds.
#: Fixed edges keep the bucket layout — and therefore the artifact —
#: identical no matter what values a run produces.
LATENCY_BUCKETS_S: Sequence[float] = (
    10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6,
    1e-3, 2e-3, 5e-3, 10e-3, 100e-3,
)


class MetricsRegistry:
    """Counters, gauges and histograms with deterministic snapshots.

    Names are flat dotted strings (``faults.injected.power``).  Counters
    add, gauges set, histograms count observations into fixed buckets.
    ``merge`` folds another registry (or its snapshot) in — counters and
    bucket counts sum, gauges take the other side's value — which is how
    per-run registries aggregate into the experiment-wide one.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, object]] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = {
                "buckets": [float(edge) for edge in buckets],
                "counts": [0] * (len(buckets) + 1),
                "sum": 0.0,
                "total": 0,
            }
            self.histograms[name] = histogram
        counts: List[int] = histogram["counts"]  # type: ignore[assignment]
        edges: List[float] = histogram["buckets"]  # type: ignore[assignment]
        slot = len(edges)
        for position, edge in enumerate(edges):
            if value <= edge:
                slot = position
                break
        counts[slot] += 1
        histogram["sum"] = float(histogram["sum"]) + float(value)
        histogram["total"] = int(histogram["total"]) + 1

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold ``other`` (a registry or its snapshot dict) into this one."""
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, histogram in snapshot.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = {
                    "buckets": list(histogram["buckets"]),
                    "counts": list(histogram["counts"]),
                    "sum": histogram["sum"],
                    "total": histogram["total"],
                }
                continue
            if mine["buckets"] != list(histogram["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ; cannot merge"
                )
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], histogram["counts"])
            ]
            mine["sum"] = float(mine["sum"]) + float(histogram["sum"])
            mine["total"] = int(mine["total"]) + int(histogram["total"])

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data snapshot with deterministically sorted keys."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: {
                    "buckets": list(self.histograms[name]["buckets"]),
                    "counts": list(self.histograms[name]["counts"]),
                    "sum": self.histograms[name]["sum"],
                    "total": self.histograms[name]["total"],
                }
                for name in sorted(self.histograms)
            },
        }

    def counter(self, name: str, default: Optional[int] = 0) -> Optional[int]:
        return self.counters.get(name, default)
