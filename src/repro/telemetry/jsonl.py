"""One tolerant JSONL reader for every artifact tailer.

Every flushed-line artifact in the toolchain — the run journal, the
evidence sidecars (``dispatch.jsonl``, ``cache.jsonl``,
``fleet-trace-wall.jsonl``) and the stitched fleet trace — is written
the same way: one JSON object per line, a single flushed ``write()``
per record.  A reader may therefore observe at most *one* malformed
line, and only at the very end of the file: the torn tail of a record
that a crashed (or still-running) writer never finished.  Interior
corruption is not a thing this format produces, so the reader stops at
the first undecodable line instead of skipping it — silently resuming
after garbage would let a truncated-and-appended file masquerade as a
healthy history.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

__all__ = ["read_jsonl", "read_jsonl_or_none"]


def read_jsonl(path: str) -> List[dict]:
    """All complete records of a JSONL artifact, dropping the torn tail.

    Blank lines are skipped; reading stops at the first line that does
    not decode (the torn tail of a crashed or in-flight writer) or that
    decodes to a non-object.  Raises ``OSError`` when ``path`` cannot
    be opened — callers that treat a missing file as "no evidence"
    should use :func:`read_jsonl_or_none`.
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail of a crashed or in-flight writer
            if not isinstance(record, dict):
                break
            records.append(record)
    return records


def read_jsonl_or_none(path: str) -> Optional[List[dict]]:
    """Like :func:`read_jsonl`, but ``None`` when the file is absent."""
    if not os.path.isfile(path):
        return None
    return read_jsonl(path)
