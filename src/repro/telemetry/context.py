"""The ambient telemetry collector.

Deep layers — the retry policy, the fault injector, the event engine,
the batched fast path, the load generator — report spans and metrics
without threading a collector through every signature: they look up the
process-local *current* collector and no-op when none is active.  The
controller (or a parallel worker) activates a run-scoped collector
around each measurement run; the experiment plane may keep a
workflow-scoped collector active underneath for setup-phase evidence.

A plain stack of collectors per process is sufficient: the sequential
controller and every pool worker are single-threaded, and workers are
separate processes with their own module state.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.telemetry.spans import RunTelemetry

__all__ = ["activate", "current", "deactivate", "run_collector"]

_STACK: List[RunTelemetry] = []


def current() -> Optional[RunTelemetry]:
    """The innermost active collector, or None (the hot-path no-op)."""
    return _STACK[-1] if _STACK else None


def activate(collector: RunTelemetry) -> RunTelemetry:
    _STACK.append(collector)
    return collector


def deactivate(collector: RunTelemetry) -> None:
    if not _STACK or _STACK[-1] is not collector:
        raise RuntimeError("telemetry collector stack is unbalanced")
    _STACK.pop()


@contextmanager
def run_collector(collector: RunTelemetry) -> Iterator[RunTelemetry]:
    """Activate ``collector`` for the duration of a block."""
    activate(collector)
    try:
        yield collector
    finally:
        deactivate(collector)
