"""Render per-run provenance from the published artifacts alone.

``pos report <experiment folder>`` needs no controller, no journal
replay machinery and no live testbed: everything it prints is
reconstructed from the files an execution left behind — the run journal
(``journal.jsonl``), the per-run telemetry snapshots
(``run-NNN/telemetry.json``), the experiment-wide aggregate
(``telemetry.json``) and, when a run cache was active, the cache
evidence sidecar (``cache.jsonl``).  That is the artifact-first
contract of the telemetry plane: a reader of a published result folder
can retrace how the toolchain behaved (attempts, faults, recovery,
engine events, which netsim path ran, which runs were replayed from
the cache) without ever having run the experiment.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.core.errors import PosError
from repro.telemetry.jsonl import read_jsonl, read_jsonl_or_none

__all__ = ["load_report", "render_report"]


class ReportError(PosError):
    """The folder does not carry the artifacts a report needs."""


def _read_json(path: str) -> Optional[dict]:
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _read_journal(experiment_path: str) -> List[dict]:
    if not os.path.isdir(experiment_path):
        raise ReportError(f"no such experiment directory: {experiment_path}")
    path = os.path.join(experiment_path, "journal.jsonl")
    if not os.path.isfile(path):
        raise ReportError(
            f"no journal.jsonl in {experiment_path} "
            f"(not an experiment result folder?)"
        )
    return read_jsonl(path)


def _read_cache_events(experiment_path: str) -> Optional[List[dict]]:
    """The cache evidence sidecar, or None when no cache was active."""
    return read_jsonl_or_none(os.path.join(experiment_path, "cache.jsonl"))


def _cache_summary(events: Optional[List[dict]]) -> Optional[Dict[str, Any]]:
    if events is None:
        return None
    runs: Dict[int, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("event")
        run = event.get("run")
        if run is None or kind not in ("cache.hit", "cache.miss", "cache.store"):
            continue
        entry = runs.setdefault(int(run), {})
        if kind == "cache.store":
            entry["stored"] = True
        else:
            entry["event"] = kind
            entry["key"] = event.get("key")
    return {
        "hits": sum(1 for e in runs.values() if e.get("event") == "cache.hit"),
        "misses": sum(
            1 for e in runs.values() if e.get("event") == "cache.miss"
        ),
        "stores": sum(1 for e in runs.values() if e.get("stored")),
        "runs": runs,
    }


def _latest_runs(entries: List[dict]) -> Dict[int, dict]:
    latest: Dict[int, dict] = {}
    for entry in entries:
        if entry.get("event") == "run":
            latest[int(entry["index"])] = entry
    return latest


def _run_row(index: int, entry: dict, experiment_path: str) -> Dict[str, Any]:
    row: Dict[str, Any] = {
        "run": index,
        "loop": entry.get("loop", {}),
        "ok": bool(entry.get("ok", False)),
        "skipped": bool(entry.get("skipped", False)),
        "retried": bool(entry.get("retried", False)),
        "error": entry.get("error"),
    }
    snapshot = None
    if entry.get("dir"):
        snapshot = _read_json(
            os.path.join(experiment_path, entry["dir"], "telemetry.json")
        )
    if snapshot is None:
        return row
    counters = snapshot.get("metrics", {}).get("counters", {})
    row["attempts"] = sum(
        1 for span in snapshot.get("spans", [])
        if span.get("name") == "attempt"
    )
    row["faults"] = sum(
        value for name, value in counters.items()
        if name.startswith("faults.injected.")
    )
    row["engine_events"] = counters.get("engine.events", 0)
    row["fastpath_batches"] = counters.get("fastpath.batches", 0)
    row["latency_samples"] = counters.get("loadgen.latency_samples", 0)
    row["recovered"] = counters.get("runs.recovered", 0) > 0
    for span in snapshot.get("spans", []):
        if span.get("name") == "loadgen.job":
            row["path"] = span.get("attrs", {}).get("path")
            break
    for span in snapshot.get("spans", []):
        if span.get("name") == "run":
            row["duration_s"] = span.get("end", 0.0) - span.get("start", 0.0)
            break
    return row


def load_report(experiment_path: str) -> Dict[str, Any]:
    """Assemble the provenance report as plain data.

    Raises :class:`ReportError` with a one-line diagnostic for every
    malformed-folder shape — missing directory, missing or empty
    journal, a journal without the experiment header, or a journal
    that records no measurement runs — so ``pos report`` fails with
    an actionable message instead of a traceback.
    """
    entries = _read_journal(experiment_path)
    if not entries or entries[0].get("event") != "experiment":
        raise ReportError(
            f"journal.jsonl in {experiment_path} has no experiment header "
            f"(truncated or not written by this toolchain)"
        )
    header = entries[0]
    if "name" not in header:
        raise ReportError(
            f"experiment header in {experiment_path}/journal.jsonl "
            f"carries no experiment name"
        )
    runs = _latest_runs(entries)
    if not runs:
        raise ReportError(
            f"no measurement runs journalled in {experiment_path} "
            f"(execution crashed before the first run?)"
        )
    rows = [
        _run_row(index, runs[index], experiment_path)
        for index in sorted(runs)
    ]
    return {
        "experiment": header.get("name"),
        "total_runs": header.get("total_runs"),
        "complete": any(entry.get("event") == "complete" for entry in entries),
        "runs": rows,
        "telemetry": _read_json(
            os.path.join(experiment_path, "telemetry.json")
        ),
        "cache": _cache_summary(_read_cache_events(experiment_path)),
    }


def _loop_text(loop: Dict[str, Any]) -> str:
    return " ".join(f"{key}={loop[key]}" for key in sorted(loop))


def render_report(experiment_path: str) -> str:
    """Render the per-run provenance table as text."""
    report = load_report(experiment_path)
    lines: List[str] = []
    lines.append(f"experiment: {report['experiment']}")
    state = "complete" if report["complete"] else "INCOMPLETE (resumable)"
    lines.append(
        f"runs: {len(report['runs'])}/{report['total_runs']} journalled, "
        f"execution {state}"
    )
    lines.append("")
    header = (
        f"{'run':>4} {'status':<9} {'att':>3} {'faults':>6} "
        f"{'events':>8} {'batches':>7} {'lat.smp':>7} {'path':<6} loop"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["runs"]:
        if row["skipped"]:
            status = "skipped"
        elif not row["ok"]:
            status = "FAILED"
        elif row.get("recovered") or row["retried"]:
            status = "recovered"
        else:
            status = "ok"
        lines.append(
            f"{row['run']:>4} {status:<9} {row.get('attempts', '-'):>3} "
            f"{row.get('faults', '-'):>6} {row.get('engine_events', '-'):>8} "
            f"{row.get('fastpath_batches', '-'):>7} "
            f"{row.get('latency_samples', '-'):>7} "
            f"{row.get('path') or '-':<6} {_loop_text(row['loop'])}"
        )
    cache = report.get("cache")
    if cache is not None:
        lines.append("")
        lines.append(
            f"run cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
            f"{cache['stores']} store(s)"
        )
        for run in sorted(cache["runs"]):
            entry = cache["runs"][run]
            kind = entry.get("event", "-")
            suffix = " stored" if entry.get("stored") else ""
            key = entry.get("key") or ""
            lines.append(f"  run {run}: {kind} key={key[:12]}{suffix}")
    telemetry = report.get("telemetry")
    if telemetry:
        lines.append("")
        lines.append("experiment-wide counters:")
        counters = telemetry.get("metrics", {}).get("counters", {})
        for name in sorted(counters):
            lines.append(f"  {name:<28} {counters[name]}")
        gauges = telemetry.get("metrics", {}).get("gauges", {})
        for name in sorted(gauges):
            lines.append(f"  {name:<28} {gauges[name]:g}")
    return "\n".join(lines) + "\n"
