"""Fig. 2 style experimental-workflow diagram.

The paper's Fig. 2 shows the file types flowing through the three
phases: the experiment script and variable files feed the setup phase,
setup/measurement scripts run per host, results and metadata flow into
the evaluation phase, and the publication script bundles everything.
This module renders that diagram for a *concrete* experiment — the
boxes are the experiment's actual scripts, variables, and phases — as
SVG and as an indented text outline.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.experiment import Experiment

__all__ = ["workflow_outline", "workflow_svg"]

_PHASES = ("setup", "measurement", "evaluation")


def workflow_outline(experiment: Experiment) -> str:
    """Textual rendering of the experiment's workflow structure."""
    lines: List[str] = [f"experiment: {experiment.name}"]
    lines.append("  phase: setup")
    lines.append("    controller: allocate "
                 + ", ".join(role.node for role in experiment.roles))
    lines.append("    variables: global, loop"
                 + ("".join(f", local[{r.name}]" for r in experiment.roles)))
    for role in experiment.roles:
        image = "@".join(role.image)
        lines.append(f"    {role.name}: boot {image} on {role.node}")
        lines.append(f"    {role.name}: run {role.setup.name}")
    lines.append("  phase: measurement")
    lines.append(f"    runs: {experiment.variables.run_count()} "
                 "(cross product of loop variables)")
    for role in experiment.roles:
        lines.append(f"    {role.name}: run {role.measurement.name} per run")
    lines.append("    controller: collect results + metadata per run")
    lines.append("  phase: evaluation")
    lines.append("    evaluation script: parse results, filter by metadata, plot")
    lines.append("    publication script: bundle artifacts, generate website")
    return "\n".join(lines) + "\n"


def workflow_svg(experiment: Experiment, width: int = 560) -> str:
    """SVG rendering: one band per phase, file boxes inside."""
    rows: List[Tuple[str, List[str]]] = [
        (
            "setup",
            [f"{experiment.name}.sh (experiment script)", "variable files"]
            + [f"{role.setup.name} @ {role.node}" for role in experiment.roles],
        ),
        (
            "measurement",
            [f"{role.measurement.name} @ {role.node}" for role in experiment.roles]
            + [f"{experiment.variables.run_count()} runs: results + metadata"],
        ),
        ("evaluation", ["evaluation script", "plots (svg/tex/pdf)",
                        "publication script: archive + website"]),
    ]
    box_h = 24
    pad = 10
    band_gap = 18
    y = pad
    parts = []
    body: List[str] = []
    for phase, boxes in rows:
        band_top = y
        body.append(
            f'<text x="{pad + 4}" y="{y + 16}" font-weight="bold">'
            f"{phase} phase</text>"
        )
        y += 24
        for label in boxes:
            body.append(
                f'<rect x="{pad + 16}" y="{y}" width="{width - 2 * pad - 32}" '
                f'height="{box_h}" rx="4" class="file"/>'
            )
            body.append(
                f'<text x="{pad + 26}" y="{y + 16}">{_escape(label)}</text>'
            )
            y += box_h + 6
        body.append(
            f'<rect x="{pad}" y="{band_top - 6}" width="{width - 2 * pad}" '
            f'height="{y - band_top + 8}" rx="8" class="band"/>'
        )
        # Arrow to next band.
        y += band_gap
        body.append(
            f'<line x1="{width / 2}" y1="{y - band_gap + 4}" '
            f'x2="{width / 2}" y2="{y - 4}" class="arrow"/>'
        )
    height = y
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    parts.append(
        "<style>text{font-family:sans-serif;font-size:12px;}"
        ".file{fill:#f7f7f7;stroke:#555;}"
        ".band{fill:none;stroke:#334;stroke-width:1.4;}"
        ".arrow{stroke:#334;stroke-width:2;marker-end:url(#tip);}</style>"
        '<defs><marker id="tip" markerWidth="8" markerHeight="8" refX="6" '
        'refY="3" orient="auto"><path d="M0,0 L6,3 L0,6 z" fill="#334"/>'
        "</marker></defs>"
    )
    parts.extend(body[:-1])  # drop the trailing arrow below the last band
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
