"""The publication step: plots + website + archive in one call.

Equivalent of the case study's ``publish.py`` (Listing 2): given an
experiment result folder, generate the out-of-the-box figures, the
artifact-index website, a manifest, and the release archive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core import yamlite
from repro.evaluation.loader import load_experiment
from repro.evaluation.plotter import plot_experiment
from repro.publication.bundle import build_manifest, bundle_artifacts
from repro.publication.website import generate_website

__all__ = ["PublicationReport", "publish"]


@dataclass
class PublicationReport:
    """What the publication step produced."""

    result_path: str
    figures: List[str] = field(default_factory=list)
    website_files: List[str] = field(default_factory=list)
    manifest_path: str = ""
    archive_path: str = ""

    def describe(self) -> dict:
        return {
            "result_path": self.result_path,
            "figures": list(self.figures),
            "website_files": list(self.website_files),
            "manifest": self.manifest_path,
            "archive": self.archive_path,
        }


def publish(
    result_path: str,
    repository_url: Optional[str] = None,
    archive_path: Optional[str] = None,
    formats: Sequence[str] = ("svg", "tex", "pdf"),
    make_plots: bool = True,
) -> PublicationReport:
    """Prepare an experiment for release.

    Steps, in order (each feeding the next):

    1. generate the figures into ``<result>/figures``,
    2. write the manifest of every artifact file,
    3. generate README.md / index.html listing everything,
    4. bundle the whole folder into a ``tar.gz`` next to it.
    """
    report = PublicationReport(result_path=result_path)
    if make_plots:
        results = load_experiment(result_path)
        report.figures = plot_experiment(results, formats=formats)

    manifest = build_manifest(result_path)
    report.manifest_path = os.path.join(result_path, "MANIFEST.yml")
    yamlite.dump_file({"files": manifest}, report.manifest_path)

    report.website_files = generate_website(result_path, repository_url)

    if archive_path is None:
        archive_path = result_path.rstrip(os.sep) + ".tar.gz"
    report.archive_path = bundle_artifacts(result_path, archive_path)
    return report
