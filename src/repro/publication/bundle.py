"""Artifact bundling (R5).

"The publication script bundles these artifacts into a release format,
e.g., an archive or a repository."  This module produces the archive:
a deterministic ``tar.gz`` of the experiment result folder (scripts,
variables, per-run outputs, metadata, generated figures) plus a
machine-readable manifest of every bundled file.

Determinism matters for reproducibility: bundling the same artifacts
twice yields byte-identical archives (fixed mtimes, sorted members,
stable ownership), so released artifacts can be compared by checksum.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import os
import tarfile
from typing import Dict, List, Optional

from repro.core.errors import PublicationError

__all__ = ["build_manifest", "bundle_artifacts", "verify_bundle"]

#: Fixed timestamp embedded in archives (2021-12-07, first day of CoNEXT '21).
_EPOCH = 1638835200


def build_manifest(root: str) -> List[Dict[str, object]]:
    """List every file under ``root`` with size and SHA-256 digest."""
    if not os.path.isdir(root):
        raise PublicationError(f"no such artifact folder: {root}")
    entries: List[Dict[str, object]] = []
    for directory, __, files in sorted(os.walk(root)):
        for name in sorted(files):
            path = os.path.join(directory, name)
            relative = os.path.relpath(path, root)
            digest = hashlib.sha256()
            with open(path, "rb") as handle:
                for chunk in iter(lambda: handle.read(65536), b""):
                    digest.update(chunk)
            entries.append(
                {
                    "path": relative.replace(os.sep, "/"),
                    "size": os.path.getsize(path),
                    "sha256": digest.hexdigest(),
                }
            )
    return entries


def bundle_artifacts(
    root: str,
    archive_path: str,
    prefix: Optional[str] = None,
) -> str:
    """Create a deterministic ``tar.gz`` of everything under ``root``.

    ``prefix`` is the top-level folder name inside the archive; it
    defaults to the basename of ``root``.
    """
    manifest = build_manifest(root)
    if not manifest:
        raise PublicationError(f"artifact folder {root} is empty; nothing to bundle")
    prefix = prefix or os.path.basename(os.path.normpath(root))
    directory = os.path.dirname(archive_path)
    if directory:
        os.makedirs(directory, exist_ok=True)

    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w") as tar:
        for entry in manifest:
            path = os.path.join(root, str(entry["path"]))
            info = tarfile.TarInfo(name=f"{prefix}/{entry['path']}")
            info.size = int(entry["size"])
            info.mtime = _EPOCH
            info.uid = info.gid = 0
            info.uname = info.gname = "pos"
            info.mode = 0o644
            with open(path, "rb") as handle:
                tar.addfile(info, handle)
    # gzip with mtime=0 and no embedded filename for byte-stable output.
    with open(archive_path, "wb") as out:
        with gzip.GzipFile(
            filename="", fileobj=out, mode="wb", mtime=0
        ) as gz:
            gz.write(buffer.getvalue())
    return archive_path


def verify_bundle(archive_path: str, root: str) -> bool:
    """Check the archive matches the artifact folder exactly.

    Returns True when every file in the folder appears in the archive
    with identical content (and nothing extra is present).
    """
    expected = {entry["path"]: entry["sha256"] for entry in build_manifest(root)}
    seen: Dict[str, str] = {}
    with tarfile.open(archive_path, mode="r:gz") as tar:
        for member in tar.getmembers():
            if not member.isfile():
                continue
            relative = member.name.split("/", 1)[1] if "/" in member.name else member.name
            extracted = tar.extractfile(member)
            if extracted is None:
                raise PublicationError(f"unreadable member {member.name}")
            seen[relative] = hashlib.sha256(extracted.read()).hexdigest()
    return seen == expected
