"""Artifact-index website generator.

"In addition, it generates a website and inserts all the collected
artifacts documenting the experimental structure in a format that can
be easily read by researchers."  (Sec. 4.4)

The generator walks an experiment result folder and emits both a
``README.md`` (the file GitHub Pages renders in the paper's workflow)
and a standalone ``index.html``: experiment metadata, the variable
scopes, the executed scripts, a per-run artifact table, and inline
links to the generated figures.

When the folder carries the telemetry artifacts (``journal.jsonl``,
per-run ``telemetry.json``/``health.json``), a third page —
``dashboard.html`` — is generated as well: the per-run provenance
table, experiment-wide metric summaries, a run-duration chart, the
fleet-trace timeline with its critical-path bar (when the folder
carries ``fleet-trace.jsonl``), and the per-node health/SEL timeline,
all rendered self-contained (inline SVG, no scripts, no external
assets) from the published artifacts alone.
"""

from __future__ import annotations

import html
import os
from typing import Dict, List, Optional

from repro.core import yamlite
from repro.core.errors import PublicationError

__all__ = [
    "generate_readme",
    "generate_html",
    "generate_dashboard",
    "generate_website",
    "generate_campaign_index",
    "generate_study_page",
]

#: Health-state colours for the dashboard timeline.
_STATE_COLORS = {
    "healthy": "#7cb342",
    "degraded": "#fbc02d",
    "wedged": "#e53935",
    "unmonitored": "#bdbdbd",
}

#: Phase colours for the fleet-trace critical-path bar and timeline.
_PHASE_COLORS = {
    "admission": "#8c564b",
    "dispatch": "#ff7f0e",
    "run": "#1f77b4",
    "reorder": "#9467bd",
    "persist": "#2ca02c",
}


def _load_yaml(path: str) -> dict:
    if not os.path.isfile(path):
        return {}
    loaded = yamlite.load_file(path)
    return loaded if isinstance(loaded, dict) else {}


def _human_size(size: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.0f} {unit}" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} GiB"


def _collect(root: str) -> Dict[str, List[str]]:
    """Group artifact files: top-level, setup, figures, and per run."""
    groups: Dict[str, List[str]] = {"experiment": [], "setup": [], "figures": []}
    for directory, __, files in sorted(os.walk(root)):
        relative_dir = os.path.relpath(directory, root)
        for name in sorted(files):
            relative = (
                name if relative_dir == "." else f"{relative_dir}/{name}"
            ).replace(os.sep, "/")
            if relative_dir == ".":
                groups["experiment"].append(relative)
            elif relative.startswith("setup/"):
                groups["setup"].append(relative)
            elif relative.startswith("figures/"):
                groups["figures"].append(relative)
            else:
                top = relative.split("/", 1)[0]
                groups.setdefault(top, []).append(relative)
    return groups


def generate_readme(root: str, repository_url: Optional[str] = None) -> str:
    """Render the artifact index as Markdown."""
    if not os.path.isdir(root):
        raise PublicationError(f"no such result folder: {root}")
    metadata = _load_yaml(os.path.join(root, "experiment.yml"))
    variables = _load_yaml(os.path.join(root, "variables.yml"))
    groups = _collect(root)

    lines: List[str] = []
    name = metadata.get("name", os.path.basename(root))
    lines.append(f"# Experiment artifacts: {name}")
    lines.append("")
    if metadata.get("description"):
        lines.append(str(metadata["description"]))
        lines.append("")
    if repository_url:
        lines.append(f"Released at: <{repository_url}>")
        lines.append("")
    lines.append("## Experiment")
    lines.append("")
    lines.append(f"- user: `{metadata.get('user', 'unknown')}`")
    lines.append(f"- runs completed: {metadata.get('runs_completed', '?')}")
    lines.append(f"- runs failed: {metadata.get('runs_failed', '?')}")
    for role in metadata.get("roles", []) or []:
        lines.append(
            f"- role `{role.get('role')}` on node `{role.get('node')}` "
            f"(image `{'@'.join(str(part) for part in role.get('image', []))}`)"
        )
    lines.append("")
    if variables:
        lines.append("## Variables")
        lines.append("")
        lines.append("```yaml")
        lines.append(yamlite.dumps(variables).rstrip())
        lines.append("```")
        lines.append("")
    if groups.get("figures"):
        lines.append("## Figures")
        lines.append("")
        for path in groups["figures"]:
            if path.endswith(".svg"):
                lines.append(f"![{os.path.basename(path)}]({path})")
        lines.append("")
    lines.append("## Artifact index")
    lines.append("")
    lines.append("| file | size |")
    lines.append("|------|------|")
    for group_name in sorted(groups):
        for path in groups[group_name]:
            full = os.path.join(root, path)
            lines.append(f"| [{path}]({path}) | {_human_size(os.path.getsize(full))} |")
    lines.append("")
    lines.append(
        "_Generated by the pos-reproduction publication tooling; every "
        "script, variable, result and figure of this experiment is listed "
        "above._"
    )
    return "\n".join(lines) + "\n"


def generate_html(root: str, repository_url: Optional[str] = None) -> str:
    """Render the artifact index as a standalone HTML page."""
    metadata = _load_yaml(os.path.join(root, "experiment.yml"))
    groups = _collect(root)
    name = html.escape(str(metadata.get("name", os.path.basename(root))))
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Experiment artifacts: {name}</title>",
        "<style>body{font-family:sans-serif;max-width:60em;margin:2em auto;}"
        "table{border-collapse:collapse;}td,th{border:1px solid #999;"
        "padding:4px 8px;}img{max-width:100%;}</style></head><body>",
        f"<h1>Experiment artifacts: {name}</h1>",
    ]
    if metadata.get("description"):
        parts.append(f"<p>{html.escape(str(metadata['description']))}</p>")
    if repository_url:
        url = html.escape(repository_url)
        parts.append(f'<p>Released at: <a href="{url}">{url}</a></p>')
    if groups.get("figures"):
        parts.append("<h2>Figures</h2>")
        for path in groups["figures"]:
            if path.endswith(".svg"):
                parts.append(f'<p><img src="{html.escape(path)}" alt="{html.escape(path)}"></p>')
    if os.path.isfile(os.path.join(root, "dashboard.html")):
        parts.append(
            '<p><a href="dashboard.html">Telemetry &amp; health '
            "dashboard</a></p>"
        )
    parts.append("<h2>Artifact index</h2>")
    parts.append("<table><tr><th>file</th><th>size</th></tr>")
    for group_name in sorted(groups):
        for path in groups[group_name]:
            full = os.path.join(root, path)
            escaped = html.escape(path)
            parts.append(
                f'<tr><td><a href="{escaped}">{escaped}</a></td>'
                f"<td>{_human_size(os.path.getsize(full))}</td></tr>"
            )
    parts.append("</table></body></html>")
    return "\n".join(parts) + "\n"


def _duration_chart_svg(rows: List[dict]) -> Optional[str]:
    """Inline SVG bar chart of per-run durations, or None without data."""
    from repro.evaluation.plots import Figure, Series, build_scene, scene_to_svg

    points = [
        (float(row["run"]), float(row["duration_s"]))
        for row in rows
        if isinstance(row.get("duration_s"), (int, float))
    ]
    if not points:
        return None
    figure = Figure(
        title="Per-run duration",
        xlabel="run",
        ylabel="seconds",
        legend=False,
        width=520.0,
        height=240.0,
    )
    figure.add(
        Series("duration", points, kind="bars", bar_width=0.8, color="#1f77b4")
    )
    if len(points) <= 16:
        figure.x_ticks = [(x, f"{int(x)}") for x, __ in points]
    return scene_to_svg(build_scene(figure))


def _health_timeline_svg(timeline: dict) -> Optional[str]:
    """Inline SVG grid: nodes × runs, coloured by health observation."""
    from repro.evaluation.plots import Scene, scene_to_svg
    from repro.evaluation.plots.scene import Rect, Text

    nodes = timeline.get("nodes") or []
    runs = timeline.get("timeline") or []
    if not nodes or not runs:
        return None
    cell_w, cell_h, gap = 20.0, 18.0, 2.0
    left, top, bottom = 96.0, 30.0, 22.0
    width = left + len(runs) * (cell_w + gap) + 16.0
    height = top + len(nodes) * (cell_h + gap) + bottom
    scene = Scene(width=max(width, 320.0), height=height)
    for position, state in enumerate(_STATE_COLORS):
        scene.add(Rect(
            x=left + position * 104.0, y=6.0, w=10.0, h=10.0,
            fill=_STATE_COLORS[state], stroke="#666666", width=0.5,
        ))
        scene.add(Text(
            x=left + position * 104.0 + 14.0, y=15.0, text=state, size=9.0,
        ))
    for row, node in enumerate(nodes):
        y = top + row * (cell_h + gap)
        scene.add(Text(
            x=left - 8.0, y=y + cell_h - 5.0, text=node,
            size=10.0, anchor="end",
        ))
        for column, entry in enumerate(runs):
            observation = entry["observations"].get(node, "unmonitored")
            scene.add(Rect(
                x=left + column * (cell_w + gap), y=y, w=cell_w, h=cell_h,
                fill=_STATE_COLORS.get(observation, "#bdbdbd"),
                stroke="#ffffff", width=0.5,
            ))
    label_every = 1 if len(runs) <= 24 else max(1, len(runs) // 24)
    for column, entry in enumerate(runs):
        if column % label_every:
            continue
        scene.add(Text(
            x=left + column * (cell_w + gap) + cell_w / 2.0,
            y=top + len(nodes) * (cell_h + gap) + 14.0,
            text=str(entry["run"]), size=9.0, anchor="middle",
        ))
    return scene_to_svg(scene)


def _trace_timeline_svg(analysis: dict) -> Optional[str]:
    """Inline SVG fleet timeline: critical-path bar + per-agent spans.

    The top bar partitions the execution's whole lifetime into the
    critical-path phases; below it, one lane per agent shows each run
    as a block from its dispatch instant to its result arrival (serial
    executions fall back to a single lane on the sim clock).
    """
    from repro.evaluation.plots import Scene, scene_to_svg
    from repro.evaluation.plots.scene import Rect, Text
    from repro.telemetry.criticalpath import PHASES

    timeline = analysis.get("timeline") or []
    total = float(analysis.get("total") or 0.0)
    if not timeline or total <= 0.0:
        return None
    begin = float(analysis.get("begin") or 0.0)
    phases = analysis.get("phases") or {}
    lanes = sorted({entry.get("agent") or "runs" for entry in timeline})
    left, top, lane_h, gap, plot_w = 96.0, 58.0, 18.0, 4.0, 480.0
    width = left + plot_w + 16.0
    height = top + len(lanes) * (lane_h + gap) + 22.0
    scene = Scene(width=max(width, 320.0), height=height)

    def scale(value: float) -> float:
        return left + (float(value) - begin) / total * plot_w

    legend_x = left
    for phase in PHASES:
        scene.add(Rect(
            x=legend_x, y=6.0, w=10.0, h=10.0,
            fill=_PHASE_COLORS[phase], stroke="#666666", width=0.5,
        ))
        scene.add(Text(x=legend_x + 13.0, y=15.0, text=phase, size=9.0))
        legend_x += 13.0 + 5.5 * len(phase) + 14.0
    scene.add(Text(
        x=left - 8.0, y=37.0, text="critical path", size=10.0, anchor="end",
    ))
    cursor = left
    for phase in PHASES:
        seconds = float(phases.get(phase) or 0.0)
        if seconds <= 0.0:
            continue
        span_w = seconds / total * plot_w
        scene.add(Rect(
            x=cursor, y=28.0, w=span_w, h=12.0,
            fill=_PHASE_COLORS[phase], stroke="#ffffff", width=0.5,
        ))
        cursor += span_w

    for row, lane in enumerate(lanes):
        y = top + row * (lane_h + gap)
        scene.add(Text(
            x=left - 8.0, y=y + lane_h - 5.0, text=lane,
            size=10.0, anchor="end",
        ))
        scene.add(Rect(
            x=left, y=y, w=plot_w, h=lane_h,
            fill="#f4f4f4", stroke="#dddddd", width=0.5,
        ))
        for entry in timeline:
            if (entry.get("agent") or "runs") != lane:
                continue
            x0 = scale(entry["dispatch"])
            x1 = scale(entry["arrival"])
            scene.add(Rect(
                x=x0, y=y + 2.0, w=max(x1 - x0, 1.5), h=lane_h - 4.0,
                fill=_PHASE_COLORS["run"], stroke="#ffffff", width=0.5,
            ))
            if x1 - x0 >= 14.0:
                scene.add(Text(
                    x=(x0 + x1) / 2.0, y=y + lane_h - 5.0,
                    text=str(entry["run"]), size=9.0,
                    anchor="middle", color="#ffffff",
                ))
    unit = "t" if analysis.get("clock") == "transport" else "s (sim)"
    scene.add(Text(
        x=left, y=height - 8.0, text="0", size=9.0, anchor="middle",
    ))
    scene.add(Text(
        x=left + plot_w, y=height - 8.0, text=f"{total:g}{unit}",
        size=9.0, anchor="middle",
    ))
    return scene_to_svg(scene)


def _metric_table(parts: List[str], title: str, values: dict) -> None:
    if not values:
        return
    parts.append(f"<h3>{html.escape(title)}</h3>")
    parts.append("<table><tr><th>metric</th><th>value</th></tr>")
    for name in sorted(values):
        value = values[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        parts.append(
            f"<tr><td>{html.escape(name)}</td><td>{rendered}</td></tr>"
        )
    parts.append("</table>")


def _what_changed_panel(parts: List[str], root: str) -> None:
    """Render a saved ``pos diff --save`` report, when one is present.

    The panel answers the first question every reader of a re-run
    asks — *what changed against the baseline, and why* — without
    making them re-derive it from the raw artifacts.
    """
    import json

    diff_path = os.path.join(root, "diff.json")
    if not os.path.isfile(diff_path):
        return
    try:
        with open(diff_path, "r", encoding="utf-8") as handle:
            diff = json.load(handle)
        attribution = diff["attribution"]
        causes = diff["causes"]
        baseline = diff["a"]["path"]
    except (ValueError, KeyError):
        return  # a foreign or truncated diff.json is not ours to render
    parts.append("<h2>What changed</h2>")
    parts.append(
        f"<p>Compared against baseline <code>{html.escape(baseline)}</code> "
        f"(<code>pos diff</code>, saved as <code>diff.json</code>).</p>"
    )
    if causes:
        parts.append(
            "<table><tr><th>fingerprint field</th><th>baseline</th>"
            "<th>this tree</th></tr>"
        )
        for cause in causes:
            parts.append(
                f"<tr><td>{html.escape(str(cause['field']))}</td>"
                f"<td>{html.escape(str(cause['a']))}</td>"
                f"<td>{html.escape(str(cause['b']))}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p>The reproducibility fingerprints are identical.</p>")
    if attribution["total"] == 0:
        parts.append("<p>0 metric deltas — the trees replicate.</p>")
    elif attribution["unexplained"] == 0:
        parts.append(
            f"<p>{attribution['total']} metric delta(s), all explained by: "
            f"{html.escape(', '.join(attribution['causes']))}.</p>"
        )
    else:
        parts.append(
            f"<p><strong>{attribution['unexplained']} of "
            f"{attribution['total']} metric delta(s) are unexplained</strong> "
            f"— identical inputs produced different results.</p>"
        )


def generate_dashboard(
    root: str, repository_url: Optional[str] = None
) -> Optional[str]:
    """Render the telemetry/health dashboard page, or None.

    Returns None when the folder carries no telemetry artifacts (for
    example an exported experiment definition that was never executed)
    — the website generator simply omits the page then.
    """
    from repro.telemetry.live import load_health_timeline
    from repro.telemetry.report import ReportError, load_report

    try:
        report = load_report(root)
        timeline = load_health_timeline(root)
    except ReportError:
        return None
    name = html.escape(str(report.get("experiment", os.path.basename(root))))
    state = "complete" if report["complete"] else "INCOMPLETE (resumable)"
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Dashboard: {name}</title>",
        "<style>body{font-family:sans-serif;max-width:64em;margin:2em auto;}"
        "table{border-collapse:collapse;margin-bottom:1em;}td,th{border:1px "
        "solid #999;padding:3px 8px;font-size:90%;}svg{max-width:100%;}"
        "</style></head><body>",
        f"<h1>Dashboard: {name}</h1>",
        f"<p>Execution {html.escape(state)}; "
        f"{len(report['runs'])}/{report['total_runs']} runs journalled. "
        "Everything on this page is reconstructed from the published "
        "artifacts alone.</p>",
    ]
    if repository_url:
        url = html.escape(repository_url)
        parts.append(f'<p>Released at: <a href="{url}">{url}</a></p>')

    parts.append("<h2>Per-run provenance</h2>")
    parts.append(
        "<table><tr><th>run</th><th>status</th><th>attempts</th>"
        "<th>faults</th><th>duration [s]</th><th>loop</th></tr>"
    )
    for row in report["runs"]:
        if row["skipped"]:
            status = "skipped"
        elif not row["ok"]:
            status = "FAILED"
        elif row.get("recovered") or row["retried"]:
            status = "recovered"
        else:
            status = "ok"
        loop = " ".join(
            f"{key}={row['loop'][key]}" for key in sorted(row["loop"])
        )
        duration = row.get("duration_s")
        duration_text = (
            f"{duration:.3f}"
            if isinstance(duration, (int, float)) else "—"
        )
        parts.append(
            f"<tr><td>{row['run']}</td><td>{status}</td>"
            f"<td>{row.get('attempts', '—')}</td>"
            f"<td>{row.get('faults', '—')}</td>"
            f"<td>{duration_text}</td>"
            f"<td>{html.escape(loop)}</td></tr>"
        )
    parts.append("</table>")

    duration_svg = _duration_chart_svg(report["runs"])
    if duration_svg:
        parts.append(duration_svg)

    trace_analysis = None
    try:
        from repro.telemetry.criticalpath import TraceError, analyze

        trace_analysis = analyze(root)
    except TraceError:
        pass
    if trace_analysis is not None:
        trace_svg = _trace_timeline_svg(trace_analysis)
        if trace_svg:
            parts.append("<h2>Fleet timeline</h2>")
            parts.append(
                "<p>Critical-path attribution and per-agent occupancy, "
                "reconstructed from <code>fleet-trace.jsonl</code> and "
                "the wall-clock evidence sidecar "
                "(<code>pos trace</code> prints the same breakdown).</p>"
            )
            parts.append(trace_svg)

    parts.append("<h2>Node health</h2>")
    timeline_svg = _health_timeline_svg(timeline)
    if timeline_svg:
        parts.append(timeline_svg)
        final = timeline.get("final", {})
        parts.append("<table><tr><th>node</th><th>final state</th></tr>")
        for node in sorted(final):
            parts.append(
                f"<tr><td>{html.escape(node)}</td>"
                f"<td>{html.escape(final[node])}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p>No health snapshots were published.</p>")
    sel = timeline.get("sel", [])
    if sel:
        parts.append("<h3>System Event Log</h3>")
        parts.append(
            "<table><tr><th>run</th><th>node</th><th>sensor</th>"
            "<th>severity</th><th>event</th></tr>"
        )
        for record in sel:
            parts.append(
                f"<tr><td>{record['run']}</td>"
                f"<td>{html.escape(record['node'])}</td>"
                f"<td>{html.escape(record['sensor'])}</td>"
                f"<td>{html.escape(record['severity'])}</td>"
                f"<td>{html.escape(record['event'])}</td></tr>"
            )
        parts.append("</table>")

    telemetry = report.get("telemetry") or {}
    metrics = telemetry.get("metrics", {})
    if metrics.get("counters") or metrics.get("gauges"):
        parts.append("<h2>Experiment-wide metrics</h2>")
        _metric_table(parts, "Counters", metrics.get("counters", {}))
        _metric_table(parts, "Gauges", metrics.get("gauges", {}))

    _what_changed_panel(parts, root)

    parts.append('<p><a href="index.html">Back to the artifact index</a></p>')
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def generate_website(root: str, repository_url: Optional[str] = None) -> List[str]:
    """Write README.md, index.html and (when the folder carries the
    telemetry artifacts) dashboard.html into the result folder."""
    if not os.path.isdir(root):
        raise PublicationError(f"no such result folder: {root}")
    written: List[str] = []
    dashboard = generate_dashboard(root, repository_url)
    if dashboard is not None:
        dashboard_path = os.path.join(root, "dashboard.html")
        with open(dashboard_path, "w", encoding="utf-8") as handle:
            handle.write(dashboard)
    readme_path = os.path.join(root, "README.md")
    html_path = os.path.join(root, "index.html")
    with open(readme_path, "w", encoding="utf-8") as handle:
        handle.write(generate_readme(root, repository_url))
    with open(html_path, "w", encoding="utf-8") as handle:
        handle.write(generate_html(root, repository_url))
    written.extend([readme_path, html_path])
    if dashboard is not None:
        written.append(dashboard_path)
    return written


def generate_campaign_index(campaign_dir: str) -> str:
    """Write the campaign ``index.html``: admission table + experiment links.

    Rendered purely from the campaign artifacts (``admission.jsonl``,
    ``journal.jsonl``, ``campaign.json``), self-contained and
    deterministic: the bytes are a function of those artifacts alone,
    so the page is identical for any ``--jobs N`` and across resume.
    Per-experiment pages are *linked*, not regenerated — publishing an
    individual experiment stays an explicit ``pos publish`` step.
    """
    import json as _json

    if not os.path.isdir(campaign_dir):
        raise PublicationError(f"no such campaign folder: {campaign_dir}")
    admission_path = os.path.join(campaign_dir, "admission.jsonl")
    if not os.path.isfile(admission_path):
        raise PublicationError(f"no admission log at {admission_path}")
    decisions: List[dict] = []
    with open(admission_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                decisions.append(_json.loads(line))
    summary: dict = {}
    summary_path = os.path.join(campaign_dir, "campaign.json")
    if os.path.isfile(summary_path):
        with open(summary_path, "r", encoding="utf-8") as handle:
            summary = _json.load(handle)
    outcomes = {
        int(entry["index"]): entry
        for entry in summary.get("experiments", [])
    }
    name = summary.get("campaign") or os.path.basename(campaign_dir)
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>pos campaign: {html.escape(str(name))}</title>",
        "<style>body{font-family:sans-serif;max-width:60em;margin:2em auto}"
        "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
        "padding:0.3em 0.6em;text-align:left}</style>",
        "</head><body>",
        f"<h1>Campaign: {html.escape(str(name))}</h1>",
    ]
    pool = summary.get("pool")
    if pool:
        parts.append(
            "<p>Shared node pool: "
            + ", ".join(html.escape(str(node)) for node in pool)
            + "</p>"
        )
    parts.append("<h2>Admitted experiments</h2>")
    parts.append(
        "<table><tr><th>#</th><th>user</th><th>experiment</th>"
        "<th>nodes</th><th>window</th><th>outcome</th></tr>"
    )
    for decision in decisions:
        if decision.get("event") != "admit":
            continue
        index = int(decision.get("execution", 0))
        outcome = outcomes.get(index, {})
        target = outcome.get("dir")
        label = html.escape(str(decision.get("experiment", "")))
        cell = (
            f'<a href="{html.escape(str(target))}/index.html">{label}</a>'
            if target else label
        )
        if index in outcomes:
            status = (
                f"ok ({outcome.get('runs_completed', 0)} runs)"
                if outcome.get("ok")
                else "failed"
            )
        else:
            status = "pending"
        parts.append(
            "<tr>"
            f"<td>{index}</td>"
            f"<td>{html.escape(str(decision.get('user', '')))}</td>"
            f"<td>{cell}</td>"
            f"<td>{html.escape(', '.join(decision.get('nodes', [])))}</td>"
            f"<td>[{decision.get('start')}, {decision.get('end')})</td>"
            f"<td>{html.escape(status)}</td>"
            "</tr>"
        )
    parts.append("</table>")
    rejected = [d for d in decisions if d.get("event") == "reject"]
    if rejected:
        parts.append("<h2>Rejected</h2><ul>")
        for decision in rejected:
            parts.append(
                "<li>"
                f"{html.escape(str(decision.get('user', '')))}/"
                f"{html.escape(str(decision.get('experiment', '')))}: "
                f"{html.escape(str(decision.get('reason', '')))}"
                "</li>"
            )
        parts.append("</ul>")
    parts.append("</body></html>")
    page = "\n".join(parts) + "\n"
    path = os.path.join(campaign_dir, "index.html")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(page)
    return path


def generate_study_page(study_dir: str) -> str:
    """Write the study ``index.html``: design, replications, statistics.

    Rendered purely from the study artifacts (``study.yml``,
    ``study.jsonl``, ``study.json``), self-contained and deterministic
    — the bytes are a function of those artifacts alone, so the page
    is identical for any ``--jobs``/``--agents`` count and across
    crash + resume/repair.  Per-replication campaign pages are linked,
    not regenerated.
    """
    import json as _json

    if not os.path.isdir(study_dir):
        raise PublicationError(f"no such study folder: {study_dir}")
    spec = _load_yaml(os.path.join(study_dir, "study.yml"))
    if not spec:
        raise PublicationError(f"no study.yml in {study_dir}")
    aggregate: dict = {}
    aggregate_path = os.path.join(study_dir, "study.json")
    if os.path.isfile(aggregate_path):
        with open(aggregate_path, "r", encoding="utf-8") as handle:
            aggregate = _json.load(handle)
    replications: List[dict] = []
    journal_path = os.path.join(study_dir, "study.jsonl")
    if os.path.isfile(journal_path):
        with open(journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = _json.loads(line)
                except ValueError:
                    break
                if entry.get("event") == "replication":
                    replications.append(entry)

    name = html.escape(str(spec.get("name", os.path.basename(study_dir))))
    factors = spec.get("factors") or {}
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>pos study: {name}</title>",
        "<style>body{font-family:sans-serif;max-width:60em;margin:2em auto}"
        "table{border-collapse:collapse;margin-bottom:1em}td,th{border:1px "
        "solid #ccc;padding:0.3em 0.6em;text-align:left}</style>",
        "</head><body>",
        f"<h1>Study: {name}</h1>",
        f"<p>Factorial design, {spec.get('replications', '?')} "
        f"replication(s), root seed {spec.get('seed', '?')}.</p>",
        "<h2>Design</h2>",
        "<table><tr><th>factor</th><th>levels</th></tr>",
    ]
    for factor in factors:
        levels = factors[factor]
        rendered = ", ".join(str(level) for level in levels) \
            if isinstance(levels, list) else str(levels)
        parts.append(
            f"<tr><td>{html.escape(str(factor))}</td>"
            f"<td>{html.escape(rendered)}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Replications</h2>")
    parts.append(
        "<table><tr><th>#</th><th>seed</th><th>experiments</th>"
        "<th>outcome</th></tr>"
    )
    for entry in replications:
        target = entry.get("dir")
        index = entry.get("index")
        label = f"rep-{index:03d}" if isinstance(index, int) else str(index)
        cell = (
            f'<a href="{html.escape(str(target))}/index.html">{label}</a>'
            if target else label
        )
        status = (
            f"ok ({entry.get('experiments_completed', 0)} cells)"
            if entry.get("ok") else "failed"
        )
        parts.append(
            f"<tr><td>{cell}</td><td>{entry.get('seed', '?')}</td>"
            f"<td>{entry.get('experiments_completed', 0)}</td>"
            f"<td>{html.escape(status)}</td></tr>"
        )
    parts.append("</table>")

    if aggregate:
        parts.append("<h2>Cross-replication consistency</h2>")
        parts.append(
            "<table><tr><th>cell</th><th>median [Mpps]</th>"
            "<th>max deviation</th><th>verdict</th></tr>"
        )
        for report in aggregate.get("cells", []):
            assignment = report.get("assignment", {})
            label = " ".join(
                f"{factor}={assignment[factor]}"
                for factor in sorted(assignment)
            )
            consistency = report.get("consistency", {})
            verdict = (
                "consistent" if consistency.get("consistent")
                else "INCONSISTENT"
            )
            parts.append(
                f"<tr><td>{html.escape(label)}</td>"
                f"<td>{consistency.get('reference', 0.0):.4f}</td>"
                f"<td>{consistency.get('max_deviation', 0.0) * 100:.2f}%"
                f"</td><td>{verdict}</td></tr>"
            )
        parts.append("</table>")
        parts.append("<h2>Main effects</h2>")
        parts.append(
            "<p>Hodges&ndash;Lehmann paired estimate against each "
            "factor's first level, with seeded-bootstrap confidence "
            "intervals.</p>"
        )
        parts.append(
            "<table><tr><th>factor</th><th>level change</th>"
            "<th>effect [Mpps]</th><th>95% CI</th><th>pairs</th></tr>"
        )
        effects = aggregate.get("effects", {})
        for factor in sorted(effects):
            summary = effects[factor]
            for level in sorted(summary.get("levels", {})):
                effect = summary["levels"][level]
                parts.append(
                    f"<tr><td>{html.escape(factor)}</td>"
                    f"<td>{html.escape(str(summary.get('baseline')))} "
                    f"&rarr; {html.escape(str(level))}</td>"
                    f"<td>{effect['hl_estimate']:+.4f}</td>"
                    f"<td>[{effect['ci_low']:+.4f}, "
                    f"{effect['ci_high']:+.4f}]</td>"
                    f"<td>{int(effect['n'])}</td></tr>"
                )
        parts.append("</table>")
        parts.append(
            f"<p>Verdict: <strong>"
            f"{html.escape(str(aggregate.get('verdict', 'unknown')))}"
            f"</strong></p>"
        )
    parts.append("</body></html>")
    page = "\n".join(parts) + "\n"
    path = os.path.join(study_dir, "index.html")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(page)
    return path
