"""Publication phase: artifact bundling and website generation (R5)."""

from repro.publication.bundle import build_manifest, bundle_artifacts, verify_bundle
from repro.publication.publish import PublicationReport, publish
from repro.publication.website import generate_html, generate_readme, generate_website

__all__ = [
    "build_manifest",
    "bundle_artifacts",
    "verify_bundle",
    "PublicationReport",
    "publish",
    "generate_html",
    "generate_readme",
    "generate_website",
]
