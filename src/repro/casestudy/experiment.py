"""The paper's case study (Sec. 5 / Appendix A) as a pos experiment.

MoonGen on the LoadGen measures the forwarding performance of a Linux
router (the DuT) for two packet sizes over a sweep of offered rates.
The *same* experiment definition runs on both platforms — pos (the
bare-metal testbed model) and vpos (the virtual clone) — with only the
variable files and the node names differing, which is exactly the
property the paper demonstrates.

The appendix's loop file defines two parameters: ``pkt_sz`` (64 and
1500 B) and ``pkt_rate`` (30 entries, 10 000 … 300 000 pps), yielding a
60-run cross product on vpos.  The hardware sweep of Fig. 3a extends
the rates to 2 Mpps.
"""

from __future__ import annotations

import hashlib
import json

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro import cache as _runcache
from repro.core import envcache
from repro.core.allocation import Allocator
from repro.core.calendar import Calendar
from repro.core.controller import Controller, ExperimentHandle
from repro.core.errors import ExperimentError
from repro.core.experiment import Experiment, Role
from repro.core.results import ResultStore
from repro.core.scheduler import WorkerEnv, WorkerWorld
from repro.core.scripts import CommandScript, PythonScript, ScriptContext
from repro.core.variables import Variables
from repro.loadgen.moongen import format_report, latency_histogram_csv
from repro.testbed.scenarios import TestbedSetup, build_pos_pair, build_vpos_pair

__all__ = [
    "VPOS_RATES",
    "POS_RATES",
    "PACKET_SIZES",
    "CaseStudyEnvironment",
    "build_environment",
    "build_case_study_experiment",
    "case_study_worker_env",
    "run_case_study",
]

#: Appendix A: "30 entries for the packet rate (10 000 to 300 000 packets/s)".
VPOS_RATES: List[int] = [10_000 * step for step in range(1, 31)]

#: Fig. 3a sweeps the hardware DuT into overload: up to 2 Mpps.
POS_RATES: List[int] = [100_000 * step for step in range(1, 21)]

#: "packets with different sizes (64 and 1500 B)".
PACKET_SIZES: Tuple[int, int] = (64, 1500)


# --------------------------------------------------------------------------
# scripts
# --------------------------------------------------------------------------

def _dut_setup_commands() -> List[str]:
    """The DuT setup: enable routing, bring both ports up."""
    return [
        "sysctl -w net.ipv4.ip_forward=1",
        "ip link set $DUT_PORT0 up",
        "ip link set $DUT_PORT1 up",
        "ip addr add 10.0.0.1/24 dev $DUT_PORT0",
        "ip addr add 10.0.1.1/24 dev $DUT_PORT1",
        "-ethtool $DUT_PORT0",
        "pos barrier setup-done",
    ]


def _loadgen_setup_commands() -> List[str]:
    """The LoadGen setup: bring the generator ports up."""
    return [
        "ip link set $LG_PORT0 up",
        "ip link set $LG_PORT1 up",
        "-ethtool $LG_PORT0",
        "pos barrier setup-done",
    ]


def _loadgen_measurement(ctx: ScriptContext) -> dict:
    """Run MoonGen for one (pkt_sz, pkt_rate) instance.

    Uploads the MoonGen log (and, when hardware timestamping is
    available, the latency histogram) exactly like the original
    measurement.sh drives MoonGen and collects its output.
    """
    setup: TestbedSetup = ctx.setup
    if setup is None:
        raise ExperimentError("case-study measurement needs the testbed setup")
    rate = int(ctx.variables["pkt_rate"])
    size = int(ctx.variables["pkt_sz"])
    duration = float(ctx.variables.get("duration", 0.3))
    interval = float(ctx.variables.get("interval", 0.1))
    drain = float(ctx.variables.get("drain", 0.05))
    job = setup.loadgen.start(
        rate_pps=rate, frame_size=size, duration_s=duration, interval_s=interval
    )
    setup.sim.run(until=setup.sim.now + duration + drain)
    ctx.tools.upload("moongen.log", format_report(job))
    if job.timestamping and job.latency_samples_s:
        ctx.tools.upload("histogram.csv", latency_histogram_csv(job))
    ctx.tools.log(
        f"run {ctx.run_index}: rate={rate} size={size} "
        f"tx={job.tx_packets} rx={job.rx_packets}"
    )
    ctx.tools.barrier("run-done")
    return {"tx": job.tx_packets, "rx": job.rx_packets}


def _dut_measurement(ctx: ScriptContext) -> None:
    """Capture DuT-side state after the run: counters and stats.

    Counters are reported as *this run's* deltas against the baseline
    snapshot the run-isolation hook took at run start, so the uploaded
    numbers are a pure function of the run — identical no matter how
    many runs preceded it or which parallel worker executed it.  Without
    a baseline (a standalone script invocation outside the controller
    loop) the cumulative counters are reported, as ethtool would.
    """
    setup: TestbedSetup = ctx.setup
    if setup is None:
        raise ExperimentError("case-study measurement needs the testbed setup")
    result = ctx.tools.run("ip link show")
    del result  # captured automatically into commands.log
    ctx.tools.run("sysctl net.ipv4.ip_forward")
    stats = setup.router.stats.snapshot()
    nic_stats = {
        port.name: port.stats.snapshot() for port in setup.router.ports
    }
    baseline = getattr(setup, "run_baseline", None)
    if baseline is not None:
        stats = {
            key: value - baseline["router"].get(key, 0)
            for key, value in stats.items()
        }
        nic_stats = {
            name: {
                key: value - baseline["nics"].get(name, {}).get(key, 0)
                for key, value in counters.items()
            }
            for name, counters in nic_stats.items()
        }
        lines = ["router forwarding statistics (this run):"]
    else:
        lines = ["router forwarding statistics (cumulative):"]
    for key, value in stats.items():
        lines.append(f"  {key}: {value}")
    for name, counters in nic_stats.items():
        lines.append(f"nic {name}:")
        for key, value in counters.items():
            lines.append(f"  {key}: {value}")
    ctx.tools.upload("dut-stats.txt", "\n".join(lines) + "\n")
    ctx.tools.barrier("run-done")


# --------------------------------------------------------------------------
# experiment & environment
# --------------------------------------------------------------------------

def _shell_loadgen_measurement_commands() -> list:
    """The measurement.sh form of the LoadGen script: pure commands.

    The ``moongen`` command exposed on the load-generator host runs the
    generator and prints its report; the capture machinery collects it,
    and the evaluation loader extracts it from ``commands.log``.  This
    form is exportable as a publishable artifact folder
    (:func:`repro.core.expdir.write_experiment_dir`).
    """
    return [
        "moongen --rate $pkt_rate --size $pkt_sz --duration $duration",
        "pos barrier run-done",
    ]


def _shell_dut_measurement_commands() -> list:
    return [
        "ip link show",
        "sysctl net.ipv4.ip_forward",
        "pos barrier run-done",
    ]


def build_case_study_experiment(
    platform: str = "pos",
    rates: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = PACKET_SIZES,
    duration_s: float = 0.3,
    interval_s: float = 0.1,
    image: Tuple[str, str] = ("debian-buster", "20201012T000000Z"),
    script_style: str = "python",
) -> Experiment:
    """Assemble the case-study experiment for one platform.

    ``script_style`` selects the measurement-script form: ``python``
    (callables driving the generator API, with latency histograms) or
    ``shell`` (pure command scripts using the host's ``moongen``
    command — the form that exports to a publishable artifact folder).
    """
    if platform not in ("pos", "vpos"):
        raise ExperimentError(f"unknown platform {platform!r} (pos or vpos)")
    if script_style not in ("python", "shell"):
        raise ExperimentError(
            f"unknown script_style {script_style!r} (python or shell)"
        )
    if rates is None:
        rates = POS_RATES if platform == "pos" else VPOS_RATES
    loadgen_node, dut_node = (
        ("riga", "tartu") if platform == "pos" else ("vriga", "vtartu")
    )
    variables = Variables(
        global_vars={
            "duration": duration_s,
            "interval": interval_s,
            "platform": platform,
        },
        local_vars={
            "loadgen": {"LG_PORT0": "eno1", "LG_PORT1": "eno2"},
            "dut": {"DUT_PORT0": "eno1", "DUT_PORT1": "eno2"},
        },
        loop_vars={"pkt_sz": list(sizes), "pkt_rate": list(rates)},
    )
    if script_style == "python":
        loadgen_measurement: object = PythonScript(
            "loadgen-measurement", _loadgen_measurement
        )
        dut_measurement: object = PythonScript(
            "dut-measurement", _dut_measurement
        )
    else:
        loadgen_measurement = CommandScript(
            "loadgen-measurement", _shell_loadgen_measurement_commands()
        )
        dut_measurement = CommandScript(
            "dut-measurement", _shell_dut_measurement_commands()
        )
    roles = [
        Role(
            name="loadgen",
            node=loadgen_node,
            setup=CommandScript("loadgen-setup", _loadgen_setup_commands()),
            measurement=loadgen_measurement,
            image=image,
        ),
        Role(
            name="dut",
            node=dut_node,
            setup=CommandScript("dut-setup", _dut_setup_commands()),
            measurement=dut_measurement,
            image=image,
            boot_parameters={"isolcpus": "1-11", "intel_iommu": "on"},
        ),
    ]
    return Experiment(
        name=f"linux-router-forwarding-{platform}",
        roles=roles,
        variables=variables,
        duration_s=3 * 3600.0,  # the appendix: "runs for approximately 3 h"
        description=(
            "Forwarding performance of a Linux router for 64 B and 1500 B "
            f"packets over a rate sweep, measured with MoonGen on {platform}."
        ),
    )


@dataclass
class CaseStudyEnvironment:
    """A ready-to-run testbed: setup, calendar, allocator, controller."""

    platform: str
    setup: TestbedSetup
    calendar: Calendar
    allocator: Allocator
    results: ResultStore
    controller: Controller


def build_environment(
    platform: str,
    result_root: str,
    seed: int = 0,
    clock: Optional[Callable[[], float]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    fault_plan=None,
    cache_dir: Optional[str] = None,
) -> CaseStudyEnvironment:
    """Build the full environment for one platform.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) instruments
    every node's power and transport layer with the seeded injection
    plane and attaches the injector to the controller, so planned
    faults strike by run index and are recorded in the inventory.

    ``cache_dir`` (default: the ``POS_RUN_CACHE_DIR`` environment
    variable, else off) attaches a content-addressed run cache
    (:mod:`repro.cache`): a repeated (scenario, assignment, seed) point
    is served from the cache with zero simulator events and a
    byte-identical artifact tree.  ``POS_RUN_CACHE=0`` kills it.
    """
    # Kill switches are resolved once per world, here: hot paths read
    # the cached resolution instead of hitting os.environ per run.
    envcache.refresh_all()
    if platform == "pos":
        setup = build_pos_pair(seed=seed)
    elif platform == "vpos":
        setup = build_vpos_pair(seed=seed)
    else:
        raise ExperimentError(f"unknown platform {platform!r} (pos or vpos)")
    injector = None
    if fault_plan is not None:
        from repro.faults.injector import install_fault_plan

        injector = install_fault_plan(setup.nodes, fault_plan)
    run_cache = None
    cache_root = _runcache.resolve_cache_dir(cache_dir)
    if cache_root is not None and injector is None:
        run_cache = _runcache.RunCache(
            cache_root,
            scope={
                "code_epoch": _runcache.CODE_EPOCH,
                "platform": platform,
                "seed": seed,
                "testbed": setup.describe(),
            },
        )
    calendar = Calendar(clock=clock)
    allocator = Allocator(calendar, setup.nodes)
    results = ResultStore(result_root, clock=clock)
    # The same fields the run cache fingerprints (minus the scenario
    # content, which lives in experiment.yml/inventory.yml already):
    # recorded in telemetry.json so `pos diff` can attribute deltas
    # between two result trees to an identified input change.
    testbed_digest = hashlib.sha256(
        json.dumps(setup.describe(), sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    controller = Controller(
        allocator,
        setup.images,
        results,
        inventory_extra=lambda: {"testbed": setup.describe()},
        progress=progress,
        fault_injector=injector,
        run_cache=run_cache,
        provenance={
            "code_epoch": _runcache.CODE_EPOCH,
            "platform": platform,
            "seed": seed,
            "testbed": testbed_digest,
        },
    )
    return CaseStudyEnvironment(
        platform=platform,
        setup=setup,
        calendar=calendar,
        allocator=allocator,
        results=results,
        controller=controller,
    )


def _build_worker_world(
    platform: str, seed: int = 0, fault_plan=None
) -> WorkerWorld:
    """Build one parallel worker's isolated testbed world.

    Module-level on purpose: the :class:`WorkerEnv` recipe crosses the
    process boundary by reference.  Each call produces a *fresh* world —
    its own simulator, hosts, router, generator, and (when a fault plan
    is attached) its own injector copy — sharing nothing with the
    parent's or any sibling's.
    """
    # A fresh world re-reads the kill switches: cached env resolutions
    # belong to a world, and a spawned worker process may have inherited
    # a parent's cache alongside a changed environment.
    envcache.refresh_all()
    if platform == "pos":
        setup = build_pos_pair(seed=seed)
    elif platform == "vpos":
        setup = build_vpos_pair(seed=seed)
    else:
        raise ExperimentError(f"unknown platform {platform!r} (pos or vpos)")
    injector = None
    if fault_plan is not None:
        from repro.faults.injector import install_fault_plan

        injector = install_fault_plan(setup.nodes, fault_plan)
    return WorkerWorld(
        nodes=setup.nodes,
        images=setup.images,
        context_extra={"setup": setup},
        fault_injector=injector,
    )


def case_study_worker_env(
    platform: str, seed: int = 0, fault_plan=None
) -> WorkerEnv:
    """The :class:`WorkerEnv` recipe for parallel case-study execution."""
    return WorkerEnv(
        factory=_build_worker_world,
        kwargs={"platform": platform, "seed": seed, "fault_plan": fault_plan},
    )


def run_case_study(
    platform: str,
    result_root: str,
    rates: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = PACKET_SIZES,
    duration_s: float = 0.3,
    interval_s: float = 0.1,
    seed: int = 0,
    user: str = "user",
    max_runs: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    script_style: str = "python",
    on_error: str = "abort",
    fault_plan=None,
    resume_path: Optional[str] = None,
    jobs: Optional[int] = None,
    agents: Optional[int] = None,
    transport: str = "loopback",
    dist_fault_plan=None,
    cache_dir: Optional[str] = None,
) -> ExperimentHandle:
    """Execute the whole case study on one platform, end to end.

    ``on_error`` selects the run-failure policy (abort, continue,
    recover), ``fault_plan`` attaches a seeded fault-injection plan, and
    ``resume_path`` continues a killed execution from its run journal
    instead of starting a fresh result folder.

    ``jobs`` (default: the ``POS_JOBS`` environment variable, else 1)
    shards the measurement cross product over that many worker
    processes, each owning an isolated testbed world; the result tree
    is byte-identical to a sequential execution.

    ``agents`` (default: the ``POS_AGENTS`` environment variable, else
    0 = off) instead fans the runs out to that many node-agent daemons
    on the fault-tolerant distributed plane (:mod:`repro.dist`) over
    the given ``transport``; ``dist_fault_plan`` injects seeded chaos
    (agent kills, message drop/duplicate/delay) into that plane only.
    The result tree stays byte-identical to a sequential execution for
    any agent count and crash schedule.

    ``cache_dir`` attaches the content-addressed run cache: repeated
    (scenario, assignment, seed) points are replayed from it with zero
    simulator events and byte-identical artifacts (see
    :mod:`repro.cache`).

    Returns the experiment handle; ``handle.result_path`` is the result
    folder ready for evaluation and publication.
    """
    env = build_environment(
        platform, result_root, seed=seed, clock=clock, progress=progress,
        fault_plan=fault_plan, cache_dir=cache_dir,
    )
    experiment = build_case_study_experiment(
        platform=platform,
        rates=rates,
        sizes=sizes,
        duration_s=duration_s,
        interval_s=interval_s,
        script_style=script_style,
    )
    worker_env = case_study_worker_env(platform, seed=seed, fault_plan=fault_plan)
    try:
        if resume_path is not None:
            handle = env.controller.resume(
                experiment,
                resume_path,
                user=user,
                on_error=on_error,
                max_runs=max_runs,
                setup_context_extra={"setup": env.setup},
                jobs=jobs,
                worker_env=worker_env,
                agents=agents,
                transport=transport,
                dist_fault_plan=dist_fault_plan,
            )
        else:
            handle = env.controller.run(
                experiment,
                user=user,
                on_error=on_error,
                max_runs=max_runs,
                setup_context_extra={"setup": env.setup},
                jobs=jobs,
                worker_env=worker_env,
                agents=agents,
                transport=transport,
                dist_fault_plan=dist_fault_plan,
            )
    finally:
        if env.setup.hypervisor is not None:
            env.setup.hypervisor.stop()
    return handle
