"""The paper's Section 5 case study, runnable end to end."""

from repro.casestudy.experiment import (
    PACKET_SIZES,
    POS_RATES,
    VPOS_RATES,
    CaseStudyEnvironment,
    build_case_study_experiment,
    build_environment,
    run_case_study,
)

__all__ = [
    "PACKET_SIZES",
    "POS_RATES",
    "VPOS_RATES",
    "CaseStudyEnvironment",
    "build_case_study_experiment",
    "build_environment",
    "run_case_study",
]
