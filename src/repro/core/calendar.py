"""Booking calendar for temporal node isolation.

"As we operate a multi-user testbed, we use an integrated calendar to
temporally separate the experimental devices between users.  Only if
the calendar indicates that the devices are free for the planned
duration of the experiment, the allocation can be created."  (Sec. 4.4)

Times are plain epoch seconds; the clock is injectable so tests and the
simulated testbed stay deterministic.  Intervals are half-open
``[start, end)`` — back-to-back bookings do not conflict.

Beyond the per-experiment booking rule, the calendar carries the
primitives the multi-tenant campaign scheduler needs: conflict queries
over explicit time windows, the earliest slot at which a *set* of nodes
is simultaneously free, release hooks that fire when a booking is
cancelled, and a per-node FIFO wait-list so queued work can register
interest in a node and be found again when it frees up.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass

from typing import Any, Callable, Dict, Iterable, List, Optional


from repro.core.errors import CalendarError

__all__ = ["Booking", "Calendar"]


@dataclass(frozen=True)
class Booking:
    """One reservation of one node by one user."""

    booking_id: int
    node: str
    user: str
    start: float
    end: float

    def overlaps(self, start: float, end: float) -> bool:
        """Half-open interval overlap test."""
        return self.start < end and start < self.end

    def describe(self) -> dict:
        return {
            "id": self.booking_id,
            "node": self.node,
            "user": self.user,
            "start": self.start,
            "end": self.end,
        }


class Calendar:
    """Per-node booking ledger with conflict detection."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or _time.time
        self._bookings: Dict[str, List[Booking]] = {}
        self._ids = itertools.count(1)
        self._release_hooks: List[Callable[[Booking], None]] = []
        self._waiters: Dict[str, List[Any]] = {}

    def now(self) -> float:
        """Current time according to the injected clock."""
        return self._clock()

    def book(
        self,
        node: str,
        user: str,
        duration: float,
        start: Optional[float] = None,
    ) -> Booking:
        """Reserve ``node`` for ``user``; raises on any overlap.

        ``start`` defaults to now.  Using a node in more than one
        experiment at the same time is prohibited, even by the same
        user — exactly the paper's rule.
        """
        if duration <= 0:
            raise CalendarError(f"booking duration must be positive, got {duration}")
        begin = self.now() if start is None else start
        end = begin + duration
        for existing in self._bookings.get(node, []):
            if existing.overlaps(begin, end):
                raise CalendarError(
                    f"node {node!r} is booked by {existing.user!r} during "
                    f"[{existing.start}, {existing.end}); cannot book "
                    f"[{begin}, {end})"
                )
        booking = Booking(next(self._ids), node, user, begin, end)
        self._bookings.setdefault(node, []).append(booking)
        return booking

    def cancel(self, booking: Booking) -> None:
        """Remove a booking; unknown bookings raise.

        Registered release hooks fire after the booking is gone, so a
        hook observing the calendar sees the node already free.
        """
        entries = self._bookings.get(booking.node, [])
        try:
            entries.remove(booking)
        except ValueError:
            raise CalendarError(
                f"booking {booking.booking_id} for node {booking.node!r} not found"
            ) from None
        for hook in list(self._release_hooks):
            hook(booking)

    def add_release_hook(self, hook: Callable[[Booking], None]) -> None:
        """Register a callback invoked with each cancelled booking."""
        self._release_hooks.append(hook)

    def remove_release_hook(self, hook: Callable[[Booking], None]) -> None:
        """Deregister a previously added release hook (missing hooks raise)."""
        try:
            self._release_hooks.remove(hook)
        except ValueError:
            raise CalendarError("release hook not registered") from None

    def is_free(self, node: str, duration: float, start: Optional[float] = None) -> bool:
        """Whether the node is free for the whole planned duration."""
        begin = self.now() if start is None else start
        end = begin + duration
        return not any(
            existing.overlaps(begin, end) for existing in self._bookings.get(node, [])
        )

    def bookings_for_node(self, node: str) -> List[Booking]:
        """All bookings of a node, ordered by start time."""
        return sorted(self._bookings.get(node, []), key=lambda b: b.start)

    def bookings_for_user(self, user: str) -> List[Booking]:
        """All bookings of a user across nodes, ordered by start time."""
        found = [
            booking
            for entries in self._bookings.values()
            for booking in entries
            if booking.user == user
        ]
        return sorted(found, key=lambda b: (b.start, b.node))

    def next_free_slot(self, node: str, duration: float, earliest: Optional[float] = None) -> float:
        """Earliest start time at which ``node`` is free for ``duration``.

        Scans the gaps between existing bookings; always terminates
        because time after the last booking is free.
        """
        candidate = self.now() if earliest is None else earliest
        bookings = self.bookings_for_node(node)
        for booking in bookings:
            if booking.overlaps(candidate, candidate + duration):
                candidate = booking.end
        return candidate

    def window_conflicts(self, node: str, start: float, end: float) -> List[Booking]:
        """Bookings of ``node`` overlapping ``[start, end)``, by start time."""
        return sorted(
            (b for b in self._bookings.get(node, []) if b.overlaps(start, end)),
            key=lambda b: (b.start, b.booking_id),
        )

    def free_during(self, node: str, start: float, end: float) -> bool:
        """Whether ``node`` has no booking overlapping ``[start, end)``."""
        return not self.window_conflicts(node, start, end)

    def next_common_free_slot(
        self,
        nodes: Iterable[str],
        duration: float,
        earliest: Optional[float] = None,
    ) -> float:
        """Earliest start at which *all* ``nodes`` are free for ``duration``.

        Fixpoint over the per-node ``next_free_slot``: each pass pushes
        the candidate to the latest per-node answer, and a pass that
        moves nothing has found a window free on every node.  Terminates
        because every push lands on some booking's end and bookings are
        finite.
        """
        names = sorted(set(nodes))
        if not names:
            return self.now() if earliest is None else earliest
        candidate = self.now() if earliest is None else earliest
        while True:
            moved = False
            for node in names:
                slot = self.next_free_slot(node, duration, earliest=candidate)
                if slot > candidate:
                    candidate = slot
                    moved = True
            if not moved:
                return candidate

    def enqueue_waiter(self, node: str, token: Any) -> None:
        """Append ``token`` to the FIFO wait-list of ``node``."""
        self._waiters.setdefault(node, []).append(token)

    def waiting(self, node: str) -> List[Any]:
        """Tokens currently queued on ``node``, oldest first."""
        return list(self._waiters.get(node, []))

    def pop_waiter(self, node: str) -> Any:
        """Remove and return the oldest waiter of ``node``; empty raises."""
        queue = self._waiters.get(node)
        if not queue:
            raise CalendarError(f"no waiters queued for node {node!r}")
        return queue.pop(0)

    def active_bookings(self, at: Optional[float] = None) -> List[Booking]:
        """Bookings in effect at a point in time (default: now)."""
        moment = self.now() if at is None else at
        return [
            booking
            for entries in self._bookings.values()
            for booking in entries
            if booking.start <= moment < booking.end
        ]

    def describe(self) -> dict:
        """All bookings, grouped by node (for `pos calendar` CLI output)."""
        return {
            node: [booking.describe() for booking in self.bookings_for_node(node)]
            for node in sorted(self._bookings)
            if self._bookings[node]
        }
