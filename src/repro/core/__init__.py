"""Core pos methodology: variables, calendar, allocation, scripts,
tools, experiments, controller, and result collection."""

from repro.core.allocation import Allocation, Allocator
from repro.core.calendar import Booking, Calendar
from repro.core.controller import Controller, ExperimentHandle, RunRecord
from repro.core.expdir import (
    load_experiment_dir,
    load_script_file,
    write_experiment_dir,
)
from repro.core.experiment import Experiment, Role
from repro.core.results import ExperimentDir, ResultStore, RunDir
from repro.core.scripts import (
    CommandScript,
    PythonScript,
    Script,
    ScriptContext,
    ScriptResult,
)
from repro.core.tools import PosTools, SharedStore
from repro.core.variables import Variables, expand_loop_variables, substitute

__all__ = [
    "Allocation",
    "Allocator",
    "Booking",
    "Calendar",
    "Controller",
    "ExperimentHandle",
    "RunRecord",
    "Experiment",
    "Role",
    "load_experiment_dir",
    "load_script_file",
    "write_experiment_dir",
    "ExperimentDir",
    "ResultStore",
    "RunDir",
    "CommandScript",
    "PythonScript",
    "Script",
    "ScriptContext",
    "ScriptResult",
    "PosTools",
    "SharedStore",
    "Variables",
    "expand_loop_variables",
    "substitute",
]
