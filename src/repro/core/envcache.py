"""Once-per-world resolution of environment kill switches.

Several planes expose an environment kill switch (``POS_NETSIM_BATCH``,
``POS_TELEMETRY``, ``POS_HEALTH``, ``POS_RUN_CACHE``, ...).  Their
original implementations consulted ``os.environ`` on every call, which
puts a dictionary lookup and a string compare on per-run hot paths —
once per measurement job in the fast path, once per run in the
telemetry and health planes.  An :class:`EnvSwitch` resolves the
variable once and caches the boolean; the call syntax is unchanged
(instances are callable), so ``enabled()`` reads exactly as before.

The kill switches keep working because every context that may legally
change the environment re-arms the cache:

* :func:`refresh_all` is called when a worker world is built (workers
  inherit the parent's environment at fork/spawn time; re-reading it
  once per world is the contract the name promises);
* the test suite re-arms all switches around every test (autouse
  fixture in ``tests/conftest.py``), so ``monkeypatch.setenv`` behaves
  as if the switches were uncached;
* code that mutates ``os.environ`` mid-process (benchmarks pitting the
  two paths against each other) calls :meth:`EnvSwitch.refresh`
  explicitly.
"""

from __future__ import annotations

import os
from typing import List

__all__ = ["EnvSwitch", "refresh_all"]

_UNSET = object()


class EnvSwitch:
    """A cached boolean environment switch.

    ``mode="nonzero"`` (the default) is on unless the variable equals
    ``"0"`` — the shape of every kill switch.  ``mode="one"`` is on
    only when the variable equals ``"1"`` — the shape of opt-in flags
    like ``POS_TELEMETRY_WALLCLOCK``.
    """

    _registry: List["EnvSwitch"] = []

    def __init__(self, var: str, default: str = "1", mode: str = "nonzero"):
        if mode not in ("nonzero", "one"):
            raise ValueError(f"unknown EnvSwitch mode {mode!r}")
        self.var = var
        self.default = default
        self.mode = mode
        self._value = _UNSET
        EnvSwitch._registry.append(self)

    def __call__(self) -> bool:
        value = self._value
        if value is _UNSET:
            raw = os.environ.get(self.var, self.default)
            value = (raw == "1") if self.mode == "one" else (raw != "0")
            self._value = value
        return value

    def refresh(self) -> None:
        """Forget the cached value; the next call re-reads the environment."""
        self._value = _UNSET

    @classmethod
    def refresh_all(cls) -> None:
        for switch in cls._registry:
            switch.refresh()


def refresh_all() -> None:
    """Re-arm every registered switch (new world, changed environment)."""
    EnvSwitch.refresh_all()
