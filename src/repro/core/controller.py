"""The pos testbed controller.

Implements the experimental workflow of Fig. 2: the controller
allocates the desired devices through the calendar, configures
variables and live images, reboots the hosts out of band, deploys the
utility tools, executes the setup scripts (synchronized with a
barrier), queues one measurement run after another over the loop-
variable cross product, and collects every artifact centrally.

Error handling follows R3: a failing host can be recovered by a
power cycle back into the well-defined live-image state.  Three
policies are available per experiment run: ``abort`` (default, raise),
``continue`` (record the failure and move on to the next run) and
``recover`` (power-cycle the failed node, replay its setup script and
retry the run once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.allocation import Allocation, Allocator
from repro.core.errors import (
    ExperimentError,
    PosError,
    ScriptError,
    TransportError,
)
from repro.core.experiment import Experiment, Role
from repro.core.results import ExperimentDir, ResultStore, RunDir
from repro.core.scripts import Script, ScriptContext, ScriptResult
from repro.core.tools import PosTools, SharedStore
from repro.testbed.images import ImageRegistry
from repro.testbed.node import Node

__all__ = ["RunRecord", "ExperimentHandle", "Controller", "POS_TOOLS_PATH"]

#: Where the deployed utility-tool stub lives on every experiment host.
POS_TOOLS_PATH = "/usr/local/bin/pos"

_POS_TOOLS_STUB = (
    "#!/bin/sh\n"
    "# pos utility tools: variable access, barriers, command capture.\n"
    "# Deployed automatically by the testbed controller after boot.\n"
)


class _WorkflowLog:
    """Sequential workflow trace, written as ``controller.log``.

    Part of the enforced artifact collection: a reader of the published
    results can retrace every phase and run without the controller.
    Events carry a sequence number rather than wall-clock time so the
    artifact stays deterministic.
    """

    def __init__(self, experiment_path: str):
        import os

        self._handle = open(
            os.path.join(experiment_path, "controller.log"), "w",
            encoding="utf-8",
        )
        self._sequence = 0

    def event(self, message: str) -> None:
        self._sequence += 1
        self._handle.write(f"[{self._sequence:04d}] {message}\n")

    def close(self) -> None:
        self._handle.close()


@dataclass
class RunRecord:
    """Bookkeeping for one measurement run."""

    index: int
    loop_instance: Dict[str, Any]
    ok: bool
    retried: bool = False
    error: Optional[str] = None
    script_results: List[ScriptResult] = field(default_factory=list)


@dataclass
class ExperimentHandle:
    """What a finished (or aborted) experiment run returns."""

    experiment: str
    user: str
    result_path: str
    runs: List[RunRecord] = field(default_factory=list)
    setup_results: List[ScriptResult] = field(default_factory=list)
    aborted: bool = False

    @property
    def completed_runs(self) -> int:
        return sum(1 for record in self.runs if record.ok)

    @property
    def failed_runs(self) -> int:
        return sum(1 for record in self.runs if not record.ok)


class Controller:
    """Testbed controller orchestrating the full experimental workflow."""

    def __init__(
        self,
        allocator: Allocator,
        images: ImageRegistry,
        results: ResultStore,
        inventory_extra: Optional[Callable[[], dict]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        self._allocator = allocator
        self._images = images
        self._results = results
        self._inventory_extra = inventory_extra
        self._progress = progress

    # -- public API ----------------------------------------------------------

    def run(
        self,
        experiment: Experiment,
        user: str = "user",
        on_error: str = "abort",
        max_runs: Optional[int] = None,
        setup_context_extra: Optional[dict] = None,
        on_run_complete: Optional[Callable[[RunRecord, str], None]] = None,
    ) -> ExperimentHandle:
        """Execute the whole experimental workflow for ``experiment``.

        ``setup_context_extra`` entries are attached to every script
        context (the simulated :class:`TestbedSetup` travels this way).

        ``on_run_complete(record, run_dir_path)`` implements the paper's
        asynchronous evaluation: "the evaluation script processes the
        result files either after all runs have been completed or
        asynchronously during their runtime" — the callback fires after
        each measurement run with that run's result folder.
        """
        if on_error not in ("abort", "continue", "recover"):
            raise ExperimentError(f"unknown error policy {on_error!r}")
        experiment.validate()

        # ---- setup phase: allocate, configure, boot -------------------------
        allocation = self._allocator.allocate(
            user, experiment.node_names, experiment.duration_s
        )
        exp_dir = self._results.create_experiment_dir(user, experiment.name)
        handle = ExperimentHandle(
            experiment=experiment.name, user=user, result_path=exp_dir.path
        )
        store = SharedStore()
        extra = dict(setup_context_extra or {})
        log = _WorkflowLog(exp_dir.path)
        log.event(f"allocated nodes: {', '.join(experiment.node_names)}")
        try:
            self._boot_phase(experiment, allocation)
            log.event("setup phase: all nodes live-booted")
            self._deploy_tools(experiment, allocation)
            log.event("utility tools deployed")
            handle.setup_results = self._setup_phase(
                experiment, allocation, store, exp_dir, extra
            )
            store.check_barriers(set(experiment.role_names))
            store.reset_barriers()
            log.event("setup scripts completed; barrier passed")
            self._measurement_phase(
                experiment, allocation, store, exp_dir, handle, extra,
                on_error=on_error, max_runs=max_runs,
                on_run_complete=on_run_complete, log=log,
            )
            log.event(
                f"measurement phase done: {handle.completed_runs} ok, "
                f"{handle.failed_runs} failed"
            )
            self._finalize(experiment, allocation, exp_dir, handle)
        except PosError as exc:
            handle.aborted = True
            log.event(f"ABORTED: {exc}")
            self._finalize(experiment, allocation, exp_dir, handle)
            raise
        finally:
            log.event("nodes released")
            log.close()
            self._allocator.release(allocation)

        # ---- evaluation phase -------------------------------------------------
        if experiment.evaluation is not None:
            experiment.evaluation(exp_dir.path)
        return handle

    # -- workflow phases ---------------------------------------------------------

    def _boot_phase(self, experiment: Experiment, allocation: Allocation) -> None:
        """Pin images and boot parameters, then reset every node."""
        for role in experiment.roles:
            node = allocation.node(role.node)
            image_name, image_version = role.image
            node.set_image(self._images.resolve(image_name, image_version))
            node.set_boot_parameters(role.boot_parameters)
        # Booting happens in a second pass so a resolution error in any
        # role's image leaves no node rebooted.
        for role in experiment.roles:
            allocation.node(role.node).reset()

    def _deploy_tools(self, experiment: Experiment, allocation: Allocation) -> None:
        """Upload the utility-tool stub to every host that takes files."""
        for role in experiment.roles:
            node = allocation.node(role.node)
            try:
                node.put_file(POS_TOOLS_PATH, _POS_TOOLS_STUB)
            except TransportError:
                # Devices managed via SNMP-style transports have no
                # filesystem; the controller-side tools still work.
                pass

    def _setup_phase(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        extra: dict,
    ) -> List[ScriptResult]:
        results: List[ScriptResult] = []
        for role in experiment.roles:
            result = self._run_script(
                role.setup, experiment, role, allocation, store,
                phase="setup", loop_instance={}, run_index=None, extra=extra,
            )
            exp_dir.record_setup_script(result)
            results.append(result)
            if not result.ok:
                raise ScriptError(
                    f"setup of role {role.name!r} failed: {result.error}"
                )
        return results

    def _measurement_phase(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        handle: ExperimentHandle,
        extra: dict,
        on_error: str,
        max_runs: Optional[int],
        on_run_complete: Optional[Callable[[RunRecord, str], None]] = None,
        log: Optional["_WorkflowLog"] = None,
    ) -> None:
        runs = experiment.variables.runs()
        if max_runs is not None:
            runs = runs[:max_runs]
        total = len(runs)
        if log is not None:
            log.event(
                f"measurement phase: {total} runs queued "
                f"(cross product of loop variables)"
            )
        for index, loop_instance in enumerate(runs):
            record = self._execute_run(
                experiment, allocation, store, exp_dir, extra, index, loop_instance
            )
            if not record.ok and on_error == "recover" and not record.retried:
                self._recover_nodes(experiment, allocation, store, exp_dir, extra)
                retry = self._execute_run(
                    experiment, allocation, store, exp_dir, extra, index,
                    loop_instance,
                )
                retry.retried = True
                record = retry
            handle.runs.append(record)
            if log is not None:
                status = "ok" if record.ok else f"FAILED ({record.error})"
                log.event(f"run {index}: {loop_instance} -> {status}")
            if on_run_complete is not None:
                run_path = exp_dir.run_dirs[-1].path
                on_run_complete(record, run_path)
            if self._progress is not None:
                self._progress(index + 1, total)
            if not record.ok and on_error == "abort":
                raise ScriptError(
                    f"measurement run {index} failed: {record.error}"
                )

    def _execute_run(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        extra: dict,
        index: int,
        loop_instance: Dict[str, Any],
    ) -> RunRecord:
        run_dir = exp_dir.create_run_dir(index)
        run_dir.write_metadata(loop_instance)
        record = RunRecord(index=index, loop_instance=dict(loop_instance), ok=True)
        for role in experiment.roles:
            try:
                result = self._run_script(
                    role.measurement, experiment, role, allocation, store,
                    phase="measurement", loop_instance=loop_instance,
                    run_index=index, extra=extra,
                )
            except (ScriptError, TransportError) as exc:
                record.ok = False
                record.error = str(exc)
                failure = ScriptResult(
                    script=role.measurement.name,
                    role=role.name,
                    phase="measurement",
                    ok=False,
                    error=str(exc),
                )
                run_dir.record_script(failure)
                record.script_results.append(failure)
                break
            run_dir.record_script(result)
            record.script_results.append(result)
        if record.ok:
            try:
                store.check_barriers(set(experiment.role_names))
            except PosError as exc:
                record.ok = False
                record.error = str(exc)
        store.reset_barriers()
        return record

    def _recover_nodes(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        extra: dict,
    ) -> None:
        """R3 in action: power-cycle every node back into the clean state
        and replay the setup scripts before retrying the failed run."""
        for role in experiment.roles:
            allocation.node(role.node).reset()
        self._deploy_tools(experiment, allocation)
        for role in experiment.roles:
            result = self._run_script(
                role.setup, experiment, role, allocation, store,
                phase="setup", loop_instance={}, run_index=None, extra=extra,
            )
            if not result.ok:
                raise ScriptError(
                    f"recovery setup of role {role.name!r} failed: {result.error}"
                )
        store.reset_barriers()

    def _run_script(
        self,
        script: Script,
        experiment: Experiment,
        role: Role,
        allocation: Allocation,
        store: SharedStore,
        phase: str,
        loop_instance: Dict[str, Any],
        run_index: Optional[int],
        extra: dict,
    ) -> ScriptResult:
        node = allocation.node(role.node)
        tools = PosTools(store, node, role.name)
        ctx = ScriptContext(
            node=node,
            role=role.name,
            phase=phase,
            variables=experiment.variables.for_host(role.name, loop_instance),
            tools=tools,
            setup=extra.get("setup"),
            run_index=run_index,
            loop_instance=dict(loop_instance),
        )
        try:
            return script.run(ctx)
        except ScriptError as exc:
            result = ScriptResult(
                script=script.name,
                role=role.name,
                phase=phase,
                ok=False,
                commands=list(tools.command_log),
                uploads=list(tools.uploads),
                log_lines=list(tools.log_lines),
                error=str(exc),
            )
            if phase == "setup":
                return result
            raise

    def _finalize(
        self,
        experiment: Experiment,
        allocation: Allocation,
        exp_dir: ExperimentDir,
        handle: ExperimentHandle,
    ) -> None:
        """Write the experiment-level artifact record."""
        metadata = experiment.describe()
        metadata["user"] = handle.user
        metadata["aborted"] = handle.aborted
        metadata["runs_completed"] = handle.completed_runs
        metadata["runs_failed"] = handle.failed_runs
        exp_dir.write_metadata(metadata)
        exp_dir.write_variables(experiment.variables.describe())
        inventory: Dict[str, Any] = {
            "nodes": {
                name: node.describe() for name, node in allocation.nodes.items()
            }
        }
        if self._inventory_extra is not None:
            inventory.update(self._inventory_extra())
        exp_dir.write_inventory(inventory)
        exp_dir.write_scripts(
            [role.describe() for role in experiment.roles]
        )
