"""The pos testbed controller.

Implements the experimental workflow of Fig. 2: the controller
allocates the desired devices through the calendar, configures
variables and live images, reboots the hosts out of band, deploys the
utility tools, executes the setup scripts (synchronized with a
barrier), queues one measurement run after another over the loop-
variable cross product, and collects every artifact centrally.

Error handling follows R3: a failing host can be recovered by a
power cycle back into the well-defined live-image state.  Three
policies are available per experiment run: ``abort`` (default, raise),
``continue`` (record the failure, probe the hosts, power-cycle a
wedged one, and move on to the next run) and ``recover`` (power-cycle
the failed node, replay its setup script and retry the run once).

Resilience plumbing on top of the policies:

* every finished run is journalled durably (``journal.jsonl``), and
  :meth:`Controller.resume` continues a killed experiment from the
  last good run without re-executing completed loop instances;
* under ``continue`` a node health watchdog probes the hosts after
  every failed run and recovers wedged ones out of band; a node that
  stays wedged for ``quarantine_threshold`` consecutive probes is
  quarantined and its remaining runs are marked skipped instead of
  poisoning the whole cross product;
* recovery itself runs under the unified
  :class:`~repro.faults.retry.RetryPolicy`;
* a :class:`~repro.faults.injector.FaultInjector` can be attached so a
  seeded fault plan strikes by run index.

The measurement loop can also run *in parallel*: ``run(jobs=N)`` (or
``POS_JOBS=N``) shards the cross product over worker processes that
each own a fully isolated testbed world (see
:mod:`repro.core.scheduler`), while the parent merges results into the
canonical artifact tree in deterministic cross-product order — the
artifacts of a parallel execution are byte-identical to a sequential
one.  The workflow primitives themselves (boot, tool deployment, setup,
run execution, recovery) live in :mod:`repro.core.scheduler` and are
shared between this controller and the workers, so the two paths cannot
drift apart.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import scheduler as _scheduler
from repro.core.allocation import Allocation, Allocator
from repro.core.errors import (
    ExperimentError,
    NodeError,
    PosError,
    ScriptError,
    TransportError,
)
from repro.core.experiment import Experiment, Role
from repro.core.journal import RunJournal
from repro.core.results import ExperimentDir, ResultStore

from repro.core.scheduler import (
    POS_TOOLS_PATH,
    ParallelScheduler,
    RunRecord,
    WorkerEnv,
    resolve_jobs,
)
from repro.core.scripts import Script, ScriptResult
from repro.core.tools import SharedStore
from repro.faults.clock import Clock, SimClock
from repro.faults.retry import RetryPolicy
from repro.telemetry.plane import ExperimentTelemetry
from repro.testbed.images import ImageRegistry

__all__ = ["RunRecord", "ExperimentHandle", "Controller", "POS_TOOLS_PATH"]

#: How the controller retries its own recovery procedure before giving
#: up on a wedged node.
DEFAULT_RECOVERY_POLICY = RetryPolicy(
    max_attempts=2, base_delay_s=1.0, multiplier=2.0, max_delay_s=30.0
)


@dataclass
class ExperimentHandle:
    """What a finished (or aborted) experiment run returns."""

    experiment: str
    user: str
    result_path: str
    runs: List[RunRecord] = field(default_factory=list)
    setup_results: List[ScriptResult] = field(default_factory=list)
    aborted: bool = False
    quarantined: Dict[str, str] = field(default_factory=dict)

    @property
    def completed_runs(self) -> int:
        return sum(1 for record in self.runs if record.ok)

    @property
    def failed_runs(self) -> int:
        return sum(1 for record in self.runs if not record.ok)

    @property
    def skipped_runs(self) -> int:
        return sum(1 for record in self.runs if record.skipped)

    @property
    def resumed_runs(self) -> int:
        return sum(1 for record in self.runs if record.resumed)


class Controller:
    """Testbed controller orchestrating the full experimental workflow."""

    def __init__(
        self,
        allocator: Allocator,
        images: ImageRegistry,
        results: ResultStore,
        inventory_extra: Optional[Callable[[], dict]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        fault_injector=None,
        recovery_policy: Optional[RetryPolicy] = None,
        quarantine_threshold: int = 3,
        clock: Optional[Clock] = None,
        run_cache=None,
        provenance: Optional[dict] = None,
    ):
        self._allocator = allocator
        self._images = images
        self._results = results
        self._inventory_extra = inventory_extra
        #: Reproducibility fingerprint (code epoch, platform, seed, …)
        #: recorded verbatim in ``telemetry.json`` so ``pos diff`` can
        #: attribute result deltas between two executions to an input
        #: change.  Must be a pure function of the experiment's inputs.
        self.provenance = dict(provenance) if provenance else None
        self._progress = progress
        self.fault_injector = fault_injector
        #: Optional :class:`repro.cache.RunCache`.  Consulted before the
        #: measurement phase dispatches each run — sequentially, under
        #: --jobs and under --agents alike — and fed with fresh eligible
        #: outcomes.  Never active alongside a fault injector: injected
        #: faults make outcomes a function of the plan, not the run.
        self.run_cache = run_cache
        self.recovery_policy = recovery_policy or DEFAULT_RECOVERY_POLICY
        if quarantine_threshold < 1:
            raise ExperimentError("quarantine_threshold must be at least 1")
        self.quarantine_threshold = quarantine_threshold
        self.clock = clock or SimClock()

    # -- public API ----------------------------------------------------------

    def run(
        self,
        experiment: Experiment,
        user: str = "user",
        on_error: str = "abort",
        max_runs: Optional[int] = None,
        setup_context_extra: Optional[dict] = None,
        on_run_complete: Optional[Callable[[RunRecord, str], None]] = None,
        jobs: Optional[int] = None,
        worker_env: Optional[WorkerEnv] = None,
        agents: Optional[int] = None,
        transport: str = "loopback",
        dist_fault_plan=None,
    ) -> ExperimentHandle:
        """Execute the whole experimental workflow for ``experiment``.

        ``setup_context_extra`` entries are attached to every script
        context (the simulated :class:`TestbedSetup` travels this way).

        ``on_run_complete(record, run_dir_path)`` implements the paper's
        asynchronous evaluation: "the evaluation script processes the
        result files either after all runs have been completed or
        asynchronously during their runtime" — the callback fires after
        each measurement run with that run's result folder.

        ``jobs`` (default: the ``POS_JOBS`` environment variable, else 1)
        shards the measurement cross product over that many worker
        processes; ``worker_env`` must then supply the recipe for
        building each worker's isolated testbed world.  Artifacts are
        byte-identical for any job count.

        ``agents`` (default: the ``POS_AGENTS`` environment variable,
        else 0 = off) instead fans the measurement phase out to that
        many node-agent daemons over a message ``transport``
        (``loopback`` in-process, ``pipe`` subprocess), with heartbeat
        leases, crash re-dispatch and journal-backed dedupe — see
        :mod:`repro.dist`.  ``dist_fault_plan`` is a seeded chaos plan
        striking only that plane (agent kills, dropped/duplicated/
        delayed messages); unlike ``fault_injector`` it never touches
        the in-world management plane and leaves no trace in the
        deterministic artifacts.  Artifacts are byte-identical for any
        agent count, placement, and crash schedule.
        """
        self._check_policy(on_error)
        jobs, agents = self._check_execution_plane(
            jobs, worker_env, on_error, agents, transport, dist_fault_plan,
        )
        experiment.validate()
        exp_dir = self._results.create_experiment_dir(user, experiment.name)
        total = self._total_runs(experiment, max_runs)
        journal = RunJournal.create(exp_dir.path, experiment.name, total)
        return self._run_workflow(
            experiment, exp_dir, journal, completed={}, user=user,
            on_error=on_error, max_runs=max_runs,
            setup_context_extra=setup_context_extra,
            on_run_complete=on_run_complete, resumed=False,
            jobs=jobs, worker_env=worker_env,
            agents=agents, transport=transport,
            dist_fault_plan=dist_fault_plan,
        )

    def resume(
        self,
        experiment: Experiment,
        result_path: str,
        user: str = "user",
        on_error: str = "abort",
        max_runs: Optional[int] = None,
        setup_context_extra: Optional[dict] = None,
        on_run_complete: Optional[Callable[[RunRecord, str], None]] = None,
        jobs: Optional[int] = None,
        worker_env: Optional[WorkerEnv] = None,
        agents: Optional[int] = None,
        transport: str = "loopback",
        dist_fault_plan=None,
    ) -> ExperimentHandle:
        """Continue a killed or aborted experiment from its journal.

        The hosts are re-initialized (boot, tools, setup — a crashed
        controller leaves no trustworthy in-band state), then the
        measurement loop replays the cross product, *skipping* every
        loop instance the journal records as completed.  Adopted run
        folders are left untouched; re-executed runs land in
        attempt-suffixed folders so nothing is overwritten.  ``jobs``
        and ``agents`` parallelize the remaining runs exactly as in
        :meth:`run` — a sequential sweep may be resumed distributed and
        vice versa, with zero completed runs re-executed.
        """
        self._check_policy(on_error)
        jobs, agents = self._check_execution_plane(
            jobs, worker_env, on_error, agents, transport, dist_fault_plan,
        )
        experiment.validate()
        journal = RunJournal.open(result_path)
        try:
            journal.validate_against(
                experiment.name, self._total_runs(experiment, max_runs)
            )
            completed = journal.completed()
        except PosError:
            journal.close()
            raise
        exp_dir = ExperimentDir(result_path)
        return self._run_workflow(
            experiment, exp_dir, journal, completed=completed, user=user,
            on_error=on_error, max_runs=max_runs,
            setup_context_extra=setup_context_extra,
            on_run_complete=on_run_complete, resumed=True,
            jobs=jobs, worker_env=worker_env,
            agents=agents, transport=transport,
            dist_fault_plan=dist_fault_plan,
        )

    # -- workflow ---------------------------------------------------------------

    @staticmethod
    def _check_policy(on_error: str) -> None:
        if on_error not in ("abort", "continue", "recover"):
            raise ExperimentError(f"unknown error policy {on_error!r}")

    def _check_parallel(
        self, jobs: Optional[int], worker_env: Optional[WorkerEnv],
        on_error: str,
    ) -> int:
        """Validate the parallel-execution request; return the job count."""
        jobs = resolve_jobs(jobs)
        if jobs == 1:
            return jobs
        if worker_env is None:
            raise ExperimentError(
                "parallel execution (jobs > 1) needs a worker_env recipe "
                "for building isolated per-worker testbed worlds"
            )
        if on_error == "continue":
            raise ExperimentError(
                "parallel execution supports on_error='abort' or 'recover'; "
                "the 'continue' policy couples runs through shared "
                "watchdog/quarantine state and cannot be sharded"
            )
        if self.fault_injector is not None:
            _scheduler.validate_parallel_fault_plan(self.fault_injector.plan)
        return jobs

    def _check_execution_plane(
        self,
        jobs: Optional[int],
        worker_env: Optional[WorkerEnv],
        on_error: str,
        agents: Optional[int],
        transport: str,
        dist_fault_plan,
    ) -> tuple:
        """Validate how the measurement phase executes: sequential,
        process pool (``jobs``), or distributed agents (``agents``).
        Returns the resolved ``(jobs, agents)`` pair."""
        from repro.dist import resolve_agents, validate_dist_fault_plan

        agents = resolve_agents(agents)
        jobs = self._check_parallel(jobs, worker_env, on_error)
        if agents == 0:
            if dist_fault_plan is not None:
                raise ExperimentError(
                    "a dist fault plan needs the distributed plane; "
                    "pass agents >= 1 (or --agents N)"
                )
            return jobs, agents
        if jobs > 1:
            raise ExperimentError(
                "jobs and agents are mutually exclusive ways to "
                "parallelize the measurement phase; pick one"
            )
        if worker_env is None:
            raise ExperimentError(
                "distributed execution (agents >= 1) needs a worker_env "
                "recipe for building isolated per-agent testbed worlds"
            )
        if on_error == "continue":
            raise ExperimentError(
                "distributed execution supports on_error='abort' or "
                "'recover'; the 'continue' policy couples runs through "
                "shared watchdog/quarantine state and cannot be sharded"
            )
        if self.fault_injector is not None:
            _scheduler.validate_parallel_fault_plan(self.fault_injector.plan)
        validate_dist_fault_plan(dist_fault_plan)
        if transport not in ("loopback", "pipe"):
            raise ExperimentError(
                f"unknown dist transport {transport!r} "
                f"(known: loopback, pipe)"
            )
        return jobs, agents

    @staticmethod
    def _total_runs(experiment: Experiment, max_runs: Optional[int]) -> int:
        count = len(experiment.variables.runs())
        return count if max_runs is None else min(count, max_runs)

    def _run_workflow(
        self,
        experiment: Experiment,
        exp_dir: ExperimentDir,
        journal: RunJournal,
        completed: Dict[int, dict],
        user: str,
        on_error: str,
        max_runs: Optional[int],
        setup_context_extra: Optional[dict],
        on_run_complete: Optional[Callable[[RunRecord, str], None]],
        resumed: bool,
        jobs: int = 1,
        worker_env: Optional[WorkerEnv] = None,
        agents: int = 0,
        transport: str = "loopback",
        dist_fault_plan=None,
    ) -> ExperimentHandle:
        # ---- setup phase: allocate, configure, boot -------------------------
        allocation = self._allocator.allocate(
            user, experiment.node_names, experiment.duration_s
        )
        handle = ExperimentHandle(
            experiment=experiment.name, user=user, result_path=exp_dir.path
        )
        store = SharedStore()
        extra = dict(setup_context_extra or {})
        total = self._total_runs(experiment, max_runs)
        log = ExperimentTelemetry(exp_dir.path, resumed=resumed)
        if resumed:
            # Resume markers stay in the legacy log and the journal only;
            # trace.jsonl is rewritten as a pure function of the run set,
            # so it must not know whether the execution was resumed.
            log.event(
                f"RESUME: journal lists {len(completed)} completed run(s)"
            )
        log.event(f"allocated nodes: {', '.join(experiment.node_names)}")
        exp_span = log.begin_span(
            "experiment", experiment=experiment.name, user=user, runs=total,
        )
        # The stitched fleet trace spans the whole execution; its id is
        # a pure function of the experiment identity so a resumed
        # execution stitches into the same causal DAG.
        log.fleet_begin(experiment.name, total)
        try:
            with log.span("phase.setup"):
                with log.span("boot"):
                    self._boot_phase(experiment, allocation)
                log.event("setup phase: all nodes live-booted")
                with log.span("tools"):
                    self._deploy_tools(experiment, allocation)
                log.event("utility tools deployed")
                with log.span("scripts.setup"):
                    handle.setup_results = self._setup_phase(
                        experiment, allocation, store, exp_dir, extra
                    )
                store.check_barriers(set(experiment.role_names))
                store.reset_barriers()
                log.event("setup scripts completed; barrier passed")
            log.flush(fsync=True)
            measurement_span = log.begin_span("phase.measurement")
            self._measurement_phase(
                experiment, allocation, store, exp_dir, handle, extra,
                on_error=on_error, max_runs=max_runs,
                on_run_complete=on_run_complete, log=log,
                journal=journal, completed=completed,
                jobs=jobs, worker_env=worker_env,
                agents=agents, transport=transport,
                dist_fault_plan=dist_fault_plan,
            )
            log.finish_span(measurement_span)
            log.flush(fsync=True)
            log.event(
                f"measurement phase done: {handle.completed_runs} ok, "
                f"{handle.failed_runs} failed"
            )
            with log.span("phase.finalize"):
                self._finalize(experiment, allocation, exp_dir, handle)
            journal.record_event("complete", ok=handle.failed_runs == 0)
            log.finish_span(exp_span)
            log.finalize(
                experiment.name,
                runs={
                    "total": total,
                    "completed": handle.completed_runs,
                    "failed": handle.failed_runs,
                    "skipped": handle.skipped_runs,
                },
                journal_entries=len(journal.entries),
                provenance=self.provenance,
            )
        except PosError as exc:
            handle.aborted = True
            log.event(f"ABORTED: {exc}")
            self._finalize(experiment, allocation, exp_dir, handle)
            log.finalize(
                experiment.name,
                runs={
                    "total": total,
                    "completed": handle.completed_runs,
                    "failed": handle.failed_runs,
                    "skipped": handle.skipped_runs,
                },
                journal_entries=len(journal.entries),
                provenance=self.provenance,
            )
            raise
        finally:
            log.event("nodes released")
            log.close()
            journal.close()
            allocation.release()

        # ---- evaluation phase -------------------------------------------------
        if experiment.evaluation is not None:
            experiment.evaluation(exp_dir.path)
        return handle

    # -- workflow phases ---------------------------------------------------------

    def _boot_phase(self, experiment: Experiment, allocation: Allocation) -> None:
        """Pin images and boot parameters, then reset every node."""
        _scheduler.boot_nodes(experiment, allocation.node, self._images)

    def _deploy_tools(self, experiment: Experiment, allocation: Allocation) -> None:
        """Upload the utility-tool stub to every host that takes files."""
        _scheduler.deploy_tools(experiment, allocation.node)

    def _setup_phase(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        extra: dict,
    ) -> List[ScriptResult]:
        return _scheduler.run_setup_phase(
            experiment, allocation.node, store, extra,
            record=exp_dir.record_setup_script,
        )

    def _measurement_phase(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        handle: ExperimentHandle,
        extra: dict,
        on_error: str,
        max_runs: Optional[int],
        on_run_complete: Optional[Callable[[RunRecord, str], None]] = None,
        log: Optional[ExperimentTelemetry] = None,
        journal: Optional[RunJournal] = None,
        completed: Optional[Dict[int, dict]] = None,
        jobs: int = 1,
        worker_env: Optional[WorkerEnv] = None,
        agents: int = 0,
        transport: str = "loopback",
        dist_fault_plan=None,
    ) -> None:
        runs = experiment.variables.runs()
        if max_runs is not None:
            runs = runs[:max_runs]
        total = len(runs)
        completed = completed or {}
        health: Dict[str, int] = {}
        injector = self.fault_injector
        cache, cache_keys, cached = self._cache_plan(
            experiment, runs, completed, log
        )
        if log is not None:
            # Deliberately job-count-agnostic: the artifact tree of a
            # parallel execution is byte-identical to a sequential one.
            log.event(
                f"measurement phase: {total} runs queued "
                f"(cross product of loop variables)"
            )
        if agents > 0:
            from repro.dist import DistScheduler

            DistScheduler(
                agents, worker_env, self.recovery_policy,
                transport=transport, fault_plan=dist_fault_plan,
                quarantine_threshold=self.quarantine_threshold,
            ).execute(
                experiment, runs, completed, exp_dir, journal, handle, log,
                injector, on_error, on_run_complete=on_run_complete,
                progress=self._progress, adopt=self._adopt_completed_run,
                cached=cached, cache=cache, cache_keys=cache_keys,
            )
            return
        if jobs > 1:
            ParallelScheduler(jobs, worker_env, self.recovery_policy).execute(
                experiment, runs, completed, exp_dir, journal, handle, log,
                injector, on_error, on_run_complete=on_run_complete,
                progress=self._progress, adopt=self._adopt_completed_run,
                cached=cached, cache=cache, cache_keys=cache_keys,
            )
            return
        isolation = getattr(extra.get("setup"), "begin_run", None)
        for index, loop_instance in enumerate(runs):
            # -- resume: adopt journalled runs without re-executing ---------
            if index in completed:
                record = self._adopt_completed_run(
                    exp_dir, index, loop_instance, completed[index]
                )
                handle.runs.append(record)
                if log is not None:
                    if completed[index].get("dir"):
                        log.adopt_run(
                            index,
                            os.path.join(exp_dir.path, completed[index]["dir"]),
                        )
                    log.event(
                        f"run {index}: {loop_instance} -> ok (adopted from journal)"
                    )
                if self._progress is not None:
                    self._progress(index + 1, total)
                continue
            # -- quarantine: degrade gracefully, do not poison the rest -----
            blocked = sorted(
                {role.node for role in experiment.roles
                 if role.node in handle.quarantined}
            )
            if blocked:
                record = RunRecord(
                    index=index, loop_instance=dict(loop_instance), ok=False,
                    skipped=True,
                    error=f"node(s) quarantined: {', '.join(blocked)}",
                )
                handle.runs.append(record)
                if journal is not None:
                    journal.record_run(
                        index, loop_instance, ok=False, skipped=True,
                        error=record.error,
                    )
                if log is not None:
                    log.event(
                        f"run {index}: {loop_instance} -> SKIPPED ({record.error})"
                    )
                if self._progress is not None:
                    self._progress(index + 1, total)
                continue
            # -- execute (or replay the cached outcome) ---------------------
            outcome = cached.get(index)
            if outcome is None:
                outcome = _scheduler.execute_run(
                    experiment, allocation.node, store, extra, index,
                    loop_instance, on_error, self.recovery_policy, self.clock,
                    injector, isolation,
                )
                if cache is not None and index in cache_keys:
                    if cache.store(cache_keys[index], outcome) and log is not None:
                        log.cache_event(
                            "cache.store", run=index, key=cache_keys[index]
                        )
            record, run_dir = _scheduler.persist_outcome(exp_dir, outcome, log)
            handle.runs.append(record)
            if log is not None:
                # The run's telemetry snapshot must be durable before the
                # journal promises the run: an adopted run on resume
                # replays its spans and metrics from this file.
                log.merge_run(
                    index, outcome.telemetry, run_dir.path,
                    health=outcome.health,
                )
            if journal is not None:
                journal.record_run(
                    index, loop_instance, ok=record.ok,
                    retried=record.retried, error=record.error,
                    run_dir=os.path.basename(run_dir.path),
                )
            if log is not None:
                status = "ok" if record.ok else f"FAILED ({record.error})"
                log.event(f"run {index}: {loop_instance} -> {status}")
            if on_run_complete is not None:
                on_run_complete(record, run_dir.path)
            if self._progress is not None:
                self._progress(index + 1, total)
            if record.ok:
                # A good run means every node is demonstrably healthy:
                # probe-failure streaks are no longer consecutive.
                health.clear()
            else:
                if on_error == "abort":
                    raise ScriptError(
                        f"measurement run {index} failed: {record.error}"
                    )
                if on_error == "continue":
                    self._watchdog(
                        experiment, allocation, store, exp_dir, extra,
                        health, handle.quarantined, log,
                    )

    def _cache_plan(
        self,
        experiment: Experiment,
        runs: List[Dict[str, Any]],
        completed: Dict[int, dict],
        log: Optional[ExperimentTelemetry],
    ) -> tuple:
        """Consult the run cache for every pending run, up front.

        Returns ``(cache, cache_keys, cached)``: the active cache (or
        None), the fingerprint per pending index, and the hits — cached
        :class:`RunOutcome` payloads that replace execution and flow
        through the unchanged persistence pipeline, so a warm tree is
        byte-identical to a cold one by construction.  Probing happens
        here, before any scheduler dispatches, so the hit/miss evidence
        in ``cache.jsonl`` is identical for any job or agent count.

        A fault injector disables the cache outright: planned faults
        make outcomes a function of the plan, and even a run the plan
        spares must not be served stale from a plan-free execution.
        """
        cache = self.run_cache if self.fault_injector is None else None
        cache_keys: Dict[int, str] = {}
        cached: Dict[int, Any] = {}
        if cache is None:
            return None, cache_keys, cached
        if log is not None:
            # Corrupt-as-miss degradations inside lookup() leave a
            # cache.corrupt record next to the hit/miss evidence.
            cache.evidence = log.cache_event
        described = experiment.describe()
        for index, loop_instance in enumerate(runs):
            if index in completed:
                continue
            key = cache.key(described, index, loop_instance)
            cache_keys[index] = key
            outcome = cache.lookup(key)
            if outcome is not None:
                cached[index] = outcome
            if log is not None:
                log.cache_event(
                    "cache.hit" if outcome is not None else "cache.miss",
                    run=index, key=key,
                )
        return cache, cache_keys, cached

    @staticmethod
    def _adopt_completed_run(
        exp_dir: ExperimentDir,
        index: int,
        loop_instance: Dict[str, Any],
        entry: dict,
    ) -> RunRecord:
        journalled_loop = entry.get("loop", {})
        if journalled_loop != dict(loop_instance):
            raise ExperimentError(
                f"journal run {index} was {journalled_loop}, the experiment "
                f"defines {dict(loop_instance)} — refusing to resume"
            )
        exp_dir.adopt_run_dir(index, entry.get("dir"))
        return RunRecord(
            index=index, loop_instance=dict(loop_instance), ok=True,
            retried=bool(entry.get("retried", False)), resumed=True,
        )

    # -- recovery & health -------------------------------------------------------

    def _recover(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        extra: dict,
    ) -> None:
        """Run the recovery procedure under the controller's retry policy."""
        _scheduler.recover_with_policy(
            experiment, allocation.node, store, extra,
            self.recovery_policy, self.clock,
        )

    def _watchdog(
        self,
        experiment: Experiment,
        allocation: Allocation,
        store: SharedStore,
        exp_dir: ExperimentDir,
        extra: dict,
        health: Dict[str, int],
        quarantined: Dict[str, str],
        log: Optional[ExperimentTelemetry],
    ) -> None:
        """Probe the hosts after a failed run and recover wedged ones.

        A failed run under ``continue`` must not leave a wedged DuT to
        poison every subsequent run: each node is probed in band, and a
        node that does not answer is power-cycled back into the clean
        state (with a full setup replay, keeping the barrier semantics
        intact).  A node failing ``quarantine_threshold`` consecutive
        probes — or whose recovery fails outright — is quarantined.
        """
        node_names = list(dict.fromkeys(role.node for role in experiment.roles))
        wedged = [
            name for name in node_names
            if name not in quarantined and not allocation.node(name).probe()
        ]
        for name in node_names:
            if name in quarantined:
                continue
            health[name] = health.get(name, 0) + 1 if name in wedged else 0
        for name in wedged:
            if health[name] >= self.quarantine_threshold:
                quarantined[name] = (
                    f"failed {health[name]} consecutive health probes"
                )
                if log is not None:
                    log.event(
                        f"watchdog: QUARANTINED {name} ({quarantined[name]})"
                    )
        still_wedged = [name for name in wedged if name not in quarantined]
        if not still_wedged:
            return
        if log is not None:
            log.event(
                f"watchdog: wedged node(s) {', '.join(still_wedged)} — "
                f"power-cycling back into the live-image state"
            )
        try:
            self._recover(experiment, allocation, store, exp_dir, extra)
        except (NodeError, ScriptError, TransportError) as exc:
            for name in still_wedged:
                quarantined[name] = f"recovery failed: {exc}"
                if log is not None:
                    log.event(f"watchdog: QUARANTINED {name} (recovery failed)")

    def _run_script(
        self,
        script: Script,
        experiment: Experiment,
        role: Role,
        allocation: Allocation,
        store: SharedStore,
        phase: str,
        loop_instance: Dict[str, Any],
        run_index: Optional[int],
        extra: dict,
    ) -> ScriptResult:
        return _scheduler.run_role_script(
            script, experiment, role, allocation.node(role.node), store,
            phase, loop_instance, run_index, extra,
        )

    def _finalize(
        self,
        experiment: Experiment,
        allocation: Allocation,
        exp_dir: ExperimentDir,
        handle: ExperimentHandle,
    ) -> None:
        """Write the experiment-level artifact record."""
        metadata = experiment.describe()
        metadata["user"] = handle.user
        metadata["aborted"] = handle.aborted
        metadata["runs_completed"] = handle.completed_runs
        metadata["runs_failed"] = handle.failed_runs
        if handle.skipped_runs:
            metadata["runs_skipped"] = handle.skipped_runs
        if handle.quarantined:
            metadata["quarantined"] = dict(handle.quarantined)
        exp_dir.write_metadata(metadata)
        exp_dir.write_variables(experiment.variables.describe())
        inventory: Dict[str, Any] = {
            "nodes": {
                name: node.describe() for name, node in allocation.nodes.items()
            }
        }
        if self._inventory_extra is not None:
            inventory.update(self._inventory_extra())
        if self.fault_injector is not None:
            inventory["fault_injection"] = self.fault_injector.describe()
        exp_dir.write_inventory(inventory)
        exp_dir.write_scripts(
            [role.describe() for role in experiment.roles]
        )
