"""Node allocation against the booking calendar.

The setup phase "first allocates the desired devices … Only if the
calendar indicates that the devices are free for the planned duration
of the experiment, the allocation can be created."  Allocation is
all-or-nothing: if any requested node conflicts, nothing is booked and
no node changes state.

Campaigns split that into two steps: ``reserve`` books calendar time
for a future window without touching node state, and ``claim`` turns a
reservation into a live allocation when its window begins.  The classic
``allocate`` is reserve+claim in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Dict, Iterable, List, Optional

from repro.core.calendar import Booking, Calendar
from repro.core.errors import AllocationError, CalendarError
from repro.testbed.node import Node, NodeState

__all__ = ["Allocation", "Allocator", "Reservation"]


@dataclass
class Reservation:
    """Calendar bookings for a future allocation; no node state changed."""

    user: str
    node_names: List[str]
    bookings: List[Booking]
    claimed: bool = False
    cancelled: bool = False

    @property
    def start(self) -> float:
        return min(b.start for b in self.bookings)

    @property
    def end(self) -> float:
        return max(b.end for b in self.bookings)

    def describe(self) -> dict:
        return {
            "user": self.user,
            "nodes": sorted(self.node_names),
            "bookings": [booking.describe() for booking in self.bookings],
            "claimed": self.claimed,
            "cancelled": self.cancelled,
        }


@dataclass
class Allocation:
    """A live reservation of a set of nodes by one user."""

    user: str
    nodes: Dict[str, Node]
    bookings: List[Booking]
    released: bool = False
    _allocator: Optional["Allocator"] = field(default=None, repr=False, compare=False)

    def node(self, name: str) -> Node:
        if name not in self.nodes:
            raise AllocationError(
                f"node {name!r} is not part of this allocation "
                f"(has: {', '.join(sorted(self.nodes))})"
            )
        return self.nodes[name]

    def release(self) -> None:
        """Release this allocation through its allocator; idempotent."""
        if self._allocator is None:
            raise AllocationError(
                "allocation is not bound to an allocator; use Allocator.release"
            )
        self._allocator.release(self)

    def describe(self) -> dict:
        return {
            "user": self.user,
            "nodes": sorted(self.nodes),
            "bookings": [booking.describe() for booking in self.bookings],
            "released": self.released,
        }


class Allocator:
    """Hands out exclusive node allocations backed by the calendar."""

    def __init__(self, calendar: Calendar, nodes: Dict[str, Node]):
        self._calendar = calendar
        self._nodes = dict(nodes)

    @property
    def calendar(self) -> Calendar:
        """The booking calendar backing this allocator."""
        return self._calendar

    @property
    def nodes(self) -> Dict[str, Node]:
        """All nodes this allocator manages."""
        return dict(self._nodes)

    def free_nodes(self) -> List[str]:
        """Names of nodes currently in the free pool."""
        return sorted(
            name for name, node in self._nodes.items() if node.state is NodeState.FREE
        )

    def _validate_names(self, node_names: Iterable[str]) -> List[str]:
        names = list(node_names)
        if not names:
            raise AllocationError("an allocation needs at least one node")
        if len(set(names)) != len(names):
            raise AllocationError(f"duplicate nodes in allocation request: {names}")
        missing = [name for name in names if name not in self._nodes]
        if missing:
            raise AllocationError(f"unknown nodes: {', '.join(sorted(missing))}")
        return names

    def reserve(
        self,
        user: str,
        node_names: Iterable[str],
        duration: float,
        start: Optional[float] = None,
    ) -> Reservation:
        """Book calendar time on all named nodes, atomically.

        Unlike :meth:`allocate` this does not require the nodes to be
        FREE right now and changes no node state: the window may lie in
        the future, with the nodes still serving an earlier booking.
        """
        names = self._validate_names(node_names)
        bookings: List[Booking] = []
        try:
            for name in names:
                bookings.append(
                    self._calendar.book(name, user, duration, start=start)
                )
        except CalendarError as exc:
            # Roll back: all-or-nothing.
            for booking in bookings:
                self._calendar.cancel(booking)
            raise AllocationError(str(exc)) from exc
        return Reservation(user=user, node_names=names, bookings=bookings)

    def claim(self, reservation: Reservation) -> Allocation:
        """Turn a reservation into a live allocation of FREE nodes."""
        if reservation.claimed:
            raise AllocationError("reservation was already claimed")
        if reservation.cancelled:
            raise AllocationError("reservation was cancelled")
        busy = [
            name
            for name in reservation.node_names
            if self._nodes[name].state is not NodeState.FREE
        ]
        if busy:
            raise AllocationError(
                f"nodes already in use by another experiment: {', '.join(sorted(busy))}"
            )
        nodes: Dict[str, Node] = {}
        for name in reservation.node_names:
            node = self._nodes[name]
            node.mark_allocated(reservation.user)
            nodes[name] = node
        reservation.claimed = True
        return Allocation(
            user=reservation.user,
            nodes=nodes,
            bookings=reservation.bookings,
            _allocator=self,
        )

    def cancel_reservation(self, reservation: Reservation) -> None:
        """Drop an unclaimed reservation's bookings; idempotent."""
        if reservation.claimed:
            raise AllocationError("cannot cancel a claimed reservation")
        if reservation.cancelled:
            return
        reservation.cancelled = True
        for booking in reservation.bookings:
            try:
                self._calendar.cancel(booking)
            except CalendarError:
                pass

    def allocate(
        self,
        user: str,
        node_names: Iterable[str],
        duration: float,
        start: Optional[float] = None,
    ) -> Allocation:
        """Reserve all named nodes for ``duration`` seconds, atomically."""
        names = self._validate_names(node_names)
        busy = [
            name for name in names if self._nodes[name].state is not NodeState.FREE
        ]
        if busy:
            raise AllocationError(
                f"nodes already in use by another experiment: {', '.join(sorted(busy))}"
            )
        reservation = self.reserve(user, names, duration, start=start)
        try:
            return self.claim(reservation)
        except AllocationError:
            self.cancel_reservation(reservation)
            raise

    def release(self, allocation: Allocation) -> None:
        """Free every node of the allocation and cancel its bookings.

        Idempotent: the ``released`` flag is set *before* any node or
        calendar work, so re-entrant or repeated calls (including ones
        racing through ``Allocation.release``) do nothing and no node
        records a second SEL release event.
        """
        if allocation.released:
            return
        allocation.released = True
        for node in allocation.nodes.values():
            node.release()
        for booking in allocation.bookings:
            try:
                self._calendar.cancel(booking)
            except CalendarError:
                # Booking may have expired naturally; freeing nodes is
                # what matters.
                pass
