"""Node allocation against the booking calendar.

The setup phase "first allocates the desired devices … Only if the
calendar indicates that the devices are free for the planned duration
of the experiment, the allocation can be created."  Allocation is
all-or-nothing: if any requested node conflicts, nothing is booked and
no node changes state.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict, Iterable, List, Optional

from repro.core.calendar import Booking, Calendar
from repro.core.errors import AllocationError, CalendarError
from repro.testbed.node import Node, NodeState

__all__ = ["Allocation", "Allocator"]


@dataclass
class Allocation:
    """A live reservation of a set of nodes by one user."""

    user: str
    nodes: Dict[str, Node]
    bookings: List[Booking]
    released: bool = False

    def node(self, name: str) -> Node:
        if name not in self.nodes:
            raise AllocationError(
                f"node {name!r} is not part of this allocation "
                f"(has: {', '.join(sorted(self.nodes))})"
            )
        return self.nodes[name]

    def describe(self) -> dict:
        return {
            "user": self.user,
            "nodes": sorted(self.nodes),
            "bookings": [booking.describe() for booking in self.bookings],
            "released": self.released,
        }


class Allocator:
    """Hands out exclusive node allocations backed by the calendar."""

    def __init__(self, calendar: Calendar, nodes: Dict[str, Node]):
        self._calendar = calendar
        self._nodes = dict(nodes)

    @property
    def nodes(self) -> Dict[str, Node]:
        """All nodes this allocator manages."""
        return dict(self._nodes)

    def free_nodes(self) -> List[str]:
        """Names of nodes currently in the free pool."""
        return sorted(
            name for name, node in self._nodes.items() if node.state is NodeState.FREE
        )

    def allocate(
        self,
        user: str,
        node_names: Iterable[str],
        duration: float,
        start: Optional[float] = None,
    ) -> Allocation:
        """Reserve all named nodes for ``duration`` seconds, atomically."""
        names = list(node_names)
        if not names:
            raise AllocationError("an allocation needs at least one node")
        if len(set(names)) != len(names):
            raise AllocationError(f"duplicate nodes in allocation request: {names}")
        missing = [name for name in names if name not in self._nodes]
        if missing:
            raise AllocationError(f"unknown nodes: {', '.join(sorted(missing))}")
        busy = [
            name for name in names if self._nodes[name].state is not NodeState.FREE
        ]
        if busy:
            raise AllocationError(
                f"nodes already in use by another experiment: {', '.join(sorted(busy))}"
            )
        bookings: List[Booking] = []
        try:
            for name in names:
                bookings.append(
                    self._calendar.book(name, user, duration, start=start)
                )
        except CalendarError as exc:
            # Roll back: all-or-nothing.
            for booking in bookings:
                self._calendar.cancel(booking)
            raise AllocationError(str(exc)) from exc
        nodes: Dict[str, Node] = {}
        for name in names:
            node = self._nodes[name]
            node.mark_allocated(user)
            nodes[name] = node
        return Allocation(user=user, nodes=nodes, bookings=bookings)

    def release(self, allocation: Allocation) -> None:
        """Free every node of the allocation and cancel its bookings."""
        if allocation.released:
            return
        for node in allocation.nodes.values():
            node.release()
        for booking in allocation.bookings:
            try:
                self._calendar.cancel(booking)
            except CalendarError:
                # Booking may have expired naturally; freeing nodes is
                # what matters.
                pass
        allocation.released = True
