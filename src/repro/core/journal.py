"""Crash-safe run journal (R3 at experiment scope).

Large cross-product studies must survive a crashed controller without
rerunning thousands of good runs.  The journal is an append-only
``journal.jsonl`` in the experiment's result folder: one header line,
then one JSON line per finished measurement run, each flushed *and
fsynced* before the controller moves on — the file is trustworthy up
to the instant of a kill.

:meth:`Controller.resume` replays the journal, skips every loop
instance recorded as completed, and re-executes only the remainder.
Because the journal carries the loop instance and the run-directory
name, resume can both validate that it is being pointed at the same
experiment and adopt the existing run directories untouched (their
metadata stays byte-identical).

The append-only mechanics live in :class:`JsonlJournal`, shared with
the campaign journal.  Opening a journal with a torn final line (the
writer died mid-record) *truncates* the file back to the end of the
last valid record before appending: without that, new records would
concatenate onto the torn partial line and corrupt the boundary,
silently losing everything appended after the crash on the next parse.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.core.errors import JournalError

__all__ = ["JOURNAL_NAME", "JsonlJournal", "RunJournal"]

JOURNAL_NAME = "journal.jsonl"


class JsonlJournal:
    """Append-only, fsync'd JSON-lines file with torn-tail recovery."""

    def __init__(self, path: str, entries: Optional[List[dict]] = None):
        self.path = path
        self.entries: List[dict] = list(entries or [])
        self._handle = None

    # -- construction --------------------------------------------------------

    @classmethod
    def _load(cls, path: str) -> "JsonlJournal":
        """Parse an existing journal and reopen it for appending.

        A torn final line (the writer died mid-record) is dropped rather
        than rejected — everything before it was fsynced — and the file
        is truncated to the end of the last valid record so the next
        append starts on a clean line boundary.
        """
        if not os.path.isfile(path):
            raise JournalError(f"no journal at {path}; nothing to resume")
        entries: List[dict] = []
        valid_end = 0
        with open(path, "rb") as raw:
            data = raw.read()
        offset = 0
        for chunk in data.split(b"\n"):
            line_end = offset + len(chunk) + 1  # includes the newline
            stripped = chunk.strip()
            offset = line_end
            if not stripped:
                # A blank-but-terminated line is fine to keep; a torn
                # trailing fragment of whitespace is handled below.
                if line_end <= len(data):
                    valid_end = line_end
                continue
            if line_end > len(data):
                break  # unterminated tail — torn record
            try:
                entry = json.loads(stripped.decode("utf-8"))
            except ValueError:
                break  # torn tail from the crash; fsynced prefix is intact
            if isinstance(entry, dict):
                entries.append(entry)
            valid_end = line_end
        journal = cls(path, entries)
        if valid_end < len(data):
            with open(path, "r+b") as raw:
                raw.truncate(valid_end)
        journal._open("a")
        return journal

    # -- writing -------------------------------------------------------------

    def _open(self, mode: str) -> None:
        self._handle = open(self.path, mode, encoding="utf-8")

    def _append(self, entry: dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.entries.append(entry)

    def record_event(self, event: str, **fields: Any) -> None:
        entry = {"event": event}
        entry.update(fields)
        self._append(entry)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------------

    @property
    def header(self) -> dict:
        return self.entries[0] if self.entries else {}


class RunJournal(JsonlJournal):
    """Append-only, fsync'd record of finished measurement runs."""

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, experiment_path: str, experiment: str, total_runs: int)\
            -> "RunJournal":
        """Start a fresh journal for a new experiment execution."""
        journal = cls(os.path.join(experiment_path, JOURNAL_NAME))
        journal._open("w")
        journal._append(
            {"event": "experiment", "name": experiment, "total_runs": total_runs}
        )
        return journal

    @classmethod
    def open(cls, experiment_path: str) -> "RunJournal":
        """Load an existing journal for resumption, keeping it appendable.

        A torn final line (the controller died mid-write) is dropped
        rather than rejected: everything before it was fsynced.
        """
        path = os.path.join(experiment_path, JOURNAL_NAME)
        journal = cls._load(path)
        if not journal.entries or journal.entries[0].get("event") != "experiment":
            raise JournalError(f"journal {path} has no experiment header")
        return journal

    # -- writing -------------------------------------------------------------

    def record_run(
        self,
        index: int,
        loop_instance: Dict[str, Any],
        ok: bool,
        skipped: bool = False,
        retried: bool = False,
        error: Optional[str] = None,
        run_dir: Optional[str] = None,
    ) -> None:
        """Record one finished (or skipped) measurement run durably."""
        entry: Dict[str, Any] = {
            "event": "run",
            "index": index,
            "loop": dict(loop_instance),
            "ok": ok,
        }
        if skipped:
            entry["skipped"] = True
        if retried:
            entry["retried"] = True
        if error is not None:
            entry["error"] = error
        if run_dir is not None:
            entry["dir"] = run_dir
        self._append(entry)

    # -- reading -------------------------------------------------------------

    def run_entries(self) -> List[dict]:
        return [entry for entry in self.entries if entry.get("event") == "run"]

    def completed(self) -> Dict[int, dict]:
        """Latest journal entry per run index that finished successfully.

        A later entry for the same index (a resumed retry of a failed
        run) supersedes earlier ones, so a run that failed first and
        succeeded later counts as completed.
        """
        latest: Dict[int, dict] = {}
        for entry in self.run_entries():
            latest[int(entry["index"])] = entry
        return {
            index: entry
            for index, entry in latest.items()
            if entry.get("ok", False)
        }

    def validate_against(self, experiment: str, total_runs: int) -> None:
        """Refuse to resume a journal written by a different experiment."""
        header = self.header
        if header.get("name") != experiment:
            raise JournalError(
                f"journal belongs to experiment {header.get('name')!r}, "
                f"not {experiment!r}"
            )
        if header.get("total_runs") != total_runs:
            raise JournalError(
                f"journal expects {header.get('total_runs')} runs, the "
                f"experiment defines {total_runs} — refusing to resume"
            )
