"""A self-contained YAML-subset parser and emitter.

pos stores experiment variables (``global-variables.yml``,
``loop-variables.yml``, …) and per-run metadata as YAML.  The original
toolchain uses PyYAML; this environment has no third-party YAML library,
so we implement the subset the methodology needs:

* block mappings and block sequences, nested by indentation
* flow sequences (``[1, 2, 3]``) and flow mappings (``{a: 1}``)
* scalars: integers, floats, booleans, ``null``, plain and quoted strings
* comments (``# …``) and blank lines
* round-tripping via :func:`dumps` / :func:`loads`

The subset is deliberately strict: tabs are rejected, duplicate keys are
rejected, and anything outside the subset raises :class:`YamlError`
rather than being silently misparsed.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple


from repro.core.errors import YamlError

__all__ = ["loads", "dumps", "load_file", "dump_file"]

_BOOL_TRUE = {"true", "True", "TRUE", "yes", "Yes", "on", "On"}
_BOOL_FALSE = {"false", "False", "FALSE", "no", "No", "off", "Off"}
_NULL = {"null", "Null", "NULL", "~", ""}

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_PLAIN_SAFE_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_./@ -]*$")


class _Line:
    """One significant (non-blank, non-comment) line of input."""

    def __init__(self, number: int, indent: int, content: str):
        self.number = number
        self.indent = indent
        self.content = content

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Line({self.number}, indent={self.indent}, {self.content!r})"


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, honouring quoted strings."""
    in_single = False
    in_double = False
    for i, ch in enumerate(text):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            if i == 0 or text[i - 1] in " \t":
                return text[:i].rstrip()
    return text.rstrip()


def _significant_lines(text: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError(f"line {number}: tabs are not allowed in indentation")
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(number, indent, stripped.strip()))
    return lines


def _parse_scalar(token: str, line_number: int) -> Any:
    token = token.strip()
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise YamlError(f"line {line_number}: unterminated double-quoted string")
        return _unescape(token[1:-1], line_number)
    if token.startswith("'"):
        if not token.endswith("'") or len(token) < 2:
            raise YamlError(f"line {line_number}: unterminated single-quoted string")
        return token[1:-1].replace("''", "'")
    if token in _NULL:
        return None
    if token in _BOOL_TRUE:
        return True
    if token in _BOOL_FALSE:
        return False
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token) and any(c in token for c in ".eE"):
        return float(token)
    return token


def _unescape(body: str, line_number: int) -> str:
    out: List[str] = []
    i = 0
    escapes = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise YamlError(f"line {line_number}: dangling escape")
            nxt = body[i + 1]
            if nxt not in escapes:
                raise YamlError(f"line {line_number}: unknown escape \\{nxt}")
            out.append(escapes[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_flow_items(body: str, line_number: int) -> List[str]:
    """Split the inside of a flow collection on top-level commas."""
    items: List[str] = []
    depth = 0
    in_single = False
    in_double = False
    current: List[str] = []
    for ch in body:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        if not in_single and not in_double:
            if ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
                if depth < 0:
                    raise YamlError(f"line {line_number}: unbalanced brackets")
            elif ch == "," and depth == 0:
                items.append("".join(current))
                current = []
                continue
        current.append(ch)
    if in_single or in_double:
        raise YamlError(f"line {line_number}: unterminated string in flow collection")
    if depth != 0:
        raise YamlError(f"line {line_number}: unbalanced brackets")
    tail = "".join(current).strip()
    if tail or items:
        items.append("".join(current))
    return [item.strip() for item in items if item.strip() != ""]


def _parse_flow(token: str, line_number: int) -> Any:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return [_parse_value(item, line_number) for item in _split_flow_items(token[1:-1], line_number)]
    if token.startswith("{") and token.endswith("}"):
        result = {}
        for item in _split_flow_items(token[1:-1], line_number):
            key_text, sep, value_text = _partition_key(item, line_number)
            if not sep:
                raise YamlError(f"line {line_number}: flow mapping entry missing ':'")
            key = _parse_scalar(key_text, line_number)
            if key in result:
                raise YamlError(f"line {line_number}: duplicate key {key!r}")
            result[key] = _parse_value(value_text, line_number)
        return result
    raise YamlError(f"line {line_number}: malformed flow collection {token!r}")


def _parse_value(token: str, line_number: int) -> Any:
    token = token.strip()
    if token.startswith("[") or token.startswith("{"):
        return _parse_flow(token, line_number)
    return _parse_scalar(token, line_number)


def _partition_key(text: str, line_number: int) -> Tuple[str, str, str]:
    """Split ``key: value`` on the first top-level colon-space (or EOL colon)."""
    in_single = False
    in_double = False
    for i, ch in enumerate(text):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == ":" and not in_single and not in_double:
            if i + 1 == len(text):
                return text[:i], ":", ""
            if text[i + 1] == " ":
                return text[:i], ":", text[i + 2 :]
    return text, "", ""


class _Parser:
    def __init__(self, lines: List[_Line]):
        self._lines = lines
        self._pos = 0

    def _peek(self) -> Optional[_Line]:
        if self._pos < len(self._lines):
            return self._lines[self._pos]
        return None

    def _next(self) -> _Line:
        line = self._lines[self._pos]
        self._pos += 1
        return line

    def parse_document(self) -> Any:
        first = self._peek()
        if first is None:
            return None
        __, sep, __ = _partition_key(first.content, first.number)
        is_sequence_item = first.content.startswith("- ") or first.content == "-"
        is_flow = first.content.startswith(("[", "{"))
        if is_flow or (not sep and not is_sequence_item):
            # Bare scalar or flow-collection document.
            self._next()
            value = _parse_value(first.content, first.number)
        else:
            value = self._parse_node(first.indent)
        trailing = self._peek()
        if trailing is not None:
            raise YamlError(
                f"line {trailing.number}: unexpected content after document end"
            )
        return value

    def _parse_node(self, indent: int) -> Any:
        line = self._peek()
        if line is None:
            raise YamlError("unexpected end of document")
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_sequence(indent)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> List[Any]:
        items: List[Any] = []
        while True:
            line = self._peek()
            if line is None or line.indent != indent:
                if line is not None and line.indent > indent:
                    raise YamlError(f"line {line.number}: bad indentation in sequence")
                return items
            if not (line.content.startswith("- ") or line.content == "-"):
                return items
            self._next()
            body = line.content[1:].strip()
            if not body:
                child = self._peek()
                if child is None or child.indent <= indent:
                    items.append(None)
                else:
                    items.append(self._parse_node(child.indent))
                continue
            key_text, sep, value_text = _partition_key(body, line.number)
            if sep and not body.startswith(("[", "{", '"', "'")):
                # inline mapping opening:  "- key: value" possibly followed by
                # further keys indented under the item.
                mapping = {}
                key = _parse_scalar(key_text, line.number)
                mapping[key] = self._inline_or_nested_value(
                    value_text, line.number, indent + 2
                )
                child = self._peek()
                if child is not None and child.indent == indent + 2 and not (
                    child.content.startswith("- ") or child.content == "-"
                ):
                    rest = self._parse_mapping(indent + 2)
                    for rest_key, rest_value in rest.items():
                        if rest_key in mapping:
                            raise YamlError(
                                f"line {child.number}: duplicate key {rest_key!r}"
                            )
                        mapping[rest_key] = rest_value
                items.append(mapping)
            else:
                items.append(_parse_value(body, line.number))

    def _parse_mapping(self, indent: int) -> dict:
        mapping: dict = {}
        while True:
            line = self._peek()
            if line is None or line.indent != indent:
                if line is not None and line.indent > indent:
                    raise YamlError(f"line {line.number}: bad indentation in mapping")
                return mapping
            if line.content.startswith("- ") or line.content == "-":
                return mapping
            self._next()
            key_text, sep, value_text = _partition_key(line.content, line.number)
            if not sep:
                raise YamlError(f"line {line.number}: expected 'key: value'")
            key = _parse_scalar(key_text, line.number)
            if not isinstance(key, (str, int, float, bool)) and key is not None:
                raise YamlError(f"line {line.number}: unhashable mapping key")
            if key in mapping:
                raise YamlError(f"line {line.number}: duplicate key {key!r}")
            mapping[key] = self._inline_or_nested_value(
                value_text, line.number, indent
            )

    def _inline_or_nested_value(
        self, value_text: str, line_number: int, parent_indent: int
    ) -> Any:
        if value_text.strip():
            return _parse_value(value_text, line_number)
        child = self._peek()
        if child is not None and child.indent > parent_indent:
            return self._parse_node(child.indent)
        return None


def loads(text: str) -> Any:
    """Parse a YAML-subset document into Python objects.

    Raises :class:`~repro.core.errors.YamlError` on anything outside the
    supported subset.
    """
    if not isinstance(text, str):
        raise YamlError(f"expected str, got {type(text).__name__}")
    return _Parser(_significant_lines(text)).parse_document()


def load_file(path) -> Any:
    """Parse the YAML-subset file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def _format_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if value == "":
            return '""'
        needs_quote = (
            not _PLAIN_SAFE_RE.match(value)
            or value != value.strip()
            or value in _BOOL_TRUE
            or value in _BOOL_FALSE
            or value in _NULL
            or _INT_RE.match(value)
            or _FLOAT_RE.match(value)
        )
        if needs_quote:
            escaped = (
                value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\r", "\\r")
                .replace("\0", "\\0")
            )
            return f'"{escaped}"'
        return value
    raise YamlError(f"cannot serialize scalar of type {type(value).__name__}")


def _dump_node(value: Any, indent: int, out: List[str]) -> None:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            out.append(f"{pad}{{}}")
            return
        for key, item in value.items():
            key_text = _format_scalar(key)
            if isinstance(item, (dict, list)) and item:
                out.append(f"{pad}{key_text}:")
                _dump_node(item, indent + 2, out)
            elif isinstance(item, dict):
                out.append(f"{pad}{key_text}: {{}}")
            elif isinstance(item, list):
                out.append(f"{pad}{key_text}: []")
            else:
                out.append(f"{pad}{key_text}: {_format_scalar(item)}")
    elif isinstance(value, list):
        if not value:
            out.append(f"{pad}[]")
            return
        for item in value:
            if isinstance(item, (dict, list)) and item:
                out.append(f"{pad}-")
                _dump_node(item, indent + 2, out)
            elif isinstance(item, dict):
                out.append(f"{pad}- {{}}")
            elif isinstance(item, list):
                out.append(f"{pad}- []")
            else:
                out.append(f"{pad}- {_format_scalar(item)}")
    else:
        out.append(f"{pad}{_format_scalar(value)}")


def dumps(value: Any) -> str:
    """Serialize Python data into the YAML subset.

    Supports dicts, lists, and the scalar types the parser produces.
    ``loads(dumps(x)) == x`` holds for all supported values.
    """
    out: List[str] = []
    _dump_node(value, 0, out)
    return "\n".join(out) + "\n"


def dump_file(value: Any, path) -> None:
    """Serialize ``value`` to the file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(value))
