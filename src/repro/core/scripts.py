"""Experiment scripts: the step side of the pos structure.

"A script can be any executable, e.g., python or bash, that can be
executed on the target device.  The script contains the sequence of
commands to execute."  (Sec. 4.3)

Two script flavours cover the two cases:

* :class:`CommandScript` — an ordered list of shell command lines, the
  bash-style scripts of the original artifacts.  ``$NAME`` variables
  are substituted from the host's merged variable view before
  execution; a failing command aborts the script unless prefixed with
  ``-`` (make-style tolerance).
* :class:`PythonScript` — a Python callable receiving the full
  :class:`ScriptContext`; used for measurement logic that drives the
  load generator programmatically.

Every script execution produces a :class:`ScriptResult` whose command
log and uploads are collected centrally by the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.errors import ScriptError
from repro.core.tools import PosTools
from repro.core.variables import substitute
from repro.netsim.host import CommandResult

__all__ = ["ScriptContext", "ScriptResult", "Script", "CommandScript", "PythonScript"]


@dataclass
class ScriptContext:
    """Everything a script sees while it runs."""

    node: Any  # repro.testbed.node.Node
    role: str
    phase: str  # "setup" | "measurement"
    variables: Dict[str, Any]
    tools: PosTools
    setup: Any = None  # repro.testbed.scenarios.TestbedSetup, when simulated
    run_index: Optional[int] = None
    loop_instance: Dict[str, Any] = field(default_factory=dict)

    def var(self, name: str, default: Any = None) -> Any:
        """Convenience accessor for a merged variable."""
        return self.variables.get(name, default)


@dataclass
class ScriptResult:
    """Outcome of one script execution on one host."""

    script: str
    role: str
    phase: str
    ok: bool
    commands: List[CommandResult] = field(default_factory=list)
    uploads: List = field(default_factory=list)
    log_lines: List[str] = field(default_factory=list)
    error: Optional[str] = None
    return_value: Any = None


class Script:
    """Base class: a named, executable experiment step."""

    def __init__(self, name: str):
        self.name = name

    def run(self, ctx: ScriptContext) -> ScriptResult:
        """Execute the script; raises ScriptError on failure."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Documentation record published with the experiment artifacts."""
        return {"name": self.name, "kind": type(self).__name__}

    def _result(self, ctx: ScriptContext, ok: bool, error: Optional[str] = None,
                return_value: Any = None) -> ScriptResult:
        return ScriptResult(
            script=self.name,
            role=ctx.role,
            phase=ctx.phase,
            ok=ok,
            commands=list(ctx.tools.command_log),
            uploads=list(ctx.tools.uploads),
            log_lines=list(ctx.tools.log_lines),
            error=error,
            return_value=return_value,
        )


class CommandScript(Script):
    """Bash-style script: a sequence of command lines.

    ``timeout_s`` bounds every command's execution — on transports that
    run real processes (LocalTransport) an overrunning command is
    killed and the script fails, so one hung tool cannot stall the
    whole measurement schedule.
    """

    def __init__(
        self,
        name: str,
        commands: Sequence[str],
        timeout_s: Optional[float] = None,
    ):
        super().__init__(name)
        self.commands = list(commands)
        self.timeout_s = timeout_s

    def run(self, ctx: ScriptContext) -> ScriptResult:
        from repro.core.errors import TransportTimeout

        for raw in self.commands:
            tolerant = raw.startswith("-")
            line = raw[1:].strip() if tolerant else raw
            command = substitute(line, ctx.variables)
            try:
                result = ctx.tools.run(command, timeout_s=self.timeout_s)
            except TransportTimeout as exc:
                raise ScriptError(
                    f"{self.name}: command {command!r} timed out: {exc}",
                    exit_code=124,
                ) from exc
            if not result.ok and not tolerant:
                error = (
                    f"{self.name}: command {command!r} failed with exit code "
                    f"{result.exit_code}: {result.stdout}"
                )
                raise ScriptError(error, exit_code=result.exit_code, output=result.stdout)
        return self._result(ctx, ok=True)

    def describe(self) -> dict:
        info = super().describe()
        info["commands"] = list(self.commands)
        if self.timeout_s is not None:
            info["timeout_s"] = self.timeout_s
        return info


class PythonScript(Script):
    """Python script: a callable ``fn(ctx) -> Any``."""

    def __init__(self, name: str, fn: Callable[[ScriptContext], Any]):
        super().__init__(name)
        self.fn = fn

    def run(self, ctx: ScriptContext) -> ScriptResult:
        try:
            value = self.fn(ctx)
        except ScriptError:
            raise
        except Exception as exc:  # noqa: BLE001 - script bugs become ScriptError
            raise ScriptError(f"{self.name}: {exc}") from exc
        return self._result(ctx, ok=True, return_value=value)

    def describe(self) -> dict:
        info = super().describe()
        info["callable"] = getattr(self.fn, "__name__", repr(self.fn))
        doc = getattr(self.fn, "__doc__", None)
        if doc:
            info["doc"] = doc.strip()
        return info
