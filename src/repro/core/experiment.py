"""Experiment definition.

A pos experiment names its participating hosts ("roles" — the paper's
minimal topology has a DuT and a LoadGen, but the number of devices can
be scaled), assigns each role a node, a live-image pin, boot
parameters, and its two exclusive script files (*setup* and
*measurement*), and carries the three variable scopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ExperimentError
from repro.core.scripts import Script
from repro.core.variables import Variables

__all__ = ["Role", "Experiment"]


@dataclass
class Role:
    """One experiment host and its scripts."""

    name: str  # e.g. "loadgen", "dut"
    node: str  # testbed node assigned to the role
    setup: Script
    measurement: Script
    image: Tuple[str, str] = ("debian-buster", "latest")
    boot_parameters: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> dict:
        return {
            "role": self.name,
            "node": self.node,
            "image": list(self.image),
            "boot_parameters": dict(self.boot_parameters),
            "setup": self.setup.describe(),
            "measurement": self.measurement.describe(),
        }


@dataclass
class Experiment:
    """A fully scripted, parameterized network experiment."""

    name: str
    roles: List[Role]
    variables: Variables = field(default_factory=Variables)
    #: Planned duration used for the calendar booking, seconds.
    duration_s: float = 3600.0
    description: str = ""
    #: Optional evaluation hook, called with the result directory path
    #: after all measurement runs completed (the evaluation phase).
    evaluation: Optional[Callable[[str], None]] = None

    def validate(self) -> None:
        """Reject inconsistent definitions before any node is touched."""
        if not self.name:
            raise ExperimentError("experiment needs a name")
        if not self.roles:
            raise ExperimentError(f"experiment {self.name!r} has no roles")
        role_names = [role.name for role in self.roles]
        if len(set(role_names)) != len(role_names):
            raise ExperimentError(
                f"experiment {self.name!r} has duplicate role names: {role_names}"
            )
        node_names = [role.node for role in self.roles]
        if len(set(node_names)) != len(node_names):
            raise ExperimentError(
                f"experiment {self.name!r} assigns one node to several roles: "
                f"{node_names} — using a node in more than one experiment "
                f"role at the same time is prohibited"
            )
        if self.duration_s <= 0:
            raise ExperimentError(
                f"experiment {self.name!r} has non-positive duration"
            )

    @property
    def node_names(self) -> List[str]:
        return [role.node for role in self.roles]

    @property
    def role_names(self) -> List[str]:
        return [role.name for role in self.roles]

    def role(self, name: str) -> Role:
        for role in self.roles:
            if role.name == name:
                return role
        raise ExperimentError(f"experiment {self.name!r} has no role {name!r}")

    def describe(self) -> dict:
        """Experiment-level metadata stored with the results."""
        return {
            "name": self.name,
            "description": self.description,
            "duration_s": self.duration_s,
            "roles": [role.describe() for role in self.roles],
        }
