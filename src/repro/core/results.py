"""Central result collection (R5).

"pos automatically queues one run after another … The complete output
of the experiment script is captured and stored in the result folder of
the experiment.  This enforced central collection of artifacts,
including the output of the utility tools, executed scripts, variables,
device hardware and topology information, guarantees publishability."

The on-disk layout mirrors the original testbed's
``/srv/testbed/results/<user>/<experiment>/<timestamp>/``::

    <root>/<user>/<experiment>/<timestamp>/
        experiment.yml          # experiment-level metadata
        variables.yml           # all three variable scopes
        inventory.yml           # node hardware/software/topology record
        scripts.yml             # the executed scripts, documented
        setup/<role>/…          # setup-phase captures per host
        run-000/metadata.yml    # loop parameters of this run
        run-000/<role>/…        # measurement captures per host
        run-001/…

The timestamp format matches the artifact repository of the paper
(``2020-10-12_11-20-32_230471``).  The clock is injectable so tests
produce stable paths.
"""

from __future__ import annotations

import datetime as _dt
import os
import time as _time
from typing import Any, Callable, Dict, List, Optional

from repro.core import yamlite
from repro.core.errors import ResultError
from repro.core.scripts import ScriptResult

__all__ = ["ResultStore", "ExperimentDir", "RunDir", "format_timestamp"]


def format_timestamp(epoch: float) -> str:
    """Render an epoch as the pos result-folder timestamp."""
    moment = _dt.datetime.fromtimestamp(epoch, tz=_dt.timezone.utc)
    return moment.strftime("%Y-%m-%d_%H-%M-%S_%f")


class RunDir:
    """Result folder of a single measurement run.

    ``attempt`` distinguishes retries of the same run index: attempt 0
    lives in ``run-NNN``, later attempts in ``run-NNN-retry`` /
    ``run-NNN-retry2`` / …, so a recovery retry never overwrites the
    failed attempt's artifacts — the failure evidence is preserved.
    """

    def __init__(self, path: str, index: int, attempt: int = 0):
        self.path = path
        self.index = index
        self.attempt = attempt
        os.makedirs(path, exist_ok=True)

    def write_metadata(self, loop_instance: Dict[str, Any], extra: Optional[dict] = None) -> None:
        """Record the loop parameters that define this run."""
        payload: Dict[str, Any] = {"run": self.index, "loop": dict(loop_instance)}
        if self.attempt:
            payload["attempt"] = self.attempt
        if extra:
            payload.update(extra)
        yamlite.dump_file(payload, os.path.join(self.path, "metadata.yml"))

    def record_script(self, result: ScriptResult) -> None:
        """Store everything a script produced, under its role's folder."""
        role_dir = os.path.join(self.path, result.role)
        os.makedirs(role_dir, exist_ok=True)
        if result.commands:
            lines = []
            for command in result.commands:
                lines.append(f"$ {command.command}")
                if command.stdout:
                    lines.append(command.stdout)
                lines.append(f"(exit {command.exit_code})")
            _write_text(os.path.join(role_dir, "commands.log"), "\n".join(lines) + "\n")
        for name, content in result.uploads:
            _write_text(os.path.join(role_dir, _safe_filename(name)), content)
        if result.log_lines:
            _write_text(
                os.path.join(role_dir, "pos.log"), "\n".join(result.log_lines) + "\n"
            )
        status = {
            "script": result.script,
            "phase": result.phase,
            "ok": result.ok,
        }
        if result.error:
            status["error"] = result.error
        yamlite.dump_file(status, os.path.join(role_dir, "status.yml"))


class ExperimentDir:
    """Result folder of a whole experiment."""

    def __init__(self, path: str):
        self.path = path
        os.makedirs(path, exist_ok=True)
        self._run_dirs: List[RunDir] = []

    def write_metadata(self, metadata: Dict[str, Any]) -> None:
        yamlite.dump_file(metadata, os.path.join(self.path, "experiment.yml"))

    def write_variables(self, variables: Dict[str, Any]) -> None:
        yamlite.dump_file(variables, os.path.join(self.path, "variables.yml"))

    def write_inventory(self, inventory: Dict[str, Any]) -> None:
        yamlite.dump_file(inventory, os.path.join(self.path, "inventory.yml"))

    def write_scripts(self, scripts: List[dict]) -> None:
        yamlite.dump_file({"scripts": scripts}, os.path.join(self.path, "scripts.yml"))

    def setup_dir(self, role: str) -> str:
        path = os.path.join(self.path, "setup", role)
        os.makedirs(path, exist_ok=True)
        return path

    def record_setup_script(self, result: ScriptResult) -> None:
        """Setup captures live under ``setup/<role>/`` at experiment level."""
        run_like = RunDir(os.path.join(self.path, "setup"), index=-1)
        run_like.record_script(result)

    @staticmethod
    def run_dir_name(index: int, attempt: int = 0) -> str:
        base = f"run-{index:03d}"
        if attempt == 0:
            return base
        if attempt == 1:
            return f"{base}-retry"
        return f"{base}-retry{attempt}"

    def create_run_dir(self, index: int) -> RunDir:
        """Create the next attempt's folder for run ``index``.

        If ``run-NNN`` already exists (a recovery retry in this
        execution, or a resumed re-execution of a failed run), the new
        attempt goes to ``run-NNN-retry[K]`` instead of silently
        reusing — and overwriting — the earlier attempt's artifacts.
        """
        attempt = 0
        while True:
            name = self.run_dir_name(index, attempt)
            path = os.path.join(self.path, name)
            if not os.path.isdir(path):
                break
            attempt += 1
        run_dir = RunDir(path, index, attempt=attempt)
        self._run_dirs.append(run_dir)
        return run_dir

    def adopt_run_dir(self, index: int, name: Optional[str] = None) -> RunDir:
        """Register an existing run folder without touching its contents.

        Used on resume for runs the journal records as completed: their
        metadata must stay byte-identical, so nothing is rewritten.
        """
        name = name or self.run_dir_name(index)
        path = os.path.join(self.path, name)
        if not os.path.isdir(path):
            raise ResultError(f"cannot adopt missing run folder {path}")
        run_dir = RunDir.__new__(RunDir)
        run_dir.path = path
        run_dir.index = index
        run_dir.attempt = _attempt_from_name(name)
        self._run_dirs.append(run_dir)
        return run_dir

    @property
    def run_dirs(self) -> List[RunDir]:
        return list(self._run_dirs)


class ResultStore:
    """Root of the central result tree."""

    def __init__(self, root: str, clock: Optional[Callable[[], float]] = None):
        self.root = root
        self._clock = clock or _time.time
        os.makedirs(root, exist_ok=True)

    def create_experiment_dir(self, user: str, experiment: str) -> ExperimentDir:
        """Create ``<root>/<user>/<experiment>/<timestamp>/``, collision-free."""
        stamp = format_timestamp(self._clock())
        path = os.path.join(self.root, _safe_name(user), _safe_name(experiment), stamp)
        if os.path.exists(path):
            # Same-microsecond collision (possible with a frozen test
            # clock): disambiguate deterministically.
            suffix = 1
            while os.path.exists(f"{path}-{suffix}"):
                suffix += 1
            path = f"{path}-{suffix}"
        return ExperimentDir(path)

    def experiments_for(self, user: str, experiment: str) -> List[str]:
        """All result timestamps recorded for one experiment, sorted."""
        base = os.path.join(self.root, _safe_name(user), _safe_name(experiment))
        if not os.path.isdir(base):
            return []
        return sorted(
            entry for entry in os.listdir(base)
            if os.path.isdir(os.path.join(base, entry))
        )

    def latest(self, user: str, experiment: str) -> str:
        """Path of the most recent result folder for an experiment."""
        stamps = self.experiments_for(user, experiment)
        if not stamps:
            raise ResultError(f"no results for {user}/{experiment} under {self.root}")
        return os.path.join(
            self.root, _safe_name(user), _safe_name(experiment), stamps[-1]
        )


def _attempt_from_name(name: str) -> int:
    """Parse the attempt number back out of a run-folder name."""
    if "-retry" not in name:
        return 0
    suffix = name.rsplit("-retry", 1)[1]
    return int(suffix) if suffix else 1


def _safe_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_. " else "_" for ch in name
    ).strip()
    if not cleaned or cleaned.startswith("."):
        raise ResultError(f"cannot derive a safe path component from {name!r}")
    return cleaned.replace(" ", "_")


def _safe_filename(name: str) -> str:
    """Sanitize an upload name: no separators, no traversal, never empty.

    Upload names come from experiment scripts; a hostile or buggy name
    must not escape the run directory, but it also must not abort the
    capture — the artifact is renamed instead.
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    ).lstrip(".")
    while ".." in cleaned:
        cleaned = cleaned.replace("..", "_")
    return cleaned or "unnamed"


def _write_text(path: str, content: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
