"""Experiment variables: the parameter side of the pos structure.

Section 4.3 of the paper splits every experiment into *script* files
(the steps) and *parameter* files (the concrete instance), "inspired by
HTML and CSS".  Three kinds of variables exist:

* **global vars** — accessible from all experiment hosts,
* **local vars** — defined per experiment host,
* **loop vars** — shared across hosts but changed between measurement
  runs; every loop var may be a single value or a list, and pos runs
  one measurement per element of the **cross product** of all lists.

This module implements loading the three files, merging them for a
host, expanding the loop cross product, and ``$NAME`` substitution in
script commands.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Dict, List, Mapping, Optional


from repro.core import yamlite
from repro.core.errors import VariableError

__all__ = ["Variables", "expand_loop_variables", "substitute", "merge"]

_NAME_RE = re.compile(r"\$(\{([A-Za-z_][A-Za-z0-9_]*)\}|([A-Za-z_][A-Za-z0-9_]*))")


def _require_mapping(value: Any, source: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise VariableError(f"{source}: expected a mapping, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str):
            raise VariableError(f"{source}: variable names must be strings, got {key!r}")
    return value


def expand_loop_variables(loop_vars: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Expand loop variables into the ordered list of measurement runs.

    Scalars count as single-element lists.  The result is the full cross
    product, ordered with the *last* declared variable varying fastest —
    deterministic, so run N of a repeated experiment always gets the
    same parameters.

    >>> expand_loop_variables({"size": [64, 1500], "rate": [1, 2]})
    [{'size': 64, 'rate': 1}, {'size': 64, 'rate': 2}, \
{'size': 1500, 'rate': 1}, {'size': 1500, 'rate': 2}]
    """
    keys: List[str] = []
    value_lists: List[List[Any]] = []
    for key, value in loop_vars.items():
        keys.append(key)
        if isinstance(value, list):
            if not value:
                raise VariableError(f"loop variable {key!r} has an empty list")
            value_lists.append(value)
        else:
            value_lists.append([value])
    if not keys:
        return [{}]
    return [
        dict(zip(keys, combination))
        for combination in itertools.product(*value_lists)
    ]


def merge(*mappings: Mapping[str, Any]) -> Dict[str, Any]:
    """Left-to-right merge; later mappings win."""
    merged: Dict[str, Any] = {}
    for mapping in mappings:
        merged.update(mapping)
    return merged


def substitute(text: str, variables: Mapping[str, Any]) -> str:
    """Replace ``$NAME`` / ``${NAME}`` with variable values.

    Unknown names raise :class:`VariableError` — a script referencing a
    variable that no parameter file defines is a documentation bug the
    methodology is designed to catch.  ``$$`` escapes a literal dollar.
    """
    out: List[str] = []
    position = 0
    while position < len(text):
        char = text[position]
        if char == "$" and position + 1 < len(text) and text[position + 1] == "$":
            out.append("$")
            position += 2
            continue
        match = _NAME_RE.match(text, position)
        if match:
            name = match.group(2) or match.group(3)
            if name not in variables:
                raise VariableError(f"undefined variable ${name} in {text!r}")
            out.append(str(variables[name]))
            position = match.end()
        else:
            out.append(char)
            position += 1
    return "".join(out)


class Variables:
    """The three variable scopes of a pos experiment."""

    def __init__(
        self,
        global_vars: Optional[Mapping[str, Any]] = None,
        local_vars: Optional[Mapping[str, Mapping[str, Any]]] = None,
        loop_vars: Optional[Mapping[str, Any]] = None,
    ):
        self.global_vars = dict(_require_mapping(global_vars, "globals"))
        self.local_vars: Dict[str, Dict[str, Any]] = {}
        if local_vars is not None and not isinstance(local_vars, dict):
            raise VariableError("locals: expected a mapping of host -> mapping")
        for host, mapping in (local_vars or {}).items():
            self.local_vars[host] = dict(_require_mapping(mapping, f"locals[{host}]"))
        self.loop_vars = dict(_require_mapping(loop_vars, "loop"))

    # -- file loading -------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        global_path=None,
        local_paths: Optional[Mapping[str, Any]] = None,
        loop_path=None,
    ) -> "Variables":
        """Load the classic pos file layout.

        ``local_paths`` maps host name → path of that host's local
        variable file (``loadgen-variables.yml`` etc.).
        """
        global_vars = (
            _require_mapping(yamlite.load_file(global_path), str(global_path))
            if global_path
            else {}
        )
        local_vars: Dict[str, Dict[str, Any]] = {}
        for host, path in (local_paths or {}).items():
            local_vars[host] = _require_mapping(yamlite.load_file(path), str(path))
        loop_vars = (
            _require_mapping(yamlite.load_file(loop_path), str(loop_path))
            if loop_path
            else {}
        )
        return cls(global_vars=global_vars, local_vars=local_vars, loop_vars=loop_vars)

    # -- resolution ------------------------------------------------------------

    def for_host(
        self, host: str, loop_instance: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Merged view a host sees in one run: global < local < loop."""
        return merge(
            self.global_vars,
            self.local_vars.get(host, {}),
            loop_instance or {},
        )

    def runs(self) -> List[Dict[str, Any]]:
        """All loop instances, in deterministic cross-product order."""
        return expand_loop_variables(self.loop_vars)

    def run_count(self) -> int:
        """Number of measurement runs the loop file expands into."""
        count = 1
        for value in self.loop_vars.values():
            count *= len(value) if isinstance(value, list) else 1
        return count

    def describe(self) -> dict:
        """Serializable record of all three scopes (stored as artifacts)."""
        return {
            "global": dict(self.global_vars),
            "local": {host: dict(mapping) for host, mapping in self.local_vars.items()},
            "loop": dict(self.loop_vars),
        }
