"""Parallel cross-product run scheduler.

pos explicitly supports running multiple independent experiments in
parallel on a shared testbed (Sec. 4.4), and sweep-style experiments —
the loop-variable cross product of the case study — are embarrassingly
parallel *if* each run is independent of execution history.  This
module makes that independence real and exploits it:

* the expanded cross product is sharded round-robin into
  **node-disjoint** shards: every worker process builds its *own*
  isolated testbed world from a factory, so no two shards ever share a
  node, a simulator, or any mutable state;
* each worker replays the full workflow for its shard — boot, tool
  deployment, setup (with barrier), then its runs in ascending index
  order — and returns in-memory :class:`RunOutcome` payloads;
* the parent merges outcomes into the canonical ``run-NNN`` tree **in
  deterministic cross-product order** and appends journal entries in
  completion-safe order: run *k* is persisted and journalled only after
  every run below *k*, so a crash leaves a journal prefix that
  :meth:`Controller.resume` understands, identical to the sequential
  controller's.

Runs are made history-independent by the run-isolation hook (see
:meth:`repro.testbed.scenarios.TestbedSetup.begin_run`): before each
run the testbed clock is aligned to a canonical per-run-index epoch and
every stochastic component is reseeded from the run index.  A run then
produces bit-identical artifacts no matter which worker executes it or
which runs preceded it — ``--jobs 4`` and ``--jobs 1`` result trees are
byte-identical.

The sequential controller shares the primitives below
(:func:`perform_run`, :func:`persist_outcome`, …), so equality between
job counts holds by construction rather than by testing luck.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import (
    ExperimentError,
    NodeError,
    PosError,
    RetryExhausted,
    ScriptError,
    TransportError,
)
from repro.core.experiment import Experiment, Role
from repro.core.results import ExperimentDir, RunDir
from repro.core.scripts import Script, ScriptContext, ScriptResult
from repro.core.tools import PosTools, SharedStore
from repro.faults.clock import Clock, SimClock
from repro.faults.retry import RetryPolicy
from repro.telemetry import context as _telemetry_context
from repro.telemetry import plane as _telemetry_plane
from repro.telemetry.spans import RunTelemetry
from repro.testbed import health as _health

__all__ = [
    "POS_TOOLS_PATH",
    "RunRecord",
    "AttemptResult",
    "RunOutcome",
    "WorkerEnv",
    "WorkerWorld",
    "ReorderBuffer",
    "ParallelScheduler",
    "build_deliver",
    "resolve_jobs",
    "shard_runs",
    "boot_nodes",
    "deploy_tools",
    "run_setup_phase",
    "perform_run",
    "execute_run",
    "persist_outcome",
    "recover_with_policy",
    "validate_parallel_fault_plan",
]

#: Where the deployed utility-tool stub lives on every experiment host.
POS_TOOLS_PATH = "/usr/local/bin/pos"

_POS_TOOLS_STUB = (
    "#!/bin/sh\n"
    "# pos utility tools: variable access, barriers, command capture.\n"
    "# Deployed automatically by the testbed controller after boot.\n"
)


@dataclass
class RunRecord:
    """Bookkeeping for one measurement run."""

    index: int
    loop_instance: Dict[str, Any]
    ok: bool
    retried: bool = False
    skipped: bool = False
    resumed: bool = False
    error: Optional[str] = None
    script_results: List[ScriptResult] = field(default_factory=list)


@dataclass
class AttemptResult:
    """One execution attempt of one run: script results, no filesystem."""

    ok: bool = True
    error: Optional[str] = None
    script_results: List[ScriptResult] = field(default_factory=list)


@dataclass
class RunOutcome:
    """Everything one run produced, in memory and picklable.

    ``attempts`` holds one entry normally, two when the ``recover``
    policy power-cycled and retried.  ``fault_events`` are the injected
    faults that fired during this run, for the parent's inventory.
    ``telemetry`` is the run's span/metric buffer
    (:meth:`repro.telemetry.spans.RunTelemetry.payload`): local sequence
    numbers starting at 0, so the parent can re-sequence buffers in run
    order no matter which worker produced them.  ``health`` is the
    run's out-of-band node-health payload
    (:meth:`repro.testbed.health.HealthMonitor.collect_run`): SEL
    slices with run-local record ids, so the payload is identical no
    matter which worker's cumulative BMC state produced it.
    """

    index: int
    loop_instance: Dict[str, Any]
    attempts: List[AttemptResult]
    fault_events: List[Any] = field(default_factory=list)
    telemetry: Optional[dict] = None
    health: Optional[dict] = None


@dataclass
class WorkerEnv:
    """Recipe for building an isolated testbed world inside a worker.

    ``factory(**kwargs)`` must be a module-level callable (it crosses
    the process boundary by reference) returning a :class:`WorkerWorld`
    — a *fresh* world per call, sharing nothing with the parent's.
    """

    factory: Callable[..., "WorkerWorld"]
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class WorkerWorld:
    """What a worker needs to run the workflow without a controller."""

    nodes: Dict[str, Any]
    images: Any
    context_extra: Dict[str, Any] = field(default_factory=dict)
    fault_injector: Any = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Resolve the worker count: explicit value, else ``POS_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("POS_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ExperimentError(f"POS_JOBS must be an integer, got {raw!r}") from exc
    if jobs < 1:
        raise ExperimentError(f"jobs must be at least 1, got {jobs}")
    return jobs


def shard_runs(indices: List[int], jobs: int) -> List[List[int]]:
    """Shard run indices round-robin into at most ``jobs`` shards.

    Round-robin keeps shard sizes balanced for homogeneous runs and is
    order-independent: the shard of run *k* is ``k mod jobs`` over the
    pending list, a pure function of the pending set and the job count.
    Every shard is internally ascending, so each worker executes its
    runs in cross-product order.
    """
    shards: List[List[int]] = [[] for _ in range(jobs)]
    for position, index in enumerate(indices):
        shards[position % jobs].append(index)
    return [shard for shard in shards if shard]


def validate_parallel_fault_plan(plan) -> None:
    """Reject fault plans whose firing state couples runs together.

    Under ``--jobs N`` every worker owns a fresh copy of the plan, so a
    spec's firing budget and PRNG are per-worker.  Identical firing
    under any job count therefore requires *run-scoped* specs: pinned
    to explicit run indices, deterministic (probability 1), with a
    budget that never truncates the pinned set.  Wildcard or
    probabilistic specs consume shared state in sequential-history
    order and cannot be replayed shard-locally.
    """
    for position, spec in enumerate(getattr(plan, "specs", [])):
        if spec.runs is None:
            raise ExperimentError(
                f"fault spec #{position} ({spec.kind}) is not pinned to run "
                f"indices; parallel execution needs run-scoped fault specs"
            )
        if spec.probability < 1.0:
            raise ExperimentError(
                f"fault spec #{position} ({spec.kind}) is probabilistic; "
                f"parallel execution needs deterministic fault specs"
            )
        if spec.times is not None and spec.times < len(spec.runs):
            raise ExperimentError(
                f"fault spec #{position} ({spec.kind}) has a firing budget "
                f"({spec.times}) below its pinned run count ({len(spec.runs)}); "
                f"the budget would be consumed in execution order, which is "
                f"job-count-dependent"
            )


# --------------------------------------------------------------------------
# workflow primitives, shared by the sequential controller and the workers
# --------------------------------------------------------------------------

def boot_nodes(experiment: Experiment, node_of: Callable[[str], Any], images) -> None:
    """Pin images and boot parameters, then reset every node."""
    for role in experiment.roles:
        node = node_of(role.node)
        image_name, image_version = role.image
        node.set_image(images.resolve(image_name, image_version))
        node.set_boot_parameters(role.boot_parameters)
    # Booting happens in a second pass so a resolution error in any
    # role's image leaves no node rebooted.
    for role in experiment.roles:
        node_of(role.node).reset()


def deploy_tools(experiment: Experiment, node_of: Callable[[str], Any]) -> None:
    """Upload the utility-tool stub to every host that takes files."""
    for role in experiment.roles:
        node = node_of(role.node)
        try:
            node.put_file(POS_TOOLS_PATH, _POS_TOOLS_STUB)
        except TransportError:
            # Devices managed via SNMP-style transports have no
            # filesystem; the controller-side tools still work.
            pass


def run_role_script(
    script: Script,
    experiment: Experiment,
    role: Role,
    node,
    store: SharedStore,
    phase: str,
    loop_instance: Dict[str, Any],
    run_index: Optional[int],
    extra: dict,
) -> ScriptResult:
    """Run one role's script with the full pos tool surface attached."""
    tools = PosTools(store, node, role.name)
    ctx = ScriptContext(
        node=node,
        role=role.name,
        phase=phase,
        variables=experiment.variables.for_host(role.name, loop_instance),
        tools=tools,
        setup=extra.get("setup"),
        run_index=run_index,
        loop_instance=dict(loop_instance),
    )
    collector = _telemetry_context.current()
    span = None
    if collector is not None:
        span = collector.begin(
            "script", script=script.name, role=role.name, node=role.node,
            phase=phase,
        )
    try:
        result = script.run(ctx)
        if span is not None:
            span.set(ok=result.ok)
        return result
    except ScriptError as exc:
        if span is not None:
            span.set(ok=False, error=str(exc))
        result = ScriptResult(
            script=script.name,
            role=role.name,
            phase=phase,
            ok=False,
            commands=list(tools.command_log),
            uploads=list(tools.uploads),
            log_lines=list(tools.log_lines),
            error=str(exc),
        )
        if phase == "setup":
            return result
        raise
    finally:
        if span is not None:
            collector.finish(span)


def run_setup_phase(
    experiment: Experiment,
    node_of: Callable[[str], Any],
    store: SharedStore,
    extra: dict,
    record: Optional[Callable[[ScriptResult], None]] = None,
) -> List[ScriptResult]:
    """Run every role's setup script; raise on the first failure."""
    results: List[ScriptResult] = []
    for role in experiment.roles:
        result = run_role_script(
            role.setup, experiment, role, node_of(role.node), store,
            phase="setup", loop_instance={}, run_index=None, extra=extra,
        )
        if record is not None:
            record(result)
        results.append(result)
        if not result.ok:
            raise ScriptError(
                f"setup of role {role.name!r} failed: {result.error}"
            )
    return results


def perform_run(
    experiment: Experiment,
    node_of: Callable[[str], Any],
    store: SharedStore,
    extra: dict,
    index: int,
    loop_instance: Dict[str, Any],
) -> AttemptResult:
    """Execute one measurement run's scripts.  No filesystem access."""
    attempt = AttemptResult()
    for role in experiment.roles:
        try:
            result = run_role_script(
                role.measurement, experiment, role, node_of(role.node), store,
                phase="measurement", loop_instance=loop_instance,
                run_index=index, extra=extra,
            )
        except (ScriptError, TransportError) as exc:
            attempt.ok = False
            attempt.error = str(exc)
            attempt.script_results.append(
                ScriptResult(
                    script=role.measurement.name,
                    role=role.name,
                    phase="measurement",
                    ok=False,
                    error=str(exc),
                )
            )
            break
        attempt.script_results.append(result)
    if attempt.ok:
        try:
            store.check_barriers(set(experiment.role_names))
        except PosError as exc:
            attempt.ok = False
            attempt.error = str(exc)
    store.reset_barriers()
    return attempt


def recover_nodes(
    experiment: Experiment,
    node_of: Callable[[str], Any],
    store: SharedStore,
    extra: dict,
) -> None:
    """R3 in action: power-cycle every node back into the clean state
    and replay the setup scripts before retrying the failed run."""
    for role in experiment.roles:
        node_of(role.node).reset()
    deploy_tools(experiment, node_of)
    for role in experiment.roles:
        result = run_role_script(
            role.setup, experiment, role, node_of(role.node), store,
            phase="setup", loop_instance={}, run_index=None, extra=extra,
        )
        if not result.ok:
            raise ScriptError(
                f"recovery setup of role {role.name!r} failed: {result.error}"
            )
    store.reset_barriers()


def recover_with_policy(
    experiment: Experiment,
    node_of: Callable[[str], Any],
    store: SharedStore,
    extra: dict,
    recovery_policy: RetryPolicy,
    clock: Clock,
) -> None:
    """Run the recovery procedure under the unified retry policy."""
    try:
        recovery_policy.call(
            lambda: recover_nodes(experiment, node_of, store, extra),
            retry_on=(NodeError, ScriptError, TransportError),
            clock=clock,
            describe="node recovery",
        )
    except RetryExhausted as exc:
        raise exc.last_error


def _run_telemetry(extra: dict) -> Optional[RunTelemetry]:
    """A run-scoped collector on the testbed's virtual clock, if enabled."""
    if not _telemetry_plane.enabled():
        return None
    sim = getattr(extra.get("setup"), "sim", None)
    clock = None if sim is None else (lambda: sim.now)
    return RunTelemetry(clock=clock)


def _health_monitor(
    experiment: Experiment, node_of: Callable[[str], Any],
) -> Optional[_health.HealthMonitor]:
    """A per-run health monitor over the experiment's nodes, if enabled.

    Created *after* the run-isolation hook: construction captures each
    node's SEL baseline, so only records appended during this run land
    in its slice.
    """
    if not _health.health_enabled():
        return None
    return _health.HealthMonitor.for_experiment(experiment, node_of)


def _record_health(collector: RunTelemetry, payload: dict) -> None:
    """Feed one run's health payload into the telemetry collector."""
    for name in sorted(payload.get("nodes", {})):
        entry = payload["nodes"][name]
        collector.count(f"health.observation.{entry['observation']}")
        for record in entry.get("sel", []):
            collector.count("health.sel_records")
            collector.event(
                "health.sel",
                node=name,
                sensor=record["sensor"],
                severity=record["severity"],
                event=record["event"],
            )


def _drop_snapshot(setup) -> Tuple[int, int]:
    """Cumulative (TX-ring drops, router-backlog drops) of the testbed."""
    ring = 0
    backlog = 0
    router = getattr(setup, "router", None)
    if router is not None:
        backlog = router.stats.backlog_dropped
        ring += sum(port.stats.tx_dropped for port in router.ports)
    loadgen = getattr(setup, "loadgen", None)
    if loadgen is not None:
        ring += loadgen.tx_nic.stats.tx_dropped
    return ring, backlog


def _measured_attempt(
    collector: Optional[RunTelemetry],
    number: int,
    experiment: Experiment,
    node_of: Callable[[str], Any],
    store: SharedStore,
    extra: dict,
    index: int,
    loop_instance: Dict[str, Any],
) -> AttemptResult:
    if collector is None:
        return perform_run(experiment, node_of, store, extra, index, loop_instance)
    span = collector.begin("attempt", number=number)
    try:
        attempt = perform_run(
            experiment, node_of, store, extra, index, loop_instance
        )
        span.set(ok=attempt.ok)
        if attempt.error is not None:
            span.set(error=attempt.error)
        return attempt
    finally:
        collector.finish(span)


def execute_run(
    experiment: Experiment,
    node_of: Callable[[str], Any],
    store: SharedStore,
    extra: dict,
    index: int,
    loop_instance: Dict[str, Any],
    on_error: str,
    recovery_policy: RetryPolicy,
    clock: Clock,
    injector=None,
    isolation: Optional[Callable[[int], None]] = None,
) -> RunOutcome:
    """One run end to end: isolate, inject, execute, maybe recover+retry.

    ``isolation`` is the run-isolation hook (clock epoch alignment and
    reseeding); it runs first so the run's world state is a function of
    the run index alone, which is what makes outcomes identical under
    any job count.  The telemetry collector is activated strictly
    *after* isolation: the epoch fast-forward drains the previous run's
    leftover events, which depend on execution history and sharding, so
    its engine activity must never enter this run's buffer.
    """
    if isolation is not None:
        isolation(index)
    collector = _run_telemetry(extra)
    # The monitor snapshots SEL baselines now — after isolation, before
    # any fault can fire — so this run's health slice contains exactly
    # the chassis events this run caused.
    monitor = _health_monitor(experiment, node_of)
    health_payload: Optional[dict] = None
    events_before = len(injector.events) if injector is not None else 0
    if injector is not None:
        injector.begin_run(index)
    setup = extra.get("setup")
    attempts: List[AttemptResult] = []
    run_span = None
    drops_before = (0, 0)
    if collector is not None:
        drops_before = _drop_snapshot(setup)
        _telemetry_context.activate(collector)
        run_span = collector.begin("run", index=index, loop=dict(loop_instance))
    try:
        attempts.append(
            _measured_attempt(
                collector, 0, experiment, node_of, store, extra, index,
                loop_instance,
            )
        )
        if not attempts[0].ok and on_error == "recover":
            if collector is not None:
                recovery_span = collector.begin("recovery")
                try:
                    recover_with_policy(
                        experiment, node_of, store, extra, recovery_policy,
                        clock,
                    )
                finally:
                    collector.finish(recovery_span)
            else:
                recover_with_policy(
                    experiment, node_of, store, extra, recovery_policy, clock
                )
            attempts.append(
                _measured_attempt(
                    collector, 1, experiment, node_of, store, extra, index,
                    loop_instance,
                )
            )
    finally:
        if injector is not None:
            injector.end_run()
        if monitor is not None:
            health_payload = monitor.collect_run(index)
            if collector is not None:
                # SEL records become spans/metrics inside the run span.
                _record_health(collector, health_payload)
        if collector is not None:
            ring_after, backlog_after = _drop_snapshot(setup)
            collector.count("netsim.tx_ring_drops", ring_after - drops_before[0])
            collector.count(
                "netsim.backlog_drops", backlog_after - drops_before[1]
            )
            recovered = len(attempts) > 1 and attempts[-1].ok
            if recovered:
                collector.count("runs.recovered")
            run_span.set(
                ok=bool(attempts) and attempts[-1].ok,
                attempts=len(attempts),
                recovered=recovered,
                faults=(
                    len(injector.events) - events_before
                    if injector is not None else 0
                ),
            )
            collector.finish(run_span)
            _telemetry_context.deactivate(collector)
    events = (
        list(injector.events[events_before:]) if injector is not None else []
    )
    return RunOutcome(
        index=index,
        loop_instance=dict(loop_instance),
        attempts=attempts,
        fault_events=events,
        telemetry=collector.payload() if collector is not None else None,
        health=health_payload,
    )


def persist_outcome(
    exp_dir: ExperimentDir,
    outcome: RunOutcome,
    log=None,
) -> Tuple[RunRecord, RunDir]:
    """Write one run's attempts into the canonical result tree.

    One ``run-NNN[-retry]`` folder per attempt, exactly like the
    sequential controller: a recovery retry never overwrites the failed
    attempt's artifacts.
    """
    run_dir: Optional[RunDir] = None
    for attempt_number, attempt in enumerate(outcome.attempts):
        if attempt_number == 1 and log is not None:
            log.event(
                f"run {outcome.index}: recovery power-cycle + setup replay"
            )
        run_dir = exp_dir.create_run_dir(outcome.index)
        run_dir.write_metadata(outcome.loop_instance)
        for result in attempt.script_results:
            run_dir.record_script(result)
    last = outcome.attempts[-1]
    record = RunRecord(
        index=outcome.index,
        loop_instance=dict(outcome.loop_instance),
        ok=last.ok,
        retried=len(outcome.attempts) > 1,
        error=last.error,
        script_results=list(last.script_results),
    )
    return record, run_dir


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------

def _shard_worker(
    worker_env: WorkerEnv,
    experiment: Experiment,
    indices: List[int],
    instances: List[Dict[str, Any]],
    on_error: str,
    recovery_policy: RetryPolicy,
) -> List[RunOutcome]:
    """Execute one shard in an isolated world: full pipeline, no disk.

    Runs in a worker process.  Builds a private testbed world, replays
    boot → tools → setup (with barrier), then executes the shard's runs
    in ascending index order.  Results travel back as picklable
    :class:`RunOutcome` payloads; the parent does all persistence.
    """
    world = worker_env.factory(**worker_env.kwargs)
    node_of = world.nodes.__getitem__
    store = SharedStore()
    extra = dict(world.context_extra or {})
    boot_nodes(experiment, node_of, world.images)
    deploy_tools(experiment, node_of)
    run_setup_phase(experiment, node_of, store, extra)
    store.check_barriers(set(experiment.role_names))
    store.reset_barriers()
    setup = extra.get("setup")
    isolation = getattr(setup, "begin_run", None)
    injector = world.fault_injector
    clock = SimClock()
    outcomes = []
    for index, instance in zip(indices, instances):
        outcomes.append(
            execute_run(
                experiment, node_of, store, extra, index, instance,
                on_error, recovery_policy, clock, injector, isolation,
            )
        )
    hypervisor = getattr(setup, "hypervisor", None)
    if hypervisor is not None:
        hypervisor.stop()
    return outcomes


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------

class ReorderBuffer:
    """Deliver indexed payloads strictly in ascending index order.

    Producers :meth:`put` payloads as they complete, in any order; every
    :meth:`drain` call delivers the consecutive ready prefix.  This is
    the determinism primitive shared by the run scheduler (merging
    worker outcomes into the result tree) and the campaign scheduler
    (merging experiment outcomes into the campaign journal): whatever
    completion order concurrency produces, the side effects happen in
    index order, so artifacts and journals are byte-identical for any
    job count and a crash always leaves a resumable prefix.
    """

    def __init__(self, total: int, deliver: Callable[[int, Any], None]):
        self._total = total
        self._deliver = deliver
        self._next = 0
        self._pending: Dict[int, Any] = {}

    @property
    def next_index(self) -> int:
        """The lowest index not yet delivered."""
        return self._next

    def complete(self) -> bool:
        """Whether every index below ``total`` has been delivered."""
        return self._next >= self._total

    def seen(self, index: int) -> bool:
        """Whether ``index`` was already delivered or is staged.

        The at-least-once executors (the broken-pool retry below and
        the distributed controller) use this to drop duplicate
        outcomes instead of tripping the duplicate guard in
        :meth:`put` — re-execution is safe, re-delivery is not.
        """
        return index < self._next or index in self._pending

    def put(self, index: int, payload: Any) -> None:
        """Stage one payload; duplicate or already-delivered indices raise."""
        if index < self._next or index in self._pending:
            raise ExperimentError(
                f"reorder buffer received index {index} twice"
            )
        if index >= self._total:
            raise ExperimentError(
                f"reorder buffer sized for {self._total} got index {index}"
            )
        self._pending[index] = payload

    def drain(self) -> None:
        """Deliver every consecutive ready payload, in index order.

        The cursor advances *before* the delivery callback runs, so a
        callback that raises (e.g. ``on_error="abort"``) leaves the
        buffer consistent with everything already delivered.
        """
        while self._next < self._total and self._next in self._pending:
            index = self._next
            payload = self._pending.pop(index)
            self._next += 1
            self._deliver(index, payload)


def build_deliver(
    runs: List[Dict[str, Any]],
    completed: Dict[int, dict],
    exp_dir: ExperimentDir,
    journal,
    handle,
    log,
    injector,
    on_error: str,
    on_run_complete: Optional[Callable] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    adopt: Optional[Callable] = None,
    cache=None,
    cache_keys: Optional[Dict[int, str]] = None,
) -> Callable[[int, Optional[RunOutcome]], None]:
    """The canonical per-run persistence step, as a reorder-buffer sink.

    Shared by the process-pool scheduler and the distributed
    controller (:mod:`repro.dist`): however outcomes were produced,
    every run is persisted, journalled, logged and reported through
    this one code path, in strict index order — which is what makes
    the result tree byte-identical across executors.  A ``None``
    payload marks a journal adoption on resume.

    When a run ``cache`` is active, every freshly produced eligible
    outcome is stored under its fingerprint from ``cache_keys`` as it
    is delivered — in index order, so the store evidence in
    ``cache.jsonl`` is executor-independent too.  Replayed hits pass
    through unchanged (the store is idempotent and skips them).
    """
    total = len(runs)
    cache_keys = cache_keys or {}

    def deliver(index: int, outcome: Optional[RunOutcome]) -> None:
        """Persist one ready run; ``None`` marks a journal adoption."""
        if outcome is None:
            record = adopt(exp_dir, index, runs[index], completed[index])
            handle.runs.append(record)
            adopt_telemetry = getattr(log, "adopt_run", None)
            if adopt_telemetry is not None and completed[index].get("dir"):
                adopt_telemetry(
                    index,
                    os.path.join(exp_dir.path, completed[index]["dir"]),
                )
            if log is not None:
                log.event(
                    f"run {index}: {runs[index]} -> ok (adopted from journal)"
                )
            if progress is not None:
                progress(index + 1, total)
            return
        record, run_dir = persist_outcome(exp_dir, outcome, log)
        handle.runs.append(record)
        if cache is not None and index in cache_keys:
            if cache.store(cache_keys[index], outcome):
                cache_evidence = getattr(log, "cache_event", None)
                if cache_evidence is not None:
                    cache_evidence(
                        "cache.store", run=index, key=cache_keys[index]
                    )
        # Re-sequence the worker's telemetry buffer in run order
        # and snapshot it, before the journal promises the run.
        merge_telemetry = getattr(log, "merge_run", None)
        if merge_telemetry is not None:
            merge_telemetry(
                index, outcome.telemetry, run_dir.path,
                health=outcome.health,
            )
        if injector is not None:
            injector.events.extend(outcome.fault_events)
        if journal is not None:
            journal.record_run(
                index, outcome.loop_instance, ok=record.ok,
                retried=record.retried, error=record.error,
                run_dir=os.path.basename(run_dir.path),
            )
        if log is not None:
            status = "ok" if record.ok else f"FAILED ({record.error})"
            log.event(f"run {index}: {outcome.loop_instance} -> {status}")
        if on_run_complete is not None:
            on_run_complete(record, run_dir.path)
        if progress is not None:
            progress(index + 1, total)
        if not record.ok and on_error == "abort":
            raise ScriptError(
                f"measurement run {index} failed: {record.error}"
            )

    return deliver


class ParallelScheduler:
    """Fan a measurement phase out over a process pool and merge back.

    The merge is a reorder buffer: outcomes arrive shard by shard in
    completion order, but run *k* is persisted, journalled, logged and
    reported strictly after every run below *k* — the artifacts of a
    parallel execution are byte-identical to a sequential one, and a
    crash leaves the same resumable journal prefix.

    A worker that dies *uncleanly* (SIGKILL, OOM kill — anything that
    breaks the pool rather than raising) is an infrastructure fault,
    not an experiment result: the pass is retried under the recovery
    policy with a fresh pool, re-running exactly the runs whose
    outcomes were lost.  Run isolation makes the re-execution
    byte-identical, so the retry is invisible in the artifacts.
    """

    def __init__(
        self,
        jobs: int,
        worker_env: WorkerEnv,
        recovery_policy: RetryPolicy,
    ):
        self.jobs = jobs
        self.worker_env = worker_env
        self.recovery_policy = recovery_policy

    def execute(
        self,
        experiment: Experiment,
        runs: List[Dict[str, Any]],
        completed: Dict[int, dict],
        exp_dir: ExperimentDir,
        journal,
        handle,
        log,
        injector,
        on_error: str,
        on_run_complete: Optional[Callable] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        adopt: Optional[Callable] = None,
        cached: Optional[Dict[int, RunOutcome]] = None,
        cache=None,
        cache_keys: Optional[Dict[int, str]] = None,
    ) -> None:
        total = len(runs)
        cached = cached or {}
        pending = [
            index for index in range(total)
            if index not in completed and index not in cached
        ]
        deliver = build_deliver(
            runs, completed, exp_dir, journal, handle, log, injector,
            on_error, on_run_complete, progress, adopt,
            cache=cache, cache_keys=cache_keys,
        )
        buffer = ReorderBuffer(total, deliver)
        for index in completed:
            buffer.put(index, None)
        # Cache hits never reach a worker: their outcomes are staged
        # up front and flow through the same delivery pipeline as
        # executed runs, in index order — a warm tree is byte-identical
        # to a cold one with zero simulator events spent.
        for index, outcome in cached.items():
            buffer.put(index, outcome)
        if not pending:
            buffer.drain()
            return

        def run_pass() -> None:
            remaining = [index for index in pending if not buffer.seen(index)]
            if not remaining:
                buffer.drain()
                return
            shards = shard_runs(remaining, self.jobs)
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                futures = [
                    pool.submit(
                        _shard_worker,
                        self.worker_env,
                        experiment,
                        shard,
                        [runs[index] for index in shard],
                        on_error,
                        self.recovery_policy,
                    )
                    for shard in shards
                ]
                buffer.drain()
                try:
                    for future in as_completed(futures):
                        for outcome in future.result():
                            # A retried pass can race a result that the
                            # broken pool already surfaced: drop dupes,
                            # re-execution is idempotent by isolation.
                            if not buffer.seen(outcome.index):
                                buffer.put(outcome.index, outcome)
                        buffer.drain()
                except BrokenProcessPool as exc:
                    lost = [i for i in pending if not buffer.seen(i)]
                    raise NodeError(
                        f"worker process died uncleanly with "
                        f"{len(lost)} run(s) unmerged: {exc}"
                    ) from exc

        try:
            self.recovery_policy.call(
                run_pass,
                retry_on=(NodeError,),
                clock=SimClock(),
                describe="parallel worker pool",
            )
        except RetryExhausted as exc:
            raise exc.last_error
