"""Exception hierarchy for the pos reproduction.

Every error raised by the library derives from :class:`PosError` so that
callers can catch framework failures with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class PosError(Exception):
    """Base class for all errors raised by this library."""


class VariableError(PosError):
    """A variable file is malformed or a referenced variable is missing."""


class YamlError(PosError):
    """The YAML-subset parser rejected a document."""


class AllocationError(PosError):
    """A node could not be allocated (conflict, unknown node, double use)."""


class CalendarError(PosError):
    """A calendar booking is invalid or conflicts with an existing one."""


class PowerError(PosError):
    """An out-of-band power/initialization operation failed."""


class TransportError(PosError):
    """A configuration-interface (SSH/SNMP/HTTP) operation failed."""


class TransportTimeout(TransportError):
    """A command did not complete within its deadline."""


class RetryExhausted(PosError):
    """A retried management-plane operation failed on every attempt."""

    def __init__(self, message: str, attempts: int = 0, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class FaultPlanError(PosError):
    """A fault-injection plan is malformed or references unknown kinds."""


class JournalError(PosError):
    """The crash-safe run journal is missing, corrupt, or mismatched."""


class NodeError(PosError):
    """An experiment host is in an unexpected lifecycle state."""


class ImageError(PosError):
    """A live image or snapshot pin could not be resolved."""


class ScriptError(PosError):
    """An experiment script failed to execute."""

    def __init__(self, message: str, exit_code: int = 1, output: str = ""):
        super().__init__(message)
        self.exit_code = exit_code
        self.output = output


class BarrierError(PosError):
    """A synchronization barrier was used incorrectly or timed out."""


class ExperimentError(PosError):
    """The experiment definition is inconsistent."""


class CampaignError(PosError):
    """A campaign spec is malformed or a campaign cannot be scheduled."""


class StudyError(PosError):
    """A study spec is malformed or a study tree is inconsistent."""


class ResultError(PosError):
    """The result tree is missing, malformed, or collides."""


class EvaluationError(PosError):
    """Result parsing or aggregation failed."""


class ParseError(EvaluationError):
    """A tool-output parser rejected its input."""


class PlotError(PosError):
    """A figure cannot be built or exported."""


class PublicationError(PosError):
    """Bundling or website generation failed."""


class TopologyError(PosError):
    """The experiment topology is invalid (unknown port, loop, …)."""


class SimulationError(PosError):
    """The discrete-event simulation reached an inconsistent state."""
