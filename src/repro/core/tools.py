"""pos utility tools deployed onto experiment hosts.

After booting, "pos deploys a set of utility tools before the setup
scripts can be loaded and executed … These tools can be used in the
setup or measurement scripts; read or communicate variables and
synchronize hosts using barriers.  Further, any command can be executed
via pos' tools.  The output of these commands is automatically captured
and uploaded to the testbed controller as a result."  (Sec. 4.4)

:class:`SharedStore` is the controller-side rendezvous: a key/value
space for communicated variables and the barrier ledger.  Each script
gets a :class:`PosTools` handle bound to its host and the store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.errors import BarrierError
from repro.netsim.host import CommandResult

__all__ = ["SharedStore", "PosTools"]

_UNSET = object()


class SharedStore:
    """Controller-side shared state for one experiment."""

    def __init__(self) -> None:
        self._variables: Dict[str, Any] = {}
        self._barriers: Dict[str, Set[str]] = {}

    # -- communicated variables ---------------------------------------------

    def set_variable(self, key: str, value: Any) -> None:
        self._variables[key] = value

    def get_variable(self, key: str, default: Any = _UNSET) -> Any:
        if key in self._variables:
            return self._variables[key]
        if default is _UNSET:
            raise KeyError(f"shared variable {key!r} was never communicated")
        return default

    def variables(self) -> Dict[str, Any]:
        return dict(self._variables)

    # -- barriers ----------------------------------------------------------------

    def barrier_arrive(self, name: str, party: str) -> None:
        self._barriers.setdefault(name, set()).add(party)

    def barrier_parties(self, name: str) -> Set[str]:
        return set(self._barriers.get(name, set()))

    def check_barriers(self, expected_parties: Set[str]) -> None:
        """Verify every used barrier was reached by every expected party.

        pos runs scripts for all hosts and "synchronizes the end of the
        setup phase between the hosts, i.e., the experiment continues
        only after all the experiment hosts have completed their setup".
        A barrier only some hosts reached means a script skipped its
        synchronization point — an experiment bug worth failing loudly.
        """
        for name, arrived in self._barriers.items():
            missing = expected_parties - arrived
            if missing:
                raise BarrierError(
                    f"barrier {name!r}: parties never arrived: "
                    f"{', '.join(sorted(missing))}"
                )
            foreign = arrived - expected_parties
            if foreign:
                raise BarrierError(
                    f"barrier {name!r}: unexpected parties: "
                    f"{', '.join(sorted(foreign))}"
                )

    def reset_barriers(self) -> None:
        """Clear the ledger between measurement runs."""
        self._barriers.clear()


class PosTools:
    """Per-host handle to the deployed utility tools.

    Everything executed or uploaded through the tools is captured and
    later written into the central result tree — the enforced artifact
    collection that guarantees publishability (R5).
    """

    def __init__(self, store: SharedStore, node, role: str):
        self._store = store
        self._node = node
        self.role = role
        #: (name, content) pairs uploaded by the script.
        self.uploads: List[Tuple[str, str]] = []
        #: every command executed through the tools, in order.
        self.command_log: List[CommandResult] = []
        #: free-form log lines emitted by the script.
        self.log_lines: List[str] = []

    # -- variables -----------------------------------------------------------

    def set_variable(self, key: str, value: Any) -> None:
        """Communicate a variable to the other experiment hosts."""
        self._store.set_variable(key, value)

    def get_variable(self, key: str, default: Any = _UNSET) -> Any:
        """Read a communicated variable."""
        if default is _UNSET:
            return self._store.get_variable(key)
        return self._store.get_variable(key, default)

    # -- synchronization ----------------------------------------------------------

    def barrier(self, name: str) -> None:
        """Announce arrival at a named synchronization point."""
        self._store.barrier_arrive(name, self.role)

    # -- command execution -----------------------------------------------------------

    def run(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        """Execute a command on this host; output is auto-captured.

        Lines starting with ``pos `` invoke the deployed utility tools
        instead of the host shell: ``pos barrier NAME``, ``pos set KEY
        VALUE``, ``pos get KEY`` and ``pos log MESSAGE`` — this is how
        bash-style :class:`~repro.core.scripts.CommandScript` scripts
        reach barriers and communicated variables.
        """
        if command.startswith("pos "):
            result = self._run_pos_tool(command)
        else:
            result = self._node.execute(command, timeout_s=timeout_s)
        self.command_log.append(result)
        return result

    def _run_pos_tool(self, command: str) -> CommandResult:
        parts = command.split(None, 3)
        verb = parts[1] if len(parts) > 1 else ""
        if verb == "barrier" and len(parts) >= 3:
            self.barrier(parts[2])
            return CommandResult(command, 0, "")
        if verb == "set" and len(parts) >= 4:
            self.set_variable(parts[2], parts[3])
            return CommandResult(command, 0, "")
        if verb == "get" and len(parts) >= 3:
            try:
                value = self._store.get_variable(parts[2])
            except KeyError as exc:
                return CommandResult(command, 1, str(exc))
            return CommandResult(command, 0, str(value))
        if verb == "log" and len(parts) >= 3:
            self.log(command.split(None, 2)[2])
            return CommandResult(command, 0, "")
        return CommandResult(
            command, 2,
            f"pos: unknown tool invocation {command!r} "
            "(expected barrier|set|get|log)",
        )

    # -- result upload ----------------------------------------------------------------

    def upload(self, name: str, content: str) -> None:
        """Store a named output with the run's results on the controller."""
        self.uploads.append((name, content))

    def log(self, message: str) -> None:
        """Append a line to the host's experiment log."""
        self.log_lines.append(message)
