"""The node agent: owns a slice of the node pool, executes run shards.

An agent is the remote half of the controller → node-agent split.  It
registers with the controller (exponential-backoff re-registration
through :class:`~repro.faults.retry.RetryPolicy`), receives dispatch
envelopes naming run indices, executes them through the *same* worker
world machinery the process-pool scheduler uses
(:class:`~repro.core.scheduler.WorkerEnv` →
:func:`~repro.core.scheduler.execute_run`), and streams each
:class:`~repro.core.scheduler.RunOutcome` back as soon as it finishes.

Two incarnations of the same logic:

* :class:`LoopbackAgent` — a cooperative state machine stepped by the
  :class:`~repro.dist.transport.LoopbackBus` pump, fully deterministic;
* :func:`agent_main` — the blocking subprocess loop behind a
  :class:`~repro.dist.transport.PipeBus` pipe.

Both consult the seeded fault plan for ``kind: agent`` strikes: a
``kill`` fires *before* the dispatched run executes, a ``kill-after``
fires after the run executed but before its result is sent — the
lost-result case at-least-once re-dispatch must absorb.  A struck
loopback agent goes permanently silent (its death is only discoverable
through lease expiry); a struck pipe agent SIGKILLs its own process.

Because every run is a pure function of its run index (the
run-isolation hook re-aligns the clock epoch and reseeds all stochastic
components), a re-executed run produces byte-identical artifacts — the
property that turns at-least-once delivery plus journal-backed dedupe
into exactly-once *effects*.
"""

from __future__ import annotations

import os
import signal
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.scheduler import (
    WorkerEnv,
    boot_nodes,
    deploy_tools,
    execute_run,
    run_setup_phase,
)
from repro.core.tools import SharedStore
from repro.faults.clock import SimClock
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.dist.transport import Envelope

__all__ = ["AgentConfig", "ShardRunner", "LoopbackAgent", "agent_main"]


@dataclass
class AgentConfig:
    """Everything one agent incarnation needs.  Must stay picklable:
    a :class:`PipeBus` ships it across the fork to :func:`agent_main`."""

    agent_id: str
    generation: int
    worker_env: WorkerEnv
    experiment: Any
    on_error: str
    recovery_policy: RetryPolicy
    #: Backoff schedule for (re-)registration attempts.  Delays are
    #: virtual rounds on a loopback bus, seconds on a pipe bus.
    register_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=8.0, jitter_fraction=0.0,
        )
    )
    #: Idle heartbeat cadence (rounds / seconds, transport-dependent).
    heartbeat_every: float = 1.0
    #: Seeded chaos plan; only ``kind: agent`` strikes are consulted
    #: here (bus verbs strike at the controller's wire).
    fault_plan: Optional[FaultPlan] = None


class ShardRunner:
    """Executes dispatched runs inside the agent's private world.

    The world is built lazily on the first run — registration must not
    pay the boot/setup cost (or fail) before the controller has even
    granted a lease — and replays the exact pipeline a pool worker
    replays: factory → boot → tool deploy → setup (with barriers),
    then :func:`execute_run` per dispatched index.
    """

    def __init__(self, config: AgentConfig):
        self._config = config
        self._world = None
        self._node_of = None
        self._store: Optional[SharedStore] = None
        self._extra: Optional[dict] = None
        self._isolation = None
        self._clock = SimClock()
        self._last_index: Optional[int] = None

    def _ensure_world(self) -> None:
        if self._world is not None:
            return
        config = self._config
        world = config.worker_env.factory(**config.worker_env.kwargs)
        node_of = world.nodes.__getitem__
        store = SharedStore()
        extra = dict(world.context_extra or {})
        boot_nodes(config.experiment, node_of, world.images)
        deploy_tools(config.experiment, node_of)
        run_setup_phase(config.experiment, node_of, store, extra)
        store.check_barriers(set(config.experiment.role_names))
        store.reset_barriers()
        setup = extra.get("setup")
        self._world = world
        self._node_of = node_of
        self._store = store
        self._extra = extra
        self._isolation = getattr(setup, "begin_run", None)

    def run(self, index: int, instance: Dict[str, Any]):
        if self._last_index is not None and index <= self._last_index:
            # A re-dispatched run is jumping backwards (or repeating):
            # the run-isolation epoch only ever fast-forwards, and any
            # run-pinned in-world fault budget is already consumed.  A
            # fresh world — boot, tools, setup, exactly what a real
            # recovery replays — restores both, so the re-execution is
            # byte-identical to the first.
            self.close()
        self._ensure_world()
        config = self._config
        outcome = execute_run(
            config.experiment, self._node_of, self._store, self._extra,
            index, instance, config.on_error, config.recovery_policy,
            self._clock, self._world.fault_injector, self._isolation,
        )
        self._last_index = index
        return outcome

    def close(self) -> None:
        if self._world is None:
            return
        hypervisor = getattr(self._extra.get("setup"), "hypervisor", None)
        if hypervisor is not None:
            hypervisor.stop()
        self._world = None


def _kill_strikes(config: AgentConfig, operation: str, index: int) -> bool:
    """Whether a seeded agent-kill fault strikes this run boundary."""
    if config.fault_plan is None:
        return False
    return config.fault_plan.fire(
        ("agent",), operation, config.agent_id, index
    ) is not None


def _register_schedule(policy: RetryPolicy) -> List[float]:
    """The (re-)registration backoff delays; never empty."""
    delays = policy.delays()
    return delays if delays else [1.0]


def _echo(
    cause: Optional[dict], config: AgentConfig, seq: int,
) -> Optional[dict]:
    """The trace context an agent stamps on an outgoing envelope.

    Child of the controller envelope that caused it: same trace id,
    parented on the causing envelope's span.  ``None`` when the agent
    has seen no traced envelope yet (registration) or when the fleet
    trace is off — the context only ever *rides* the protocol.
    """
    if cause is None:
        return None
    return {
        "id": cause.get("id"),
        "parent": cause.get("span"),
        "span": f"{config.agent_id}.g{config.generation}.e{seq}",
        "seq": seq,
    }


class LoopbackAgent:
    """Cooperative agent for the deterministic in-process bus.

    The controller's pump loop calls :meth:`step` once per round, in
    sorted agent-id order; within one step the agent (re-)registers if
    it holds no lease, drains its inbox, heartbeats, and executes *at
    most one* dispatched run — streaming its result immediately, so
    outcomes interleave across agents exactly as they would across
    machines.
    """

    def __init__(self, config: AgentConfig, send) -> None:
        self.config = config
        self.alive = True
        self.inbox: List[Envelope] = []
        self._send_raw = send
        self._runner = ShardRunner(config)
        self._registered = False
        self._queue: deque = deque()
        self._executed: List[int] = []
        self._seq = 0
        self._register_attempt = 0
        self._next_register_at: Optional[float] = None
        self._last_heartbeat: Optional[float] = None
        #: Trace context of the latest controller envelope (lease wins
        #: the race for the first one) and of the dispatch that named
        #: each run — results echo the *dispatch* context so a late
        #: duplicate stitches to the send that caused it.
        self._ctx: Optional[dict] = None
        self._run_ctx: Dict[int, Optional[dict]] = {}

    # -- helpers -------------------------------------------------------------

    def _send(
        self, kind: str, payload: Any = None, cause: Optional[dict] = None,
    ) -> None:
        env = Envelope(
            kind=kind, sender=self.config.agent_id, seq=self._seq,
            payload=payload,
            trace=_echo(cause, self.config, self._seq),
        )
        self._seq += 1
        self._send_raw(env)

    def _die(self) -> None:
        """Simulated SIGKILL: permanent silence, no goodbye on the wire."""
        self.alive = False
        self._runner.close()

    def _status_payload(self) -> dict:
        return {
            "agent": self.config.agent_id,
            "generation": self.config.generation,
            "executed": sorted(self._executed),
            "idle": not self._queue,
        }

    # -- protocol ------------------------------------------------------------

    def step(self, now: float) -> None:
        if not self.alive:
            return
        for env in self.inbox:
            if env.trace is not None:
                self._ctx = env.trace
            if env.kind == "lease":
                self._registered = True
                self._register_attempt = 0
                self._next_register_at = None
            elif env.kind == "dispatch":
                self._queue.extend(env.payload["runs"])
                for index, _ in env.payload["runs"]:
                    self._run_ctx[index] = env.trace
            elif env.kind == "shutdown":
                self.alive = False
                self._runner.close()
                return
        self.inbox = []
        if not self._registered:
            if self._next_register_at is None or now >= self._next_register_at:
                self._send("register", {
                    "agent": self.config.agent_id,
                    "generation": self.config.generation,
                })
                delays = _register_schedule(self.config.register_policy)
                delay = delays[min(self._register_attempt, len(delays) - 1)]
                self._register_attempt += 1
                self._next_register_at = now + max(1.0, delay)
            return
        if (
            self._last_heartbeat is None
            or now - self._last_heartbeat >= self.config.heartbeat_every
        ):
            self._last_heartbeat = now
            self._send("heartbeat", self._status_payload(), cause=self._ctx)
        if not self._queue:
            return
        index, instance = self._queue.popleft()
        if index in self._executed:
            # A re-dispatch of a run whose result was lost on the wire:
            # re-executing is safe (pure function of the index), but
            # the agent can short-circuit nothing — the controller
            # needs the bytes, so execute again.
            pass
        if _kill_strikes(self.config, "kill", index):
            self._die()
            return
        started = _time.perf_counter()
        outcome = self._runner.run(index, instance)
        wall_s = _time.perf_counter() - started
        self._executed.append(index)
        if _kill_strikes(self.config, "kill-after", index):
            self._die()
            return
        self._send("result", {
            "outcome": outcome,
            "generation": self.config.generation,
            "wall_s": wall_s,
        }, cause=self._run_ctx.get(index, self._ctx))
        if not self._queue:
            self._send("shard-done", self._status_payload(), cause=self._ctx)

    def close(self) -> None:
        self._runner.close()


# --------------------------------------------------------------------------
# pipe transport: real subprocess agent
# --------------------------------------------------------------------------

def agent_main(conn, config: AgentConfig) -> None:
    """Blocking agent daemon loop on the far end of a PipeBus pipe.

    Same protocol as :class:`LoopbackAgent`, on wall time.  Agent-kill
    strikes deliver a real ``SIGKILL`` to the agent's own process — the
    controller sees a broken pipe, exactly like a crashed remote
    machine.
    """
    runner = ShardRunner(config)
    seq = 0
    registered = False
    queue: deque = deque()
    executed: List[int] = []
    delays = _register_schedule(config.register_policy)
    register_attempt = 0
    next_register = 0.0
    last_heartbeat: Optional[float] = None
    ctx: Optional[dict] = None
    run_ctx: Dict[int, Optional[dict]] = {}

    def send(
        kind: str, payload: Any = None, cause: Optional[dict] = None,
    ) -> bool:
        nonlocal seq
        env = Envelope(kind=kind, sender=config.agent_id, seq=seq,
                       payload=payload, trace=_echo(cause, config, seq))
        seq += 1
        try:
            conn.send(env)
            return True
        except (BrokenPipeError, OSError):
            return False

    def status() -> dict:
        return {
            "agent": config.agent_id,
            "generation": config.generation,
            "executed": sorted(executed),
            "idle": not queue,
        }

    try:
        while True:
            now = _time.monotonic()
            if not registered and now >= next_register:
                if not send("register", {
                    "agent": config.agent_id,
                    "generation": config.generation,
                }):
                    return
                delay = delays[min(register_attempt, len(delays) - 1)]
                register_attempt += 1
                # Wall-time backoff is scaled down: the loopback default
                # counts virtual rounds, a subprocess should re-register
                # within milliseconds.
                next_register = now + min(delay, 0.05 * (register_attempt))
            drained = False
            while conn.poll(0.0 if (registered and queue) else 0.01):
                try:
                    env = conn.recv()
                except (EOFError, OSError):
                    return
                drained = True
                if env.trace is not None:
                    ctx = env.trace
                if env.kind == "lease":
                    registered = True
                    register_attempt = 0
                elif env.kind == "dispatch":
                    queue.extend(env.payload["runs"])
                    for index, _ in env.payload["runs"]:
                        run_ctx[index] = env.trace
                elif env.kind == "shutdown":
                    return
            if not registered:
                continue
            if (
                last_heartbeat is None
                or now - last_heartbeat >= config.heartbeat_every
            ):
                last_heartbeat = now
                if not send("heartbeat", status(), cause=ctx):
                    return
            if not queue:
                if not drained:
                    _time.sleep(0.002)
                continue
            index, instance = queue.popleft()
            if _kill_strikes(config, "kill", index):
                os.kill(os.getpid(), signal.SIGKILL)
            started = _time.perf_counter()
            outcome = runner.run(index, instance)
            wall_s = _time.perf_counter() - started
            executed.append(index)
            if _kill_strikes(config, "kill-after", index):
                os.kill(os.getpid(), signal.SIGKILL)
            if not send("result", {
                "outcome": outcome,
                "generation": config.generation,
                "wall_s": wall_s,
            }, cause=run_ctx.get(index, ctx)):
                return
            if not queue and not send("shard-done", status()):
                return
    finally:
        runner.close()
        try:
            conn.close()
        except OSError:
            pass
