"""The distributed run controller: leases, re-dispatch, dedupe.

:class:`DistScheduler` is a drop-in peer of
:class:`~repro.core.scheduler.ParallelScheduler` — same ``execute``
signature, called from the same place in the experiment controller —
but instead of a process pool it drives a fleet of node agents over a
message :class:`~repro.dist.transport.Bus`:

* the pending run indices are sharded round-robin and dispatched to
  agents as they register;
* every agent holds a **lease** renewed by any message it sends; a
  lease that expires means the agent is presumed dead, its outstanding
  runs are orphaned and re-dispatched to survivors (after the
  transport fences the old incarnation);
* delivery is **at-least-once** — dropped results are detected by
  reconciling the agent's executed-set against the delivered-set and
  re-dispatching the difference — made safe by **idempotent dedupe**:
  a run index already delivered (or journalled by a previous,
  crashed controller execution) is dropped on arrival, never
  re-persisted;
* agents that die repeatedly are **quarantined** after a threshold and
  their work migrates to the survivors; if every agent is quarantined
  while work remains, the experiment fails loudly.

Determinism contract: outcomes are merged through the same
:class:`~repro.core.scheduler.ReorderBuffer` +
:func:`~repro.core.scheduler.build_deliver` pipeline as every other
executor, in strict run-index order, and each run is a pure function of
its index — so the merged artifact tree is byte-identical for any agent
count, any placement, and any crash/re-dispatch schedule, including a
crash + ``--resume`` of the controller itself.  The *evidence* of the
distributed execution (who ran what, who died when) goes to the
``dispatch.jsonl`` sidecar, which is deliberately outside that
contract.
"""

from __future__ import annotations

import copy
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.errors import ExperimentError
from repro.core.scheduler import (
    ReorderBuffer,
    WorkerEnv,
    build_deliver,
    shard_runs,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.dist.agent import AgentConfig, LoopbackAgent
from repro.dist.transport import (
    BUS_FAULT_OPERATIONS,
    ENVELOPE_KINDS,
    Envelope,
    LoopbackBus,
    PipeBus,
    resolve_agents_env,
)

__all__ = [
    "AgentState",
    "DistScheduler",
    "resolve_agents",
    "validate_dist_fault_plan",
]

TRANSPORTS = ("loopback", "pipe")

#: Agent-kill operations understood by the agent-side fault check.
AGENT_FAULT_OPERATIONS = ("kill", "kill-after")


def resolve_agents(agents: Optional[int]) -> int:
    """Resolve the agent count: explicit value, else ``POS_AGENTS``, else 0.

    Zero means the distributed plane is off (the default); any positive
    count fans the measurement phase out to that many node agents.
    """
    if agents is None:
        agents = resolve_agents_env()
    if agents < 0:
        raise ExperimentError(f"agents must be non-negative, got {agents}")
    return agents


def validate_dist_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Reject chaos plans that would strike outside the dist plane.

    The ``--dist-fault-plan`` is consulted only at the transport wire
    (bus verbs) and at the agent run boundary (``kind: agent``); specs
    for the in-world kinds (power, script, …) belong in the regular
    ``--fault-plan`` and would silently never fire here.
    """
    if plan is None:
        return
    for position, spec in enumerate(plan.specs):
        if spec.kind == "agent":
            if spec.operation is not None and (
                spec.operation not in AGENT_FAULT_OPERATIONS
            ):
                raise ExperimentError(
                    f"dist fault spec #{position}: agent operation must be "
                    f"one of {', '.join(AGENT_FAULT_OPERATIONS)}, "
                    f"got {spec.operation!r}"
                )
        elif spec.kind == "transport":
            operation = spec.operation
            if operation is None:
                raise ExperimentError(
                    f"dist fault spec #{position}: transport specs need an "
                    f"explicit bus operation "
                    f"({', '.join(BUS_FAULT_OPERATIONS)})"
                )
            verb, _, env_kind = operation.partition(":")
            if verb not in BUS_FAULT_OPERATIONS:
                raise ExperimentError(
                    f"dist fault spec #{position}: unknown bus operation "
                    f"{verb!r} (known: {', '.join(BUS_FAULT_OPERATIONS)})"
                )
            if env_kind and env_kind not in ENVELOPE_KINDS:
                raise ExperimentError(
                    f"dist fault spec #{position}: unknown envelope kind "
                    f"{env_kind!r} (known: {', '.join(ENVELOPE_KINDS)})"
                )
        else:
            raise ExperimentError(
                f"dist fault spec #{position}: kind {spec.kind!r} strikes "
                f"the in-world management plane; put it in the regular "
                f"fault plan (--fault-plan), not the dist chaos plan"
            )


@dataclass
class AgentState:
    """The controller's book on one agent identity (across incarnations)."""

    agent_id: str
    generation: int = 0
    registered: bool = False
    lease_expires: Optional[float] = None
    assigned: Set[int] = field(default_factory=set)
    failures: int = 0
    quarantined: bool = False


class DistScheduler:
    """Dispatch run shards to leased node agents; merge byte-identically.

    Same ``execute`` contract as the process-pool scheduler; the fleet,
    transport and chaos plan are fixed at construction.
    """

    def __init__(
        self,
        agents: int,
        worker_env: WorkerEnv,
        recovery_policy: RetryPolicy,
        transport: str = "loopback",
        fault_plan: Optional[FaultPlan] = None,
        quarantine_threshold: int = 3,
        lease_ttl: Optional[float] = None,
        heartbeat_every: Optional[float] = None,
        register_policy: Optional[RetryPolicy] = None,
        redispatch_limit: int = 5,
        stall_timeout: Optional[float] = None,
    ):
        if agents < 1:
            raise ExperimentError(f"agents must be at least 1, got {agents}")
        if transport not in TRANSPORTS:
            raise ExperimentError(
                f"unknown transport {transport!r} (known: {', '.join(TRANSPORTS)})"
            )
        if quarantine_threshold < 1:
            raise ExperimentError("quarantine_threshold must be at least 1")
        validate_dist_fault_plan(fault_plan)
        self.agents = agents
        self.worker_env = worker_env
        self.recovery_policy = recovery_policy
        self.transport = transport
        self.fault_plan = fault_plan
        self.quarantine_threshold = quarantine_threshold
        self.redispatch_limit = redispatch_limit
        loopback = transport == "loopback"
        # Clock units are virtual rounds on loopback, seconds on pipe.
        self.lease_ttl = lease_ttl if lease_ttl is not None else (
            8.0 if loopback else 3.0
        )
        self.heartbeat_every = heartbeat_every if heartbeat_every is not None else (
            1.0 if loopback else 0.5
        )
        self.register_policy = register_policy if register_policy is not None else (
            RetryPolicy(
                max_attempts=6, base_delay_s=1.0, multiplier=2.0,
                max_delay_s=8.0, jitter_fraction=0.0,
            )
        )
        self.stall_timeout = stall_timeout if stall_timeout is not None else (
            200.0 if loopback else 30.0
        )
        #: One chaos-plan copy per agent *identity*, persisting across
        #: incarnations on loopback so firing budgets (e.g. a
        #: ``times: 1`` kill) are consumed once per identity.  A pipe
        #: agent gets the copy pickled at spawn time — a real remote
        #: daemon cannot share budget state either.
        self._agent_plans: Dict[str, Optional[FaultPlan]] = {}

    # -- wiring ----------------------------------------------------------

    def _agent_plan(self, agent_id: str) -> Optional[FaultPlan]:
        if agent_id not in self._agent_plans:
            self._agent_plans[agent_id] = (
                None if self.fault_plan is None
                else copy.deepcopy(self.fault_plan)
            )
        return self._agent_plans[agent_id]

    def _agent_config(
        self, agent_id: str, generation: int, experiment, on_error: str,
    ) -> AgentConfig:
        return AgentConfig(
            agent_id=agent_id,
            generation=generation,
            worker_env=self.worker_env,
            experiment=experiment,
            on_error=on_error,
            recovery_policy=self.recovery_policy,
            register_policy=self.register_policy,
            heartbeat_every=self.heartbeat_every,
            fault_plan=self._agent_plan(agent_id),
        )

    def _make_bus(self, experiment, on_error: str):
        if self.transport == "loopback":
            def factory(agent_id: str, generation: int, send):
                return LoopbackAgent(
                    self._agent_config(agent_id, generation, experiment, on_error),
                    send,
                )

            return LoopbackBus(factory, fault_plan=self.fault_plan)

        def config(agent_id: str, generation: int) -> AgentConfig:
            return self._agent_config(agent_id, generation, experiment, on_error)

        return PipeBus(config, fault_plan=self.fault_plan)

    # -- execution -------------------------------------------------------

    def execute(
        self,
        experiment,
        runs: List[Dict[str, Any]],
        completed: Dict[int, dict],
        exp_dir,
        journal,
        handle,
        log,
        injector,
        on_error: str,
        on_run_complete: Optional[Callable] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        adopt: Optional[Callable] = None,
        cached: Optional[Dict[int, Any]] = None,
        cache=None,
        cache_keys: Optional[Dict[int, str]] = None,
    ) -> None:
        total = len(runs)
        cached = cached or {}
        pending = [
            index for index in range(total)
            if index not in completed and index not in cached
        ]
        deliver = build_deliver(
            runs, completed, exp_dir, journal, handle, log, injector,
            on_error, on_run_complete, progress, adopt,
            cache=cache, cache_keys=cache_keys,
        )
        buffer = ReorderBuffer(total, deliver)
        for index in completed:
            buffer.put(index, None)
        # Cache hits never reach an agent: staged up front, delivered
        # through the same pipeline as agent results, in index order.
        for index, outcome in cached.items():
            buffer.put(index, outcome)
        if not pending:
            buffer.drain()
            return

        def evidence(event: str, **fields: Any) -> None:
            sink = getattr(log, "dispatch_event", None)
            if sink is not None:
                sink(event, **fields)

        # The causal trace context stamped on every controller envelope
        # (and echoed back by the agents); real transport-clock timings
        # of the pump go to the fleet-trace-wall.jsonl sidecar.  Both
        # duck-typed like evidence(): any telemetry-less log disables
        # them wholesale.
        fleet_context = getattr(log, "fleet_context", None)
        trace_id = fleet_context() if fleet_context is not None else None
        wall_sink = getattr(log, "fleet_wall_event", None)

        # Journal-backed dedupe: everything the (possibly crashed,
        # resumed) journal already promised — and every cache hit staged
        # above — is delivered once and never re-persisted, no matter
        # how often an agent re-produces it.
        delivered: Set[int] = set(completed) | set(cached)
        agent_count = min(self.agents, len(pending))
        states = {
            f"agent-{position:02d}": AgentState(f"agent-{position:02d}")
            for position in range(agent_count)
        }
        shards = deque(shard_runs(pending, agent_count))
        orphans: List[int] = []
        redispatches: Dict[int, int] = {}
        controller_seq = 0
        bus = self._make_bus(experiment, on_error)
        last_progress = bus.now()

        def wall(event: str, **fields: Any) -> None:
            if wall_sink is not None:
                wall_sink(event, t=bus.now(), trace=trace_id, **fields)

        def send(agent_id: str, kind: str, payload: Any = None) -> None:
            nonlocal controller_seq
            controller_seq += 1
            trace = None if trace_id is None else {
                "id": trace_id,
                "parent": "root",
                "span": f"env-{controller_seq}",
                "seq": controller_seq,
            }
            bus.send(agent_id, Envelope(
                kind=kind, sender="controller", seq=controller_seq,
                payload=payload, trace=trace,
            ))
            fields: Dict[str, Any] = {"kind": kind, "agent": agent_id}
            if kind == "dispatch":
                fields["runs"] = [index for index, _ in payload["runs"]]
            if trace is not None:
                fields["span"] = trace["span"]
            wall("send", **fields)

        def note_delivered(before: int) -> None:
            """Stamp the instant each run cleared the reorder buffer."""
            for index in range(before, buffer.next_index):
                wall("deliver", run=index)

        def renew(state: AgentState) -> None:
            state.lease_expires = bus.now() + self.lease_ttl

        def give(state: AgentState, indices: List[int], reason: str) -> None:
            state.assigned.update(indices)
            send(state.agent_id, "dispatch", {
                "runs": [(index, runs[index]) for index in indices],
            })
            evidence(
                "dispatch", agent=state.agent_id,
                generation=state.generation, runs=list(indices),
                reason=reason,
            )

        def budget(indices: List[int]) -> None:
            for index in indices:
                redispatches[index] = redispatches.get(index, 0) + 1
                if redispatches[index] > self.redispatch_limit:
                    raise ExperimentError(
                        f"run {index} re-dispatched {redispatches[index] - 1} "
                        f"times without a delivered result; transport or "
                        f"agents are too unreliable to make progress"
                    )

        def reconcile(state: AgentState, executed: List[int]) -> None:
            """Re-dispatch assigned runs an *idle* agent cannot account
            for — the at-least-once leg.  An idle agent's undelivered
            assignment means either its result was dropped on the wire
            (``index in executed``) or the dispatch itself never
            arrived; both are cured by sending the work again, and the
            delivered-set dedupe absorbs any double execution."""
            executed_set = set(executed)
            lost = sorted(
                index for index in state.assigned if index not in delivered
            )
            if not lost:
                return
            budget(lost)
            evidence(
                "redispatch", agent=state.agent_id, runs=lost,
                reason=(
                    "lost-result"
                    if all(index in executed_set for index in lost)
                    else "lost-dispatch"
                ),
            )
            send(state.agent_id, "dispatch", {
                "runs": [(index, runs[index]) for index in lost],
            })

        def on_death(state: AgentState, reason: str) -> None:
            if state.quarantined:
                return
            was_registered = state.registered
            state.registered = False
            state.lease_expires = None
            orphaned = sorted(
                index for index in state.assigned if index not in delivered
            )
            state.assigned = set()
            orphans.extend(orphaned)
            state.failures += 1
            evidence(
                "agent-dead", agent=state.agent_id,
                generation=state.generation, reason=reason,
                registered=was_registered, orphaned=orphaned,
                failures=state.failures,
            )
            wall(
                "death", agent=state.agent_id, reason=reason,
                orphaned=orphaned,
            )
            if state.failures >= self.quarantine_threshold:
                state.quarantined = True
                evidence(
                    "quarantine", agent=state.agent_id,
                    failures=state.failures,
                )
                return
            # Fence-then-respawn: the transport guarantees the old
            # incarnation is silenced before a new one takes the id,
            # and the agent re-registers under RetryPolicy backoff.
            state.generation += 1
            bus.spawn(state.agent_id, state.generation)
            evidence(
                "agent-spawn", agent=state.agent_id,
                generation=state.generation,
            )

        def handle(env: Envelope) -> None:
            nonlocal last_progress
            state = states.get(env.sender)
            if state is None:
                return
            if env.kind != "result":
                wall("recv", kind=env.kind, agent=env.sender, ctx=env.trace)
            if env.kind == "register":
                generation = env.payload["generation"]
                if state.quarantined or generation < state.generation:
                    return  # a stale or banned incarnation gets no lease
                state.registered = True
                state.generation = generation
                renew(state)
                last_progress = bus.now()
                evidence(
                    "register", agent=state.agent_id, generation=generation,
                )
                send(state.agent_id, "lease", {
                    "ttl": self.lease_ttl, "generation": generation,
                })
                if not state.assigned and shards:
                    give(state, shards.popleft(), reason="shard")
            elif env.kind == "heartbeat":
                if (
                    not state.registered
                    or env.payload["generation"] != state.generation
                ):
                    return
                renew(state)
                if env.payload.get("idle"):
                    reconcile(state, env.payload.get("executed") or [])
            elif env.kind == "result":
                outcome = env.payload["outcome"]
                index = outcome.index
                wall(
                    "recv", kind="result", agent=env.sender, run=index,
                    wall_s=env.payload.get("wall_s"), ctx=env.trace,
                )
                if state.registered:
                    renew(state)
                for other in states.values():
                    other.assigned.discard(index)
                if index in delivered:
                    evidence(
                        "duplicate-dropped", agent=state.agent_id, run=index,
                    )
                    wall("duplicate", agent=env.sender, run=index)
                    return
                delivered.add(index)
                last_progress = bus.now()
                evidence(
                    "result", agent=state.agent_id,
                    generation=env.payload.get("generation"), run=index,
                )
                before = buffer.next_index
                buffer.put(index, outcome)
                buffer.drain()
                note_delivered(before)
            elif env.kind == "shard-done":
                if state.registered:
                    renew(state)
                evidence(
                    "shard-done", agent=state.agent_id,
                    executed=list(env.payload.get("executed") or []),
                )
                reconcile(state, env.payload.get("executed") or [])

        def assign_strays() -> None:
            candidates = [
                state for state in states.values()
                if state.registered and not state.quarantined
            ]
            if not candidates:
                if all(state.quarantined for state in states.values()):
                    outstanding = sum(
                        1 for index in pending if index not in delivered
                    )
                    raise ExperimentError(
                        f"every agent is quarantined with {outstanding} "
                        f"run(s) outstanding; raise --agents or fix the fleet"
                    )
                return
            while shards:
                target = min(
                    candidates,
                    key=lambda state: (len(state.assigned), state.agent_id),
                )
                give(target, shards.popleft(), reason="late-shard")
            if orphans:
                batch = sorted(
                    {index for index in orphans if index not in delivered}
                )
                orphans.clear()
                if batch:
                    budget(batch)
                    target = min(
                        candidates,
                        key=lambda state: (len(state.assigned), state.agent_id),
                    )
                    give(target, batch, reason="redispatch")

        try:
            wall(
                "begin", runs=len(pending), agents=agent_count,
                transport=self.transport,
            )
            for agent_id in sorted(states):
                bus.spawn(agent_id, 0)
                evidence("agent-spawn", agent=agent_id, generation=0)
            while not buffer.complete():
                bus.advance()
                inbound, dead = bus.poll()
                for agent_id in dead:
                    if agent_id in states:
                        on_death(states[agent_id], "transport-closed")
                for env in inbound:
                    handle(env)
                now = bus.now()
                for state in states.values():
                    if (
                        state.registered
                        and state.lease_expires is not None
                        and now > state.lease_expires
                    ):
                        on_death(state, "lease-expired")
                assign_strays()
                bus.step()
                if bus.now() - last_progress > self.stall_timeout:
                    outstanding = sorted(
                        index for index in pending if index not in delivered
                    )
                    raise ExperimentError(
                        f"distributed execution stalled: no progress for "
                        f"{self.stall_timeout:g} clock units with runs "
                        f"{outstanding} outstanding"
                    )
            evidence(
                "complete",
                delivered=len(delivered),
                redispatched=sum(redispatches.values()),
            )
            wall("complete", delivered=len(delivered))
        finally:
            for state in states.values():
                if state.registered:
                    send(state.agent_id, "shutdown")
            bus.step()
            bus.close()
