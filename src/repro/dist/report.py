"""Read-side of the distributed plane: summarize dispatch evidence.

``pos agents status <dir>`` digests the ``dispatch.jsonl`` evidence
sidecar of an experiment into a per-agent fleet report: incarnations,
runs delivered, deaths (and why), re-dispatches, quarantines.  The
sidecar is append-only across resumes, so the report covers the whole
history of the experiment, crashes included.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core.errors import ExperimentError
from repro.telemetry.jsonl import read_jsonl
from repro.telemetry.plane import DISPATCH_NAME

__all__ = ["agents_status", "find_dispatch_log", "format_agents_status"]


def find_dispatch_log(path: str) -> Optional[str]:
    """Locate ``dispatch.jsonl`` at ``path`` or in any experiment below."""
    direct = os.path.join(path, DISPATCH_NAME)
    if os.path.isfile(direct):
        return direct
    candidates: List[str] = []
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        if DISPATCH_NAME in filenames:
            candidates.append(os.path.join(dirpath, DISPATCH_NAME))
    return candidates[0] if candidates else None


def agents_status(path: str) -> dict:
    """Fold one experiment's dispatch evidence into a fleet summary."""
    log_path = find_dispatch_log(path)
    if log_path is None:
        raise ExperimentError(
            f"no {DISPATCH_NAME} under {path}; was the experiment run "
            f"with --agents (and POS_DISPATCH_LOG not 0)?"
        )
    agents: Dict[str, dict] = {}
    totals = {
        "events": 0,
        "results": 0,
        "duplicates_dropped": 0,
        "redispatched_runs": 0,
        "deaths": 0,
        "quarantined": 0,
        "completed": False,
    }

    def book(agent_id: str) -> dict:
        return agents.setdefault(agent_id, {
            "agent": agent_id,
            "spawns": 0,
            "generation": 0,
            "registered": False,
            "runs_delivered": 0,
            "runs_dispatched": 0,
            "redispatches": 0,
            "deaths": [],
            "quarantined": False,
        })

    # The sidecar is single-writer with one flushed write() per record,
    # so the only malformed line a reader can observe is a torn final
    # one (crashed controller, or a write in flight right now).  The
    # shared reader truncates there instead of raising — or, worse,
    # skipping interior lines and cooking the books.
    for record in read_jsonl(log_path):
        totals["events"] += 1
        event = record.get("event")
        agent_id = record.get("agent")
        entry = book(agent_id) if agent_id else None
        if event == "agent-spawn":
            entry["spawns"] += 1
            entry["generation"] = record.get("generation", 0)
        elif event == "register":
            entry["registered"] = True
            entry["generation"] = record.get("generation", 0)
        elif event == "dispatch":
            runs = record.get("runs", [])
            entry["runs_dispatched"] += len(runs)
            if record.get("reason") == "redispatch":
                # Orphaned work re-assigned after a death counts as
                # re-dispatch too, not just reconcile-driven resends.
                entry["redispatches"] += len(runs)
                totals["redispatched_runs"] += len(runs)
        elif event == "redispatch":
            entry["redispatches"] += len(record.get("runs", []))
            totals["redispatched_runs"] += len(record.get("runs", []))
        elif event == "result":
            entry["runs_delivered"] += 1
            totals["results"] += 1
        elif event == "duplicate-dropped":
            totals["duplicates_dropped"] += 1
        elif event == "agent-dead":
            entry["registered"] = False
            entry["deaths"].append(record.get("reason", "unknown"))
            totals["deaths"] += 1
        elif event == "quarantine":
            entry["quarantined"] = True
            totals["quarantined"] += 1
        elif event == "complete":
            totals["completed"] = True
            totals["redispatched_runs"] = record.get(
                "redispatched", totals["redispatched_runs"]
            )
    return {
        "path": log_path,
        "agents": [agents[agent_id] for agent_id in sorted(agents)],
        "totals": totals,
    }


def format_agents_status(status: dict) -> str:
    """Human-readable fleet report for the CLI."""
    lines = [f"dispatch evidence: {status['path']}"]
    header = (
        f"{'agent':<12} {'gen':>3} {'spawns':>6} {'done':>5} "
        f"{'redisp':>6} {'deaths':>6}  state"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in status["agents"]:
        if entry["quarantined"]:
            state = "quarantined"
        elif entry["registered"]:
            state = "registered"
        else:
            state = "gone"
        if entry["deaths"]:
            state += f" ({', '.join(entry['deaths'])})"
        lines.append(
            f"{entry['agent']:<12} {entry['generation']:>3} "
            f"{entry['spawns']:>6} {entry['runs_delivered']:>5} "
            f"{entry['redispatches']:>6} {len(entry['deaths']):>6}  {state}"
        )
    totals = status["totals"]
    lines.append(
        f"results {totals['results']} | duplicates dropped "
        f"{totals['duplicates_dropped']} | re-dispatched runs "
        f"{totals['redispatched_runs']} | deaths {totals['deaths']} | "
        f"quarantined {totals['quarantined']} | "
        f"{'complete' if totals['completed'] else 'incomplete'}"
    )
    return "\n".join(lines)
