"""Fault-tolerant distributed execution plane.

The controller → node-agent split of the run scheduler: a
:class:`~repro.dist.controller.DistScheduler` dispatches run shards to
node agents over a message :class:`~repro.dist.transport.Bus`, tracks
agents through heartbeat leases, and re-dispatches the work of crashed
or silent agents to survivors — with at-least-once delivery made safe
by idempotent, journal-backed dedupe of completed runs.  The merged
artifact tree is byte-identical for any agent count, any placement,
and any crash/re-dispatch schedule.
"""

from repro.dist.controller import (
    DistScheduler,
    resolve_agents,
    validate_dist_fault_plan,
)
from repro.dist.transport import Envelope, LoopbackBus, PipeBus

__all__ = [
    "DistScheduler",
    "Envelope",
    "LoopbackBus",
    "PipeBus",
    "resolve_agents",
    "validate_dist_fault_plan",
]
