"""Message transport between the distributed controller and its agents.

Two implementations of one small contract (:class:`Bus`):

* :class:`LoopbackBus` — in-process and fully deterministic.  Agents are
  cooperative state machines stepped by the controller's pump loop on a
  virtual round clock; message queues are plain lists.  This is the
  transport the determinism and chaos tests run on: given the same
  fault plan seed, every pump round, fault strike, lease expiry and
  re-dispatch replays identically.
* :class:`PipeBus` — real fan-out.  Each agent is a forked process on
  the far end of a :func:`multiprocessing.Pipe`; a SIGKILLed agent is
  detected through the broken pipe and through liveness polls, exactly
  like a crashed remote daemon.

Transport faults ride the existing seeded fault plane
(:mod:`repro.faults.plan`): a spec with ``kind: transport`` and an
``operation`` of ``drop``, ``duplicate`` or ``delay`` (optionally
suffixed ``drop:result`` to strike one envelope kind only) is consulted
on every send, with the agent id as the spec's ``node`` and — for
``result`` envelopes — the run index as the spec's run scope.  Faults
strike *on the wire*, so both endpoints keep believing the message was
sent: exactly the failure model at-least-once delivery plus idempotent
dedupe must absorb.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ExperimentError
from repro.faults.plan import FaultPlan

__all__ = [
    "BUS_FAULT_OPERATIONS",
    "Envelope",
    "BusFaults",
    "Bus",
    "LoopbackBus",
    "PipeBus",
]

#: The fault verbs the bus understands (spec ``operation`` values).
BUS_FAULT_OPERATIONS: Tuple[str, ...] = ("drop", "duplicate", "delay")

#: Envelope kinds, for reference and validation.
ENVELOPE_KINDS: Tuple[str, ...] = (
    "register",    # agent -> controller: request a lease
    "lease",       # controller -> agent: lease grant / renewal ack
    "dispatch",    # controller -> agent: run a list of (index, instance)
    "heartbeat",   # agent -> controller: still alive
    "result",      # agent -> controller: one finished RunOutcome
    "shard-done",  # agent -> controller: every dispatched index executed
    "shutdown",    # controller -> agent: experiment over, exit
)


@dataclass
class Envelope:
    """One message on the bus.  ``payload`` must be picklable.

    ``trace`` is the causal trace context riding every envelope once
    the controller has a live fleet trace: ``{"id": trace id,
    "parent": span id of the envelope that caused this one,
    "span": this envelope's own span id, "seq": sender-local causal
    seq}``.  Agents echo the context of the dispatch they are working
    on, so a result (or a late duplicate of one) can be stitched to
    the exact dispatch — across re-dispatches and agent generations —
    in the ``fleet-trace-wall.jsonl`` evidence.  ``None`` before the
    first lease (an agent registering knows no trace yet) and when the
    fleet trace is off; the protocol never requires it.
    """

    kind: str
    sender: str
    seq: int
    payload: Any = None
    trace: Optional[dict] = None


def _run_index(env: Envelope) -> Optional[int]:
    """The run index an envelope is about, for fault-spec run scoping."""
    if env.kind == "result":
        outcome = (env.payload or {}).get("outcome")
        return None if outcome is None else outcome.index
    return None


class BusFaults:
    """Consults a seeded :class:`FaultPlan` for every wire transfer.

    Firing state (budgets, per-spec PRNGs) lives in the one plan
    instance the controller owns, so the strike sequence is global and
    deterministic no matter how many agents the messages involve.
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self.plan = plan

    def verdict(self, env: Envelope, agent_id: str) -> str:
        """``deliver``, ``drop``, ``duplicate`` or ``delay`` for one send."""
        if self.plan is None:
            return "deliver"
        run_index = _run_index(env)
        for verb in BUS_FAULT_OPERATIONS:
            for operation in (f"{verb}:{env.kind}", verb):
                if self.plan.fire(
                    ("transport",), operation, agent_id, run_index
                ) is not None:
                    return verb
        return "deliver"


class Bus:
    """What the distributed controller needs from a transport.

    ``poll`` returns the envelopes that reached the controller since
    the last call plus the agents whose death the transport *itself*
    detected (a broken pipe).  A silently dead agent — the loopback
    bus never detects death — surfaces only through lease expiry,
    which is the point: the failure model cannot rely on the transport
    being helpful.
    """

    transport = "abstract"

    def now(self) -> float:
        raise NotImplementedError

    def advance(self) -> None:
        """One pump-round boundary: release due delayed messages."""
        raise NotImplementedError

    def send(self, agent_id: str, env: Envelope) -> None:
        raise NotImplementedError

    def poll(self) -> Tuple[List[Envelope], List[str]]:
        raise NotImplementedError

    def spawn(self, agent_id: str, generation: int) -> None:
        raise NotImplementedError

    def kill(self, agent_id: str) -> None:
        raise NotImplementedError

    def step(self) -> None:
        """Give agents execution time (loopback) or yield briefly (pipe)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


# --------------------------------------------------------------------------
# loopback: deterministic in-process agents on a virtual round clock
# --------------------------------------------------------------------------

class LoopbackBus(Bus):
    """Deterministic in-process transport for tests and chaos replay.

    ``agent_factory(agent_id, generation, send)`` must return an object
    with ``inbox`` (a list the bus appends to), ``step(now)`` (process
    messages, maybe execute one run) and ``alive`` (False once the
    agent died); ``send(env)`` is the callback the agent uses to talk
    back to the controller.  The bus owns the virtual clock: one
    :meth:`advance` per pump round.
    """

    transport = "loopback"

    def __init__(self, agent_factory, fault_plan: Optional[FaultPlan] = None):
        self._factory = agent_factory
        self._faults = BusFaults(fault_plan)
        self._agents: Dict[str, Any] = {}
        self._to_controller: List[Envelope] = []
        #: (due_round, arrival_seq, destination agent id or None, envelope)
        self._delayed: List[Tuple[float, int, Optional[str], Envelope]] = []
        self._round = 0.0
        self._arrivals = 0

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        return self._round

    def advance(self) -> None:
        self._round += 1.0
        due = [item for item in self._delayed if item[0] <= self._round]
        self._delayed = [item for item in self._delayed if item[0] > self._round]
        for __, __, destination, env in sorted(due, key=lambda item: item[1]):
            self._deliver(destination, env)

    # -- wire ----------------------------------------------------------------

    def _deliver(self, destination: Optional[str], env: Envelope) -> None:
        if destination is None:
            self._to_controller.append(env)
            return
        agent = self._agents.get(destination)
        if agent is not None and agent.alive:
            agent.inbox.append(env)

    def _transfer(self, destination: Optional[str], env: Envelope,
                  agent_id: str) -> None:
        verdict = self._faults.verdict(env, agent_id)
        if verdict == "drop":
            return
        self._deliver(destination, env)
        if verdict == "duplicate":
            self._deliver(destination, env)
        elif verdict == "delay":
            self._arrivals += 1
            self._delayed.append(
                (self._round + 1.0, self._arrivals, destination, env)
            )

    def send(self, agent_id: str, env: Envelope) -> None:
        self._transfer(agent_id, env, agent_id)

    def poll(self) -> Tuple[List[Envelope], List[str]]:
        inbound, self._to_controller = self._to_controller, []
        return inbound, []  # silent death: only leases notice

    # -- agents --------------------------------------------------------------

    def spawn(self, agent_id: str, generation: int) -> None:
        def send(env: Envelope) -> None:
            self._transfer(None, env, agent_id)

        self._agents[agent_id] = self._factory(agent_id, generation, send)

    def kill(self, agent_id: str) -> None:
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.alive = False

    def step(self) -> None:
        for agent_id in sorted(self._agents):
            agent = self._agents[agent_id]
            if agent.alive:
                agent.step(self._round)

    def close(self) -> None:
        for agent in self._agents.values():
            close = getattr(agent, "close", None)
            if close is not None:
                close()
        self._agents.clear()


# --------------------------------------------------------------------------
# pipe: one forked process per agent, real crashes, wall clock
# --------------------------------------------------------------------------

class PipeBus(Bus):
    """Real fan-out: agents are processes behind multiprocessing pipes.

    ``agent_config(agent_id, generation)`` must return a picklable work
    order for :func:`repro.dist.agent.agent_main`.  Death is detected
    both through broken pipes and through liveness polls, so a
    SIGKILLed agent is reported quickly; a *hung* agent (alive but
    silent) is still only caught by lease expiry.
    """

    transport = "pipe"

    def __init__(self, agent_config, fault_plan: Optional[FaultPlan] = None,
                 poll_timeout_s: float = 0.02):
        import multiprocessing as mp

        self._mp = mp
        self._config = agent_config
        self._faults = BusFaults(fault_plan)
        self._poll_timeout_s = poll_timeout_s
        self._procs: Dict[str, Any] = {}
        self._conns: Dict[str, Any] = {}
        self._reported_dead: set = set()
        self._delayed: List[Tuple[float, int, Optional[str], Envelope]] = []
        self._inbound_backlog: List[Envelope] = []
        self._arrivals = 0

    def now(self) -> float:
        return _time.time()

    def advance(self) -> None:
        now = self.now()
        due = [item for item in self._delayed if item[0] <= now]
        self._delayed = [item for item in self._delayed if item[0] > now]
        for __, __, destination, env in sorted(due, key=lambda item: item[1]):
            self._push(destination, env)

    def _push(self, destination: Optional[str], env: Envelope) -> None:
        if destination is None:
            # Delayed inbound envelopes are re-queued for the next poll.
            self._inbound_backlog.append(env)
            return
        conn = self._conns.get(destination)
        if conn is None:
            return
        try:
            conn.send(env)
        except (BrokenPipeError, OSError):
            pass  # death is reported by poll()

    def _transfer(self, destination: Optional[str], env: Envelope,
                  agent_id: str) -> None:
        verdict = self._faults.verdict(env, agent_id)
        if verdict == "drop":
            return
        self._push(destination, env)
        if verdict == "duplicate":
            self._push(destination, env)
        elif verdict == "delay":
            self._arrivals += 1
            self._delayed.append(
                (self.now() + 2 * self._poll_timeout_s, self._arrivals,
                 destination, env)
            )

    def send(self, agent_id: str, env: Envelope) -> None:
        self._transfer(agent_id, env, agent_id)

    def poll(self) -> Tuple[List[Envelope], List[str]]:
        from multiprocessing.connection import wait

        inbound: List[Envelope] = list(self._inbound_backlog)
        self._inbound_backlog = []
        dead: List[str] = []
        conns = {conn: agent_id for agent_id, conn in self._conns.items()}
        if conns:
            for conn in wait(list(conns), timeout=self._poll_timeout_s):
                agent_id = conns[conn]
                try:
                    while True:
                        env = conn.recv()
                        verdict = self._faults.verdict(env, agent_id)
                        if verdict == "drop":
                            pass
                        elif verdict == "duplicate":
                            inbound.extend([env, env])
                        else:
                            inbound.append(env)
                        if not conn.poll(0):
                            break
                except (EOFError, OSError):
                    dead.append(agent_id)
        for agent_id, proc in list(self._procs.items()):
            if agent_id in dead:
                continue
            if not proc.is_alive() and not self._conns[agent_id].poll(0):
                dead.append(agent_id)
        for agent_id in sorted(dead):
            self._drop_agent(agent_id)
        dead = [a for a in dead if a not in self._reported_dead]
        self._reported_dead.update(dead)
        return inbound, sorted(dead)

    def _drop_agent(self, agent_id: str) -> None:
        conn = self._conns.pop(agent_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        proc = self._procs.pop(agent_id, None)
        if proc is not None and proc.is_alive():
            # Fencing: a presumed-dead incarnation must actually be
            # dead before its id is reused and its work re-dispatched.
            proc.kill()
            proc.join(timeout=1.0)

    def spawn(self, agent_id: str, generation: int) -> None:
        self._drop_agent(agent_id)
        self._reported_dead.discard(agent_id)
        parent_conn, child_conn = self._mp.Pipe()
        from repro.dist.agent import agent_main

        proc = self._mp.Process(
            target=agent_main,
            args=(child_conn, self._config(agent_id, generation)),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[agent_id] = proc
        self._conns[agent_id] = parent_conn

    def kill(self, agent_id: str) -> None:
        proc = self._procs.get(agent_id)
        if proc is not None and proc.is_alive():
            proc.kill()

    def step(self) -> None:
        pass  # agents run on their own; poll() already waited

    def close(self) -> None:
        for agent_id in list(self._conns):
            try:
                self._conns[agent_id].send(
                    Envelope(kind="shutdown", sender="controller", seq=0)
                )
            except (BrokenPipeError, OSError):
                pass
        deadline = _time.time() + 2.0
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - _time.time()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()


# The env knob mirrors POS_JOBS: how many agents a CLI run fans out to.
POS_AGENTS_ENV = "POS_AGENTS"


def resolve_agents_env() -> int:
    raw = os.environ.get(POS_AGENTS_ENV, "0")
    try:
        return int(raw)
    except ValueError as exc:
        raise ExperimentError(
            f"{POS_AGENTS_ENV} must be an integer, got {raw!r}"
        ) from exc
