"""repro — a from-scratch reproduction of the pos framework.

"The pos Framework: A Methodology and Toolchain for Reproducible
Network Experiments" (Gallenmüller, Scholz, Stubbe, Carle — CoNEXT '21).

The package provides:

* :mod:`repro.core` — the pos methodology: scripted experiments split
  into script and variable files, calendar-backed allocation, the
  setup/measurement/evaluation workflow, and central result collection.
* :mod:`repro.testbed` — the testbed substrate: nodes with out-of-band
  power control and in-band transports, live images, direct wiring.
* :mod:`repro.netsim` — the discrete-event network simulator standing
  in for the physical hardware (NICs, links, the Linux-router DuT,
  KVM virtualization overlay).
* :mod:`repro.loadgen` — MoonGen-style (and iPerf/OSNT/pcap) traffic
  generation with MoonGen-compatible output.
* :mod:`repro.evaluation` — result parsing, aggregation, and the
  plotting library (line/histogram/CDF/HDR/violin → svg/tex/pdf).
* :mod:`repro.publication` — artifact bundling and the generated
  artifact-index website.
* :mod:`repro.casestudy` — the paper's Section 5 experiment, end to
  end, on both the pos and vpos platforms.
"""

__version__ = "1.0.0"

from repro.core import (
    Calendar,
    CommandScript,
    Controller,
    Experiment,
    PythonScript,
    ResultStore,
    Role,
    Variables,
)
from repro.core.allocation import Allocator
from repro.testbed import build_pos_pair, build_vpos_pair, default_registry

__all__ = [
    "__version__",
    "Calendar",
    "CommandScript",
    "Controller",
    "Experiment",
    "PythonScript",
    "ResultStore",
    "Role",
    "Variables",
    "Allocator",
    "build_pos_pair",
    "build_vpos_pair",
    "default_registry",
]
