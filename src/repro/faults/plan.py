"""Deterministic, seeded fault plans.

A :class:`FaultPlan` declares *which* faults strike an experiment and
*where*: each :class:`FaultSpec` names a typed fault kind, optionally
pinned to a node, a management-plane operation, and a set of run
indices, with a firing budget (``times``) and an optional probability.
Probabilistic specs draw from a PRNG seeded per spec from the plan
seed, so the same plan against the same experiment produces the same
fault sequence — flaky infrastructure, replayed exactly.

Fault kinds and the layer they strike:

========== =========================== ===============================
kind       layer / operation           effect
========== =========================== ===============================
power      power control               ``PowerError`` (BMC failure)
transport  transport connect/execute/  ``TransportError`` (session or
           file transfer               command loss)
timeout    transport execute           ``TransportTimeout`` (slow or
                                       hung command)
boot       transport connect           ``TransportError`` — the host
                                       never comes up (boot hang)
script     transport execute           the command *returns* a failing
                                       exit code (script error)
wedge      transport execute           the host wedges (OS stops
                                       responding) and the command
                                       fails — only an out-of-band
                                       power cycle recovers it
agent      distributed execution       the node agent dies (SIGKILL)
           plane (``repro.dist``)      before (``kill``) or after
                                       (``kill-after``) executing a
                                       dispatched run
========== =========================== ===============================

The ``agent`` kind — and ``transport`` specs whose ``operation`` is a
bus verb (``drop``/``duplicate``/``delay``, optionally suffixed with an
envelope kind, e.g. ``drop:result``) — only strike in the distributed
execution plane (``--dist-fault-plan``); the in-world wrappers never
consult them.

Plans load from YAML files (``--fault-plan`` on the CLI)::

    seed: 42
    faults:
      - kind: power
        node: tartu
        runs: [3]
      - kind: script
        node: tartu
        runs: [7, 11]
      - kind: timeout
        probability: 0.1
        times: 2
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import FaultPlanError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultEvent", "FaultPlan", "load_fault_plan"]

#: Every fault kind the injection plane understands.
FAULT_KINDS: Tuple[str, ...] = (
    "power",
    "transport",
    "timeout",
    "boot",
    "script",
    "wedge",
    "agent",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what strikes, where, and how often.

    ``None`` fields are wildcards: a spec with ``node=None`` matches
    every node, ``operation=None`` every operation of its layer, and
    ``runs=None`` every run index *including* the setup and boot phases
    (which carry no run index).  ``times=None`` removes the firing
    budget — the fault keeps striking until the matcher stops matching.
    """

    kind: str
    node: Optional[str] = None
    operation: Optional[str] = None
    runs: Optional[Tuple[int, ...]] = None
    times: Optional[int] = 1
    probability: float = 1.0
    message: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.runs is not None:
            object.__setattr__(self, "runs", tuple(int(r) for r in self.runs))
        if self.times is not None and self.times < 1:
            raise FaultPlanError(f"times must be positive, got {self.times}")
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )

    def matches(
        self, kinds: Sequence[str], operation: str, node: Optional[str],
        run_index: Optional[int],
    ) -> bool:
        if self.kind not in kinds:
            return False
        if self.node is not None and self.node != node:
            return False
        if self.operation is not None and self.operation != operation:
            return False
        if self.runs is not None and run_index not in self.runs:
            return False
        return True

    def describe(self) -> dict:
        info: Dict[str, Any] = {"kind": self.kind}
        if self.node is not None:
            info["node"] = self.node
        if self.operation is not None:
            info["operation"] = self.operation
        if self.runs is not None:
            info["runs"] = list(self.runs)
        info["times"] = self.times
        if self.probability < 1.0:
            info["probability"] = self.probability
        return info


@dataclass
class FaultEvent:
    """One fault that actually fired, recorded for the artifact trail."""

    kind: str
    operation: str
    node: Optional[str]
    run_index: Optional[int]
    spec_index: int

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "operation": self.operation,
            "node": self.node,
            "run_index": self.run_index,
            "spec": self.spec_index,
        }


class FaultPlan:
    """An ordered collection of fault specs with a shared seed."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self._fired: List[int] = [0] * len(self.specs)
        # One PRNG per spec, seeded from (plan seed, spec index), so
        # adding a spec never perturbs the draws of the others.
        self._rngs = [
            random.Random(f"{seed}:{index}") for index in range(len(self.specs))
        ]

    def fire(
        self,
        kinds: Sequence[str],
        operation: str,
        node: Optional[str],
        run_index: Optional[int],
    ) -> Optional[Tuple[int, FaultSpec]]:
        """Consume and return the first spec that strikes, if any."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(kinds, operation, node, run_index):
                continue
            if spec.times is not None and self._fired[index] >= spec.times:
                continue
            if spec.probability < 1.0 and self._rngs[index].random() >= spec.probability:
                continue
            self._fired[index] += 1
            return index, spec
        return None

    def fired_counts(self) -> List[int]:
        return list(self._fired)

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.describe() for spec in self.specs],
        }


def _require(mapping: dict, context: str) -> dict:
    if not isinstance(mapping, dict):
        raise FaultPlanError(f"{context}: expected a mapping, got {type(mapping).__name__}")
    return mapping


def fault_plan_from_dict(data: dict) -> FaultPlan:
    """Build a plan from a parsed plan document."""
    data = _require(data, "fault plan")
    seed = data.get("seed", 0)
    if not isinstance(seed, int):
        raise FaultPlanError(f"fault plan seed must be an integer, got {seed!r}")
    raw_specs = data.get("faults", [])
    if not isinstance(raw_specs, list):
        raise FaultPlanError("fault plan 'faults' must be a sequence")
    specs: List[FaultSpec] = []
    allowed = {"kind", "node", "operation", "runs", "times", "probability", "message"}
    for position, raw in enumerate(raw_specs):
        entry = _require(raw, f"fault #{position}")
        unknown = set(entry) - allowed
        if unknown:
            raise FaultPlanError(
                f"fault #{position}: unknown field(s) {', '.join(sorted(unknown))}"
            )
        if "kind" not in entry:
            raise FaultPlanError(f"fault #{position}: missing 'kind'")
        runs = entry.get("runs")
        if runs is not None:
            if isinstance(runs, int):
                runs = [runs]
            if not isinstance(runs, list):
                raise FaultPlanError(f"fault #{position}: 'runs' must be a list")
        specs.append(
            FaultSpec(
                kind=entry["kind"],
                node=entry.get("node"),
                operation=entry.get("operation"),
                runs=tuple(runs) if runs is not None else None,
                times=entry.get("times", 1),
                probability=float(entry.get("probability", 1.0)),
                message=entry.get("message"),
            )
        )
    return FaultPlan(specs, seed=seed)


def load_fault_plan(path: str) -> FaultPlan:
    """Load a fault plan from a YAML file (the ``--fault-plan`` format)."""
    from repro.core import yamlite
    from repro.core.errors import YamlError

    try:
        document = yamlite.load_file(path)
    except (OSError, YamlError) as exc:
        raise FaultPlanError(f"cannot load fault plan {path}: {exc}") from exc
    return fault_plan_from_dict(document)
