"""Injectable clocks for the resilience layer.

Retry backoff must not slow the test suite down and must not leak
wall-clock nondeterminism into artifacts, so every sleeping component
takes a clock object instead of calling :func:`time.sleep` directly.
:class:`SimClock` advances virtual time instantly and records every
sleep, which is what makes backoff sequences assertable; a real
deployment swaps in :class:`SystemClock`.
"""

from __future__ import annotations

import time as _time
from typing import List

__all__ = ["Clock", "SimClock", "SystemClock"]


class Clock:
    """Protocol: ``now()`` returns seconds, ``sleep(s)`` blocks for them."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SimClock(Clock):
    """Virtual time: sleeps advance the clock instantly and are logged."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds}s")
        self._now += seconds
        self.sleeps.append(seconds)


class SystemClock(Clock):
    """Real wall-clock time, for live deployments."""

    def now(self) -> float:
        return _time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)
