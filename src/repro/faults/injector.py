"""Runtime fault injection into the power and transport layers.

The :class:`FaultInjector` owns a :class:`~repro.faults.plan.FaultPlan`
and the execution context the plan matches against (the current run
index, advanced by the controller).  Transparent wrappers —
:class:`InjectedPowerControl` around any power controller,
:class:`InjectedTransport` around any transport — consult the injector
before delegating, and raise the layer's native exception when a
planned fault strikes.  Because the raised errors are the real
``PowerError``/``TransportError``/``TransportTimeout`` types, every
downstream handler (node retries, controller recovery, watchdog,
quarantine) is exercised exactly as it would be by genuine hardware
failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import PowerError, TransportError, TransportTimeout
from repro.faults.plan import FaultEvent, FaultPlan, FaultSpec
from repro.telemetry import context as _telemetry
from repro.netsim.host import CommandResult
from repro.testbed.power import PowerControl
from repro.testbed.transport import Transport

__all__ = [
    "FaultInjector",
    "InjectedPowerControl",
    "InjectedTransport",
    "install_fault_plan",
]


class FaultInjector:
    """Shared fault-firing state between the plan and the wrappers."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.run_index: Optional[int] = None
        self.events: List[FaultEvent] = []

    # -- context (driven by the controller) ---------------------------------

    def begin_run(self, index: int) -> None:
        self.run_index = index

    def end_run(self) -> None:
        self.run_index = None

    # -- firing (driven by the wrappers) ------------------------------------

    def fire(
        self, kinds, operation: str, node: Optional[str]
    ) -> Optional[FaultSpec]:
        """Return the striking spec for this operation, if the plan has one."""
        if isinstance(kinds, str):
            kinds = (kinds,)
        hit = self.plan.fire(kinds, operation, node, self.run_index)
        if hit is None:
            return None
        index, spec = hit
        self.events.append(
            FaultEvent(
                kind=spec.kind,
                operation=operation,
                node=node,
                run_index=self.run_index,
                spec_index=index,
            )
        )
        collector = _telemetry.current()
        if collector is not None:
            collector.count(f"faults.injected.{spec.kind}")
            collector.event(
                "fault", kind=spec.kind, operation=operation, node=node,
            )
        return spec

    def describe(self) -> dict:
        """Plan plus fired-event trail, for the experiment artifacts."""
        return {
            "plan": self.plan.describe(),
            "fired": [event.describe() for event in self.events],
        }


def _fault_message(spec: FaultSpec, default: str) -> str:
    return spec.message if spec.message is not None else default


class InjectedPowerControl(PowerControl):
    """Wraps a power controller; planned power faults strike before the rail."""

    def __init__(self, inner: PowerControl, injector: FaultInjector,
                 node_name: Optional[str] = None):
        # Deliberately no super().__init__: everything delegates to the
        # wrapped controller, including the host handle and counters.
        self._inner = inner
        self._injector = injector
        self._node = node_name
        self._host = getattr(inner, "_host", None)

    @property
    def protocol(self) -> str:  # type: ignore[override]
        return self._inner.protocol

    @property
    def supports_status(self) -> bool:  # type: ignore[override]
        return self._inner.supports_status

    @property
    def power_cycles(self) -> int:  # type: ignore[override]
        return self._inner.power_cycles

    @property
    def sel(self):  # type: ignore[override]
        # The System Event Log lives on the wrapped BMC, so health
        # monitoring sees injected faults and real chassis events alike.
        return self._inner.sel

    def record_event(self, sensor, event, severity="info") -> None:
        self._inner.record_event(sensor, event, severity)

    def read_sensors(self):
        return self._inner.read_sensors()

    def _maybe_fail(self, operation: str) -> None:
        spec = self._injector.fire("power", operation, self._node)
        if spec is not None:
            self._inner.record_event(
                "power",
                f"injected power failure during {operation}",
                "critical",
            )
            raise PowerError(
                _fault_message(
                    spec,
                    f"{self.protocol}: injected power failure during {operation}",
                )
            )

    def power_on(self) -> None:
        self._maybe_fail("power_on")
        self._inner.power_on()

    def power_off(self) -> None:
        self._maybe_fail("power_off")
        self._inner.power_off()

    def power_cycle(self) -> None:
        # Fault atomically *before* touching the rail, so a failed cycle
        # leaves the host in its previous state.
        self._maybe_fail("power_cycle")
        self._inner.power_cycle()

    def status(self) -> str:
        return self._inner.status()

    def describe(self) -> dict:
        info = self._inner.describe()
        info["fault_injection"] = True
        return info


class InjectedTransport(Transport):
    """Wraps a transport; planned in-band faults strike before delegation."""

    def __init__(self, inner: Transport, injector: FaultInjector,
                 node_name: Optional[str] = None):
        self._inner = inner
        self._injector = injector
        self._node = node_name
        self._host = getattr(inner, "_host", None)

    @property
    def protocol(self) -> str:  # type: ignore[override]
        return self._inner.protocol

    def connect(self) -> None:
        spec = self._injector.fire(("boot", "transport"), "connect", self._node)
        if spec is not None:
            if spec.kind == "boot":
                raise TransportError(
                    _fault_message(
                        spec,
                        f"{self.protocol}: host never came up after boot "
                        f"(injected boot hang)",
                    )
                )
            raise TransportError(
                _fault_message(
                    spec, f"{self.protocol}: injected connect failure"
                )
            )
        self._inner.connect()

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        spec = self._injector.fire(
            ("timeout", "transport", "script", "wedge"), "execute", self._node
        )
        if spec is not None:
            if spec.kind == "timeout":
                raise TransportTimeout(
                    _fault_message(
                        spec,
                        f"{self.protocol}: command {command!r} injected "
                        f"slow-command timeout",
                    )
                )
            if spec.kind == "script":
                # The command *runs* but fails: the script layer turns the
                # non-zero exit into a ScriptError, like a real tool bug.
                return CommandResult(
                    command,
                    1,
                    _fault_message(spec, "injected script error"),
                )
            if spec.kind == "wedge":
                if self._host is not None:
                    self._host.wedge()
                raise TransportError(
                    _fault_message(
                        spec,
                        f"{self.protocol}: host wedged during {command!r} "
                        f"(injected OS hang)",
                    )
                )
            raise TransportError(
                _fault_message(
                    spec, f"{self.protocol}: injected transport failure"
                )
            )
        return self._inner.execute(command, timeout_s=timeout_s)

    def put_file(self, path: str, content: str) -> None:
        spec = self._injector.fire("transport", "put_file", self._node)
        if spec is not None:
            raise TransportError(
                _fault_message(spec, f"{self.protocol}: injected upload failure")
            )
        self._inner.put_file(path, content)

    def get_file(self, path: str) -> str:
        spec = self._injector.fire("transport", "get_file", self._node)
        if spec is not None:
            raise TransportError(
                _fault_message(spec, f"{self.protocol}: injected download failure")
            )
        return self._inner.get_file(path)

    def close(self) -> None:
        self._inner.close()

    def describe(self) -> dict:
        info = self._inner.describe()
        info["fault_injection"] = True
        return info


def install_fault_plan(nodes: Dict[str, object], plan: FaultPlan) -> FaultInjector:
    """Instrument every node's power and transport with one shared injector.

    Wraps in place — the nodes keep their identity, so allocation,
    inventory, and scripts are oblivious to the injection plane.
    Returns the injector; hand it to the controller so faults can be
    matched by run index.
    """
    injector = FaultInjector(plan)
    for name, node in nodes.items():
        power = getattr(node, "power", None)
        if power is not None:
            node.power = InjectedPowerControl(power, injector, name)
        transport = getattr(node, "transport", None)
        if transport is not None:
            node.transport = InjectedTransport(transport, injector, name)
    return injector
