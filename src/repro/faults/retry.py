"""The unified retry policy (R3 management plane).

Every management-plane operation in the toolchain — power cycling a
node, (re)connecting a transport, executing a command, replaying a
recovery — retries transient failures through the same
:class:`RetryPolicy`: bounded attempts, exponential backoff with a cap,
and *deterministic* jitter.  Jitter is drawn from a seeded PRNG so a
policy produces the identical delay sequence on every invocation; the
artifact record of a flaky experiment is therefore reproducible down to
the waits.

Backoff never calls :func:`time.sleep` directly; the sleeping happens
through an injectable clock (:mod:`repro.faults.clock`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type, TypeVar

from repro.core.errors import PosError, RetryExhausted
from repro.faults.clock import Clock, SimClock
from repro.telemetry import context as _telemetry

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with a cap and deterministic jitter.

    ``max_attempts`` counts the first try: a policy with 3 attempts
    performs at most 2 retries.  The delay before retry *n* (1-based)
    is ``min(base_delay_s * multiplier**(n-1), max_delay_s)`` scaled by
    a jitter factor in ``[1 - jitter_fraction, 1 + jitter_fraction]``
    drawn from ``random.Random(seed)`` — the same policy always yields
    the same delay sequence.

    ``max_elapsed_s`` adds a *time budget* on top of the attempt
    budget: the backoff sequence is truncated so the cumulative sleep
    never exceeds it — a retry whose delay would cross the budget is
    simply not attempted.  The budget counts backoff time (the
    deterministic quantity), not the caller's execution time, so the
    truncated sequence is still a pure function of the policy.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter_fraction: float = 0.1
    seed: int = 0
    max_elapsed_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.max_elapsed_s is not None and self.max_elapsed_s < 0:
            raise ValueError("max_elapsed_s must be non-negative")

    def delays(self) -> List[float]:
        """The deterministic backoff sequence (one delay per retry).

        With ``max_elapsed_s`` set, the sequence stops at the last
        delay that keeps the cumulative backoff within the budget.
        """
        rng = random.Random(self.seed)
        sequence: List[float] = []
        elapsed = 0.0
        for attempt in range(self.max_attempts - 1):
            base = min(
                self.base_delay_s * self.multiplier ** attempt, self.max_delay_s
            )
            jitter = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
            delay = base * jitter
            if (
                self.max_elapsed_s is not None
                and elapsed + delay > self.max_elapsed_s
            ):
                break
            elapsed += delay
            sequence.append(delay)
        return sequence

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (PosError,),
        clock: Optional[Clock] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        describe: str = "operation",
    ) -> T:
        """Invoke ``fn`` under this policy.

        Exceptions matching ``retry_on`` are retried after the backoff
        delay; anything else propagates immediately.  When all attempts
        fail, :class:`~repro.core.errors.RetryExhausted` is raised,
        carrying the attempt count and the last underlying error.
        ``on_retry(attempt, error)`` fires before each backoff sleep.

        A ``max_elapsed_s`` budget shortens the attempt count: only the
        retries whose backoff fits the budget are performed.
        """
        clock = clock if clock is not None else SimClock()
        delays = self.delays()
        attempts = len(delays) + 1
        last_error: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop by design
                last_error = exc
                if attempt < attempts:
                    collector = _telemetry.current()
                    if collector is not None:
                        collector.count("retry.attempts")
                        collector.event(
                            "retry", attempt=attempt, operation=describe,
                        )
                    if on_retry is not None:
                        on_retry(attempt, exc)
                    clock.sleep(delays[attempt - 1])
        raise RetryExhausted(
            f"{describe} failed after {attempts} attempts: {last_error}",
            attempts=attempts,
            last_error=last_error,
        ) from last_error

    def describe(self) -> dict:
        """Serializable policy record for the experiment artifacts.

        ``max_elapsed_s`` only appears when set, so policies without a
        time budget keep their historical artifact bytes.
        """
        record = {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "multiplier": self.multiplier,
            "max_delay_s": self.max_delay_s,
            "jitter_fraction": self.jitter_fraction,
            "seed": self.seed,
        }
        if self.max_elapsed_s is not None:
            record["max_elapsed_s"] = self.max_elapsed_s
        return record
