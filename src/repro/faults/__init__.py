"""Resilience layer: fault injection, retry policies, simulated clocks.

The paper's R3 requirement — recovering a wedged host into a
well-defined state at any time — only means something if the toolchain
is exercised against failures.  This package provides the three pieces
the controller and testbed layers share:

* :mod:`repro.faults.clock` — injectable clocks, so retry backoff is
  testable in virtual time and deterministic in artifacts.
* :mod:`repro.faults.retry` — the unified :class:`RetryPolicy` used by
  node power cycling, transport sessions, and controller recovery.
* :mod:`repro.faults.plan` — a deterministic, seeded fault *plan*:
  typed faults (power failure, transport error, timeout, boot hang,
  script error, host wedge) matched by node, operation, and run index.
* :mod:`repro.faults.injector` — the runtime that fires planned faults
  into the power and transport layers via transparent wrappers.
"""

from repro.faults.clock import Clock, SimClock, SystemClock
from repro.faults.injector import (
    FaultInjector,
    InjectedPowerControl,
    InjectedTransport,
    install_fault_plan,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "Clock",
    "SimClock",
    "SystemClock",
    "RetryPolicy",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "load_fault_plan",
    "FaultInjector",
    "InjectedPowerControl",
    "InjectedTransport",
    "install_fault_plan",
]
