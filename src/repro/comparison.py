"""Testbed/methodology comparison — the machinery behind Table 1.

Section 6 compares pos against three testbeds (Chameleon, CloudLab,
Grid'5000) and three methodologies (OMF, NEPI, SNDZoo) on the five
requirements of Section 3.  Rather than hard-coding the table cells,
each system is described by its *capabilities* (what it actually
offers) and a small rule engine derives the support level per
requirement — so the table is a reproducible computation, and adding a
new testbed to the comparison means declaring its capabilities, not
editing a table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import PosError

__all__ = [
    "Support",
    "SystemProfile",
    "REQUIREMENTS",
    "PAPER_SYSTEMS",
    "evaluate_requirement",
    "comparison_matrix",
    "format_table",
]


class Support(enum.Enum):
    """Support level of one requirement, as printed in Table 1."""

    FULL = "full"
    PARTIAL = "partial"
    NONE = "none"
    NOT_APPLICABLE = "n.a."

    @property
    def symbol(self) -> str:
        return {
            Support.FULL: "Y",
            Support.PARTIAL: "o",
            Support.NONE: "x",
            Support.NOT_APPLICABLE: "n.a.",
        }[self]


@dataclass(frozen=True)
class SystemProfile:
    """Declared capabilities of a testbed and/or methodology."""

    name: str
    #: "testbed", "methodology", or "both" (pos is both).
    kind: str
    #: supports heterogeneous devices (servers, smartNICs, switches…).
    heterogeneous_hardware: bool = False
    #: experiment interconnect: "direct" (non-switched), "switched", or None.
    isolation: Optional[str] = None
    #: can recover nodes into a clean state (out-of-band reset + images).
    recoverable: bool = False
    #: fully scripted/automated experiment workflows.
    automation: bool = False
    #: evaluation is part of the experimental workflow.
    evaluation_in_workflow: bool = False
    #: artifacts are prepared for release: "full" (plots + website +
    #: bundle), "basic" (results collected), or None.
    publication: Optional[str] = None

    @property
    def is_testbed(self) -> bool:
        return self.kind in ("testbed", "both")

    @property
    def is_methodology(self) -> bool:
        return self.kind in ("methodology", "both")


#: The five requirements of Sec. 3, in table order.  The first three are
#: testbed properties, the last two methodology properties.
REQUIREMENTS = ["R1", "R2", "R3", "R4", "R5"]

_REQUIREMENT_TITLES = {
    "R1": "Heterogeneity",
    "R2": "Isolation",
    "R3": "Recoverability",
    "R4": "Automation",
    "R5": "Publishability",
}


def evaluate_requirement(profile: SystemProfile, requirement: str) -> Support:
    """Derive one table cell from a system's declared capabilities."""
    if requirement in ("R1", "R2", "R3") and not profile.is_testbed:
        return Support.NOT_APPLICABLE
    if requirement in ("R4", "R5") and not profile.is_methodology:
        return Support.NOT_APPLICABLE
    if requirement == "R1":
        return Support.FULL if profile.heterogeneous_hardware else Support.NONE
    if requirement == "R2":
        if profile.isolation == "direct":
            return Support.FULL
        if profile.isolation == "switched":
            return Support.PARTIAL
        return Support.NONE
    if requirement == "R3":
        return Support.FULL if profile.recoverable else Support.NONE
    if requirement == "R4":
        return Support.FULL if profile.automation else Support.NONE
    if requirement == "R5":
        if profile.publication == "full" and profile.evaluation_in_workflow:
            return Support.FULL
        if profile.evaluation_in_workflow or profile.publication:
            return Support.PARTIAL
        return Support.NONE
    raise PosError(f"unknown requirement {requirement!r}")


#: Capability declarations reproducing the paper's assessment.
PAPER_SYSTEMS: List[SystemProfile] = [
    SystemProfile(
        name="Chameleon",
        kind="testbed",
        heterogeneous_hardware=True,
        isolation="switched",
        recoverable=True,
    ),
    SystemProfile(
        name="CloudLab",
        kind="testbed",
        heterogeneous_hardware=True,
        isolation="switched",
        recoverable=True,
    ),
    SystemProfile(
        name="Grid'5000",
        kind="testbed",
        heterogeneous_hardware=True,
        isolation="switched",
        recoverable=True,
    ),
    SystemProfile(
        name="OMF",
        kind="methodology",
        automation=True,
    ),
    SystemProfile(
        name="NEPI",
        kind="methodology",
        automation=True,
    ),
    SystemProfile(
        name="SNDZoo",
        kind="methodology",
        automation=True,
        evaluation_in_workflow=True,
    ),
    SystemProfile(
        name="pos",
        kind="both",
        heterogeneous_hardware=True,
        isolation="direct",
        recoverable=True,
        automation=True,
        evaluation_in_workflow=True,
        publication="full",
    ),
]


def comparison_matrix(
    systems: Optional[List[SystemProfile]] = None,
) -> Dict[str, Dict[str, Support]]:
    """Full matrix: system name → requirement → support level."""
    systems = systems if systems is not None else PAPER_SYSTEMS
    return {
        profile.name: {
            requirement: evaluate_requirement(profile, requirement)
            for requirement in REQUIREMENTS
        }
        for profile in systems
    }


def format_table(systems: Optional[List[SystemProfile]] = None) -> str:
    """Render the comparison as the plain-text analogue of Table 1."""
    matrix = comparison_matrix(systems)
    name_width = max(len(name) for name in matrix) + 2
    header_cells = [
        f"{_REQUIREMENT_TITLES[req]} ({req})" for req in REQUIREMENTS
    ]
    widths = [max(len(cell), 6) for cell in header_cells]
    lines = [
        " " * name_width + "  ".join(
            cell.ljust(width) for cell, width in zip(header_cells, widths)
        )
    ]
    lines.append("-" * (name_width + sum(widths) + 2 * len(widths)))
    for name, row in matrix.items():
        cells = [
            row[req].symbol.ljust(width)
            for req, width in zip(REQUIREMENTS, widths)
        ]
        lines.append(name.ljust(name_width) + "  ".join(cells))
    lines.append("")
    lines.append("Y fully supported   o partially supported   "
                 "x not supported   n.a. not applicable")
    return "\n".join(lines) + "\n"
