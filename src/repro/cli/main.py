"""``pos`` command-line interface.

Mirrors the workflow of Appendix A: run the case-study experiment on a
chosen platform (with the progress bar the paper mentions), evaluate
the results into figures, publish the artifact bundle and website, and
inspect the testbed (nodes, images, topology, the Table 1 comparison).

Examples::

    pos run --platform vpos --results /tmp/results --duration 0.2
    pos evaluate --results /tmp/results/user/linux-router-forwarding-vpos/<ts>
    pos publish  --results <same path> --repo https://github.com/you/artifacts
    pos compare
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.casestudy import (
    PACKET_SIZES,
    POS_RATES,
    VPOS_RATES,
    build_environment,
    run_case_study,
)
from repro.comparison import format_table
from repro.core.errors import PosError
from repro.evaluation import load_experiment, plot_experiment
from repro.publication import publish

__all__ = ["main", "build_parser"]


def _progress_bar(done: int, total: int, width: int = 40) -> None:
    filled = int(width * done / total) if total else width
    bar = "#" * filled + "-" * (width - filled)
    sys.stdout.write(f"\r[{bar}] {done}/{total} runs")
    sys.stdout.flush()
    if done == total:
        sys.stdout.write("\n")


def _parse_int_list(text: str) -> List[int]:
    try:
        return [int(item) for item in text.split(",") if item.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers: {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pos",
        description="plain orchestrating service — reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the case-study experiment")
    run.add_argument("--platform", choices=("pos", "vpos"), default="vpos")
    run.add_argument("--results", required=True, help="result-store root directory")
    run.add_argument("--rates", type=_parse_int_list, default=None,
                     help="comma-separated offered rates in pps")
    run.add_argument("--sizes", type=_parse_int_list,
                     default=list(PACKET_SIZES), help="frame sizes in bytes")
    run.add_argument("--duration", type=float, default=0.3,
                     help="measurement duration per run, simulated seconds")
    run.add_argument("--max-runs", type=int, default=None)
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="run the measurement cross product on N parallel "
                          "worker processes (default: the POS_JOBS "
                          "environment variable, else 1); the result tree "
                          "is byte-identical for any N")
    run.add_argument("--agents", type=int, default=None, metavar="N",
                     help="fan the runs out to N node-agent daemons on the "
                          "fault-tolerant distributed plane (default: the "
                          "POS_AGENTS environment variable, else off); "
                          "mutually exclusive with --jobs > 1; the result "
                          "tree is byte-identical for any N and any agent "
                          "crash schedule")
    run.add_argument("--transport", choices=("loopback", "pipe"),
                     default="loopback",
                     help="distributed-plane transport: deterministic "
                          "in-process bus, or real agent subprocesses "
                          "behind pipes (with --agents)")
    run.add_argument("--dist-fault-plan", metavar="FILE", default=None,
                     help="YAML fault plan injecting seeded chaos into the "
                          "distributed plane only: agent kills and message "
                          "drop/duplicate/delay (kinds: agent, transport)")
    run.add_argument("--epoch", type=float, default=None, metavar="SECONDS",
                     help="pin the result-store clock to a fixed epoch so "
                          "two executions land in the same timestamp folder "
                          "(byte-identity checks across invocations)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--user", default="user")
    run.add_argument("--script-style", choices=("python", "shell"),
                     default="python",
                     help="measurement-script form (shell is exportable)")
    run.add_argument("--experiment-dir", default=None,
                     help="run a file-defined experiment folder instead of "
                          "the built-in case study")
    run.add_argument("--on-error", choices=("abort", "continue", "recover"),
                     default="abort",
                     help="what a failed measurement run does: stop the "
                          "experiment, record and move on, or power-cycle "
                          "the nodes and retry the run once")
    run.add_argument("--resume", metavar="RESULT_DIR", default=None,
                     help="continue a killed execution from its run journal; "
                          "completed runs are adopted, the rest re-executed")
    run.add_argument("--fault-plan", metavar="FILE", default=None,
                     help="YAML fault plan injecting deterministic faults "
                          "into the power/transport layers (testing R3)")
    run.add_argument("--cache", metavar="DIR", default=None,
                     help="content-addressed run cache directory (default: "
                          "the POS_RUN_CACHE_DIR environment variable, else "
                          "off); repeated (scenario, assignment, seed) "
                          "points are served from it with zero simulator "
                          "events and byte-identical artifacts; "
                          "POS_RUN_CACHE=0 disables it")

    export = sub.add_parser(
        "export", help="write the case study as a publishable artifact folder"
    )
    export.add_argument("--output", required=True, help="target directory")
    export.add_argument("--platform", choices=("pos", "vpos"), default="vpos")
    export.add_argument("--rates", type=_parse_int_list, default=None)
    export.add_argument("--sizes", type=_parse_int_list,
                        default=list(PACKET_SIZES))
    export.add_argument("--duration", type=float, default=0.3)

    evaluate = sub.add_parser("evaluate", help="generate figures from results")
    evaluate.add_argument("--results", required=True,
                          help="one experiment's timestamp folder")
    evaluate.add_argument("--formats", default="svg,tex,pdf")

    pub = sub.add_parser("publish", help="plots + website + release archive")
    pub.add_argument("--results", required=True,
                     help="one experiment's timestamp folder")
    pub.add_argument("--repo", default=None, help="repository URL to reference")

    nodes = sub.add_parser("nodes", help="list the testbed's nodes")
    nodes.add_argument("--platform", choices=("pos", "vpos"), default="pos")

    images = sub.add_parser("images", help="list registered live images")
    images.add_argument("--platform", choices=("pos", "vpos"), default="pos")

    topology = sub.add_parser("topology", help="render the testbed topology (SVG)")
    topology.add_argument("--platform", choices=("pos", "vpos"), default="pos")
    topology.add_argument("--output", required=True, help="output .svg path")

    report = sub.add_parser(
        "report",
        help="per-run provenance table reconstructed from the artifacts "
             "(journal, trace.jsonl, telemetry.json) alone",
    )
    report.add_argument("--results", required=True,
                        help="one experiment's timestamp folder")
    report.add_argument("--validate", action="store_true",
                        help="also validate the telemetry artifacts against "
                             "the checked-in JSON schemas")

    trace = sub.add_parser(
        "trace",
        help="critical-path profile of an execution from its stitched "
             "fleet trace: phase breakdown, per-agent utilization, "
             "slowest runs, cache savings",
    )
    trace.add_argument(
        "results",
        help="an experiment's timestamp folder or a campaign folder",
    )
    trace.add_argument("--top", type=int, default=5,
                       help="how many slowest runs to list (default 5)")
    trace.add_argument("--json", action="store_true",
                       help="emit the raw profile as JSON instead of text")

    status = sub.add_parser(
        "status",
        help="one-shot progress and node-health view of an experiment "
             "folder, reconstructed from the flushed artifacts alone",
    )
    status.add_argument("results", help="one experiment's timestamp folder")

    watch = sub.add_parser(
        "watch",
        help="follow an experiment folder while it executes (read-only; "
             "safe to run next to a parallel --jobs N execution)",
    )
    watch.add_argument("results", help="one experiment's timestamp folder")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between updates (default 2)")
    watch.add_argument("--max-updates", type=int, default=None,
                       help="stop after N renders even if incomplete")

    campaign = sub.add_parser(
        "campaign",
        help="multi-tenant experiment campaigns over one shared node pool",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_run = campaign_sub.add_parser(
        "run",
        help="admit and execute a campaign file against a simulated pool; "
             "artifacts are byte-identical for any --jobs N and across "
             "crash + --resume",
    )
    campaign_run.add_argument("file", help="campaign YAML file")
    campaign_run.add_argument("--results", required=True,
                              help="campaign directory (created if missing)")
    campaign_run.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="run up to N experiments concurrently "
                                   "(default: POS_JOBS, else 1)")
    campaign_run.add_argument("--agents", type=int, default=None, metavar="N",
                              help="execute each experiment's runs on N "
                                   "loopback node agents (the distributed "
                                   "plane; default: POS_AGENTS, else off)")
    campaign_run.add_argument("--resume", action="store_true",
                              help="continue a killed campaign from its "
                                   "journal; finished experiments are "
                                   "adopted, the rest re-run or resumed")
    campaign_status = campaign_sub.add_parser(
        "status",
        help="one-shot admission/progress view of a campaign directory, "
             "reconstructed from the flushed artifacts alone",
    )
    campaign_status.add_argument("results", help="campaign directory")

    study = sub.add_parser(
        "study",
        help="replicated factorial studies: run the same design N times "
             "with derived seeds, evaluate main effects and cross-"
             "replication consistency, audit and repair result trees",
    )
    study_sub = study.add_subparsers(dest="study_command", required=True)
    study_run = study_sub.add_parser(
        "run",
        help="expand a study file into N replicated campaigns and execute "
             "them; artifacts are byte-identical for any --jobs/--agents "
             "and across crash + --resume",
    )
    study_run.add_argument("file", help="study YAML file")
    study_run.add_argument("--results", required=True,
                           help="study directory (created if missing)")
    study_run.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="run up to N experiments concurrently "
                                "within each replication campaign "
                                "(default: POS_JOBS, else 1)")
    study_run.add_argument("--agents", type=int, default=None, metavar="N",
                           help="execute each experiment's runs on N "
                                "loopback node agents (default: "
                                "POS_AGENTS, else off)")
    study_run.add_argument("--resume", action="store_true",
                           help="continue a killed study from study.jsonl; "
                                "finished replications are adopted, the "
                                "rest re-run or resumed")
    study_audit = study_sub.add_parser(
        "audit",
        help="validate a study tree against its expanded design and the "
             "checked-in schemas; exits non-zero listing every hole "
             "(missing runs, torn journals, stale aggregates)",
    )
    study_audit.add_argument("results", help="study directory")
    study_audit.add_argument("--json", action="store_true",
                             help="emit the machine-readable report as "
                                  "JSON instead of text")
    study_repair = study_sub.add_parser(
        "repair",
        help="re-execute exactly the holes an audit finds, leaving every "
             "intact run byte-identical, then re-audit",
    )
    study_repair.add_argument("results", help="study directory")
    study_repair.add_argument("--jobs", type=int, default=None, metavar="N")
    study_repair.add_argument("--agents", type=int, default=None,
                              metavar="N")

    agents = sub.add_parser(
        "agents",
        help="inspect the distributed execution plane of an experiment",
    )
    agents_sub = agents.add_subparsers(dest="agents_command", required=True)
    agents_status = agents_sub.add_parser(
        "status",
        help="per-agent fleet report (spawns, deliveries, re-dispatches, "
             "deaths, quarantines) folded from the dispatch.jsonl "
             "evidence sidecar",
    )
    agents_status.add_argument(
        "results",
        help="an experiment's timestamp folder (or any directory above it)",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain a content-addressed run cache directory",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser(
        "ls", help="list cached run outcomes with their provenance"
    )
    cache_ls.add_argument("--cache", required=True, metavar="DIR",
                          help="run cache directory")
    cache_verify = cache_sub.add_parser(
        "verify",
        help="hash-check every cached outcome against its manifest",
    )
    cache_verify.add_argument("--cache", required=True, metavar="DIR",
                              help="run cache directory")
    cache_gc = cache_sub.add_parser(
        "gc",
        help="remove corrupt entries and entries from older code epochs",
    )
    cache_gc.add_argument("--cache", required=True, metavar="DIR",
                          help="run cache directory")

    diff = sub.add_parser(
        "diff",
        help="structured comparison of two experiment result trees: "
             "metrics joined run by run with robust effect sizes, "
             "health/fault/retry deltas, the sim-clock phase breakdown, "
             "and every delta attributed to a reproducibility-"
             "fingerprint change or flagged unexplained",
    )
    diff.add_argument("a", help="first experiment timestamp folder")
    diff.add_argument("b", help="second experiment timestamp folder")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      help="relative change below which a metric pair is "
                           "equal (default 0: exact agreement expected)")
    diff.add_argument("--top", type=int, default=10,
                      help="how many per-run deltas to list (default 10)")
    diff.add_argument("--json", action="store_true",
                      help="emit the raw diff as JSON instead of text")
    diff.add_argument("--save", action="store_true",
                      help="also write the diff as diff.json into B "
                           "(picked up by the published dashboard)")

    doctor = sub.add_parser(
        "doctor",
        help="automated diagnosis of one experiment tree: journal, "
             "telemetry, health ledger, and dispatch/cache evidence "
             "folded into ranked findings with evidence pointers",
    )
    doctor.add_argument("results", help="one experiment's timestamp folder")
    doctor.add_argument("--json", action="store_true",
                        help="emit the raw diagnosis as JSON instead of text")
    doctor.add_argument("--save", action="store_true",
                        help="also write the diagnosis as doctor.json into "
                             "the folder")

    perf = sub.add_parser(
        "perf",
        help="append-only performance history over benchmark snapshots "
             "with deterministic regression and change-point detection",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_record = perf_sub.add_parser(
        "record",
        help="flatten BENCH_*.json snapshots into seq-numbered records "
             "appended to the history ledger",
    )
    perf_record.add_argument("benches", nargs="+", metavar="BENCH_JSON",
                             help="benchmark snapshot file(s)")
    perf_record.add_argument("--history", required=True, metavar="DIR",
                             help="history directory (holds history.jsonl)")
    perf_trend = perf_sub.add_parser(
        "trend",
        help="per-metric series report: newest point vs robust baseline, "
             "level-shift localization; --check exits 1 on regression",
    )
    perf_trend.add_argument("--history", required=True, metavar="DIR",
                            help="history directory (holds history.jsonl)")
    perf_trend.add_argument("--threshold", type=float, default=None,
                            help="relative regression threshold "
                                 "(default 0.5)")
    perf_trend.add_argument("--json", action="store_true",
                            help="emit the raw report as JSON")
    perf_trend.add_argument("--verbose", action="store_true",
                            help="list every directed series, not only "
                                 "regressions and shifts")
    perf_trend.add_argument("--check", action="store_true",
                            help="exit non-zero when any regression is "
                                 "detected (the CI gate)")

    sub.add_parser("compare", help="print the testbed comparison (Table 1)")

    check = sub.add_parser(
        "check-replication",
        help="compare two result folders run by run (repeatability check)",
    )
    check.add_argument("--original", required=True)
    check.add_argument("--rerun", required=True)
    check.add_argument("--tolerance", type=float, default=0.05)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment_dir is not None:
        return _run_experiment_dir(args)
    rates = args.rates
    if rates is None:
        rates = POS_RATES if args.platform == "pos" else VPOS_RATES
    fault_plan = None
    dist_fault_plan = None
    if args.fault_plan is not None or args.dist_fault_plan is not None:
        from repro.faults.plan import load_fault_plan

        if args.fault_plan is not None:
            fault_plan = load_fault_plan(args.fault_plan)
        if args.dist_fault_plan is not None:
            dist_fault_plan = load_fault_plan(args.dist_fault_plan)
    epoch = args.epoch
    handle = run_case_study(
        args.platform,
        args.results,
        rates=rates,
        sizes=tuple(args.sizes),
        duration_s=args.duration,
        seed=args.seed,
        user=args.user,
        max_runs=args.max_runs,
        clock=(lambda: epoch) if epoch is not None else None,
        progress=_progress_bar,
        script_style=args.script_style,
        on_error=args.on_error,
        fault_plan=fault_plan,
        resume_path=args.resume,
        jobs=args.jobs,
        agents=args.agents,
        transport=args.transport,
        dist_fault_plan=dist_fault_plan,
        cache_dir=args.cache,
    )
    print(f"results: {handle.result_path}")
    print(f"runs completed: {handle.completed_runs}, failed: {handle.failed_runs}")
    if handle.skipped_runs:
        print(f"runs skipped: {handle.skipped_runs}")
    for node, reason in sorted(handle.quarantined.items()):
        print(f"quarantined: {node} ({reason})")
    return 0


def _run_experiment_dir(args: argparse.Namespace) -> int:
    from repro.core.expdir import load_experiment_dir

    experiment = load_experiment_dir(args.experiment_dir)
    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults.plan import load_fault_plan

        fault_plan = load_fault_plan(args.fault_plan)
    if args.agents is not None and args.agents > 0:
        raise PosError(
            "--agents needs a picklable worker-world recipe and is only "
            "available for the built-in case study (drop --experiment-dir)"
        )
    env = build_environment(
        args.platform, args.results, seed=args.seed, progress=_progress_bar,
        fault_plan=fault_plan,
    )
    try:
        if args.resume is not None:
            handle = env.controller.resume(
                experiment,
                args.resume,
                user=args.user,
                on_error=args.on_error,
                max_runs=args.max_runs,
                setup_context_extra={"setup": env.setup},
                jobs=args.jobs,
            )
        else:
            handle = env.controller.run(
                experiment,
                user=args.user,
                on_error=args.on_error,
                max_runs=args.max_runs,
                setup_context_extra={"setup": env.setup},
                jobs=args.jobs,
            )
    finally:
        if env.setup.hypervisor is not None:
            env.setup.hypervisor.stop()
    print(f"results: {handle.result_path}")
    print(f"runs completed: {handle.completed_runs}, failed: {handle.failed_runs}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.casestudy import build_case_study_experiment
    from repro.core.expdir import write_experiment_dir

    experiment = build_case_study_experiment(
        platform=args.platform,
        rates=args.rates,
        sizes=tuple(args.sizes),
        duration_s=args.duration,
        script_style="shell",
    )
    written = write_experiment_dir(experiment, args.output)
    for path in written:
        print(path)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    results = load_experiment(args.results)
    formats = tuple(fmt.strip() for fmt in args.formats.split(",") if fmt.strip())
    written = plot_experiment(results, formats=formats)
    for path in written:
        print(path)
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    report = publish(args.results, repository_url=args.repo)
    print(f"figures: {len(report.figures)}")
    print(f"manifest: {report.manifest_path}")
    for path in report.website_files:
        print(f"website: {path}")
    print(f"archive: {report.archive_path}")
    return 0


def _environment(platform: str):
    import tempfile

    return build_environment(platform, tempfile.mkdtemp(prefix="pos-cli-"))


def _cmd_nodes(args: argparse.Namespace) -> int:
    env = _environment(args.platform)
    for name in sorted(env.setup.nodes):
        node = env.setup.nodes[name]
        host = node.host
        print(
            f"{name:10s} cpu={host.cpu_model!r} cores={host.cores} "
            f"mem={host.memory_gb}GiB power={node.power.protocol} "
            f"transport={node.transport.protocol}"
        )
    return 0


def _cmd_images(args: argparse.Namespace) -> int:
    env = _environment(args.platform)
    registry = env.setup.images
    for name in registry.names():
        for version in registry.versions(name):
            spec = registry.resolve(name, version)
            print(f"{name}@{version} kernel={spec.kernel}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    env = _environment(args.platform)
    svg = env.setup.topology.to_svg()
    directory = os.path.dirname(args.output)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(args.output)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.report import render_report

    print(render_report(args.results), end="")
    if args.validate:
        from repro.telemetry.schema import SchemaError, validate_experiment

        try:
            validated = validate_experiment(args.results)
        except SchemaError as exc:
            print(f"schema violation: {exc}", file=sys.stderr)
            return 1
        print(f"schemas: {len(validated)} artifact(s) valid")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign.admission import ADMISSION_NAME
    from repro.telemetry.criticalpath import (
        analyze,
        analyze_campaign,
        render_analysis,
        render_campaign_analysis,
    )

    if os.path.isfile(os.path.join(args.results, ADMISSION_NAME)):
        analysis = analyze_campaign(args.results)
        rendered = render_campaign_analysis(analysis, top=args.top)
    elif os.path.isdir(os.path.join(args.results, "experiments")):
        # Campaign-shaped but the admission ledger is gone (pruned, or
        # the planner crashed before its first append): descending into
        # the first experiment's trace would silently mis-scope the
        # profile, so refuse with a diagnosis instead.
        from repro.telemetry.criticalpath import TraceError

        raise TraceError(
            f"{args.results} looks like a campaign folder (has "
            f"experiments/) but carries no {ADMISSION_NAME}; profile a "
            f"single experiment folder below experiments/ instead"
        )
    else:
        analysis = analyze(args.results)
        rendered = render_analysis(analysis, top=args.top)
    if args.json:
        print(_json.dumps(analysis, sort_keys=True, indent=2))
    else:
        print(rendered, end="")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.telemetry.live import render_status

    print(render_status(args.results), end="")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.telemetry.live import watch

    return watch(
        args.results,
        interval_s=args.interval,
        max_updates=args.max_updates,
    )


def _cmd_agents(args: argparse.Namespace) -> int:
    from repro.dist.report import agents_status, format_agents_status

    print(format_agents_status(agents_status(args.results)))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import campaign_status, run_campaign

    if args.campaign_command == "status":
        print(campaign_status(args.results), end="")
        return 0
    result = run_campaign(
        args.file,
        args.results,
        jobs=args.jobs,
        resume=args.resume,
        progress=_progress_bar,
        agents=args.agents,
    )
    print(f"campaign: {result.path}")
    print(
        f"experiments completed: {result.completed_experiments}, "
        f"failed: {result.failed_experiments}, rejected: {result.rejected}"
    )
    return 0 if result.ok else 1


def _cmd_study(args: argparse.Namespace) -> int:
    import json as _json

    from repro.study import (
        audit_study,
        load_study_file,
        render_audit,
        render_study,
        repair_study,
        run_study,
    )

    if args.study_command == "audit":
        report = audit_study(args.results)
        if args.json:
            print(_json.dumps(report, sort_keys=True, indent=2))
        else:
            print(render_audit(report), end="")
        return 0 if report["complete"] else 1
    if args.study_command == "repair":
        outcome = repair_study(
            args.results, jobs=args.jobs, agents=args.agents
        )
        if outcome["repaired"]:
            for hole in outcome["repaired"]:
                print(f"repaired: {hole['kind']} (rep {hole['replication']})")
        else:
            print("nothing to repair: the tree matches its design")
        print(f"study: {args.results}")
        return 0
    result = run_study(
        load_study_file(args.file),
        args.results,
        jobs=args.jobs,
        agents=args.agents,
        resume=args.resume,
        progress=_progress_bar,
    )
    print(f"study: {result.path}")
    print(
        f"replications completed: {result.completed_replications}, "
        f"failed: {result.failed_replications}"
    )
    if result.ok:
        with open(
            os.path.join(result.path, "study.json"), "r", encoding="utf-8"
        ) as handle:
            print(render_study(_json.load(handle)), end="")
    return 0 if result.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import RunCache

    cache = RunCache(args.cache)
    if args.cache_command == "ls":
        count = 0
        for entry in cache.entries():
            manifest = entry.manifest
            loop = manifest.get("loop", {})
            loop_text = " ".join(
                f"{key}={loop[key]}" for key in sorted(loop)
            ) or "-"
            scope = manifest.get("scope", {})
            print(
                f"{entry.key[:12]}  epoch={manifest.get('code_epoch', '?')} "
                f"seed={scope.get('seed', '?')} "
                f"run={manifest.get('index', '?')} {loop_text}"
            )
            count += 1
        print(f"{count} cached run(s)")
        return 0
    if args.cache_command == "verify":
        report = cache.verify()
        for key in report["corrupt"]:
            print(f"corrupt: {key}")
        print(
            f"{len(report['ok'])} ok, {len(report['corrupt'])} corrupt"
        )
        return 0 if not report["corrupt"] else 1
    result = cache.gc()
    for key in result["removed"]:
        print(f"removed: {key}")
    print(f"{len(result['removed'])} removed, {len(result['kept'])} kept")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json as _json

    from repro.telemetry.diff import DIFF_NAME, diff_experiments, render_diff

    diff = diff_experiments(args.a, args.b, tolerance=args.tolerance)
    if args.save:
        target = os.path.join(args.b, DIFF_NAME)
        with open(target, "w", encoding="utf-8") as handle:
            _json.dump(diff, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"saved: {target}", file=sys.stderr)
    if args.json:
        print(_json.dumps(diff, sort_keys=True, indent=2))
    else:
        print(render_diff(diff, top=args.top), end="")
    return 0 if diff["attribution"]["unexplained"] == 0 else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    import json as _json

    from repro.telemetry.doctor import DOCTOR_NAME, diagnose, render_diagnosis

    diagnosis = diagnose(args.results)
    if args.save:
        target = os.path.join(args.results, DOCTOR_NAME)
        with open(target, "w", encoding="utf-8") as handle:
            _json.dump(diagnosis, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"saved: {target}", file=sys.stderr)
    if args.json:
        print(_json.dumps(diagnosis, sort_keys=True, indent=2))
    else:
        print(render_diagnosis(diagnosis), end="")
    return 0 if diagnosis["verdict"] != "unhealthy" else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    import json as _json

    from repro.telemetry.perfhistory import (
        DEFAULT_THRESHOLD,
        load_history,
        record_bench,
        render_trend,
        trend,
    )

    if args.perf_command == "record":
        total = 0
        for bench_path in args.benches:
            records = record_bench(args.history, bench_path)
            total += len(records)
            print(f"{bench_path}: {len(records)} record(s)")
        print(f"recorded {total} record(s) into {args.history}")
        return 0
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    report = trend(load_history(args.history), threshold=threshold)
    if args.json:
        print(_json.dumps(report, sort_keys=True, indent=2))
    else:
        print(render_trend(report, verbose=args.verbose), end="")
    if args.check and report["regressions"]:
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    print(format_table(), end="")
    return 0


def _cmd_check_replication(args: argparse.Namespace) -> int:
    from repro.evaluation.replication import compare_experiments

    report = compare_experiments(
        load_experiment(args.original),
        load_experiment(args.rerun),
        tolerance=args.tolerance,
    )
    print(report.summary(), end="")
    return 0 if report.repeats else 1


_COMMANDS = {
    "run": _cmd_run,
    "export": _cmd_export,
    "evaluate": _cmd_evaluate,
    "publish": _cmd_publish,
    "nodes": _cmd_nodes,
    "images": _cmd_images,
    "topology": _cmd_topology,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "status": _cmd_status,
    "watch": _cmd_watch,
    "agents": _cmd_agents,
    "campaign": _cmd_campaign,
    "study": _cmd_study,
    "cache": _cmd_cache,
    "diff": _cmd_diff,
    "doctor": _cmd_doctor,
    "perf": _cmd_perf,
    "compare": _cmd_compare,
    "check-replication": _cmd_check_replication,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except PosError as exc:
        print(f"pos: error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/grep closed the pipe (e.g. `pos agents
        # status | grep -q ...`); that is their prerogative, not an
        # error.  Detach stdout so interpreter shutdown does not try to
        # flush into the dead pipe and print a spurious traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
