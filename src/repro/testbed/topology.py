"""Experiment topology: direct wiring of experiment hosts (R2).

pos isolates experiments by wiring experiment hosts directly, without
switches.  The topology object records which node ports are connected
by which interconnect (direct wire, optical L1 switch, or — for the
isolation ablation — a shared cut-through switch), validates the
wiring, instantiates the simulator links, and renders the whole thing
as the kind of entity diagram shown in Fig. 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.core.errors import TopologyError
from repro.netsim.engine import Simulator
from repro.netsim.link import CutThroughSwitchPort, DirectWire, OpticalL1Switch
from repro.testbed.node import Node

__all__ = ["Wire", "Topology", "LINK_KINDS"]

LINK_KINDS = {
    "direct": DirectWire,
    "optical-l1": OpticalL1Switch,
    "cut-through": CutThroughSwitchPort,
}


@dataclass
class Wire:
    """One cable in the topology."""

    node_a: str
    port_a: str
    node_b: str
    port_b: str
    kind: str
    link: object

    def describe(self) -> dict:
        return {
            "a": f"{self.node_a}:{self.port_a}",
            "b": f"{self.node_b}:{self.port_b}",
            "kind": self.kind,
        }


class Topology:
    """Nodes plus the physical wiring between their ports."""

    def __init__(self, sim: Simulator, controller_name: str = "controller"):
        self.sim = sim
        self.controller_name = controller_name
        self.nodes: Dict[str, Node] = {}
        self.wires: List[Wire] = []
        self._used_ports: set = set()

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def _resolve_port(self, node_name: str, port_name: str):
        node = self.nodes.get(node_name)
        if node is None:
            raise TopologyError(f"unknown node {node_name!r}")
        if node.host is None:
            raise TopologyError(f"node {node_name} has no simulated host to wire")
        iface = node.host.interfaces.get(port_name)
        if iface is None:
            raise TopologyError(f"node {node_name} has no port {port_name!r}")
        if iface.nic is None:
            raise TopologyError(
                f"port {node_name}:{port_name} has no NIC backing it"
            )
        return iface.nic

    def wire(
        self,
        node_a: str,
        port_a: str,
        node_b: str,
        port_b: str,
        kind: str = "direct",
        **link_kwargs,
    ) -> Wire:
        """Connect two ports.  Each port carries at most one cable."""
        if kind not in LINK_KINDS:
            known = ", ".join(sorted(LINK_KINDS))
            raise TopologyError(f"unknown link kind {kind!r} (known: {known})")
        for endpoint in ((node_a, port_a), (node_b, port_b)):
            if endpoint in self._used_ports:
                raise TopologyError(
                    f"port {endpoint[0]}:{endpoint[1]} is already wired"
                )
        nic_a = self._resolve_port(node_a, port_a)
        nic_b = self._resolve_port(node_b, port_b)
        link = LINK_KINDS[kind](self.sim, nic_a, nic_b, **link_kwargs)
        wire = Wire(node_a, port_a, node_b, port_b, kind, link)
        self.wires.append(wire)
        self._used_ports.add((node_a, port_a))
        self._used_ports.add((node_b, port_b))
        return wire

    def validate(self) -> None:
        """Check every experiment node is reachable through the wiring."""
        if not self.nodes:
            raise TopologyError("topology has no nodes")
        wired_nodes = set()
        for wire in self.wires:
            wired_nodes.add(wire.node_a)
            wired_nodes.add(wire.node_b)
        lonely = sorted(set(self.nodes) - wired_nodes)
        if lonely and len(self.nodes) > 1:
            raise TopologyError(f"unwired nodes: {', '.join(lonely)}")

    def describe(self) -> dict:
        """Topology record stored with the experiment artifacts (R5)."""
        return {
            "controller": self.controller_name,
            "nodes": sorted(self.nodes),
            "wires": [wire.describe() for wire in self.wires],
        }

    # -- Fig. 1 style rendering ---------------------------------------------

    def to_svg(self, width: int = 640, box_w: int = 150, box_h: int = 56) -> str:
        """Render the entity diagram: controller on top, hosts below."""
        names = sorted(self.nodes)
        columns = max(len(names), 1)
        height = 240
        gap = (width - columns * box_w) / (columns + 1)
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            '<style>text{font-family:sans-serif;font-size:13px;}'
            ".box{fill:#f5f5f5;stroke:#333;stroke-width:1.5;}"
            ".ctrl{fill:#e3ecf7;stroke:#335;}"
            ".wire{stroke:#333;stroke-width:1.5;}"
            ".mgmt{stroke:#888;stroke-width:1;stroke-dasharray:4 3;}</style>",
        ]
        ctrl_x = (width - box_w) / 2
        parts.append(
            f'<rect class="box ctrl" x="{ctrl_x:.1f}" y="20" '
            f'width="{box_w}" height="{box_h}" rx="6"/>'
        )
        parts.append(
            f'<text x="{width / 2:.1f}" y="52" text-anchor="middle">'
            f"{_escape(self.controller_name)}</text>"
        )
        positions: Dict[str, Tuple[float, float]] = {}
        for index, name in enumerate(names):
            x = gap + index * (box_w + gap)
            y = 150.0
            positions[name] = (x, y)
            parts.append(
                f'<rect class="box" x="{x:.1f}" y="{y:.1f}" '
                f'width="{box_w}" height="{box_h}" rx="6"/>'
            )
            parts.append(
                f'<text x="{x + box_w / 2:.1f}" y="{y + 33:.1f}" '
                f'text-anchor="middle">{_escape(name)}</text>'
            )
            # Management connection from the controller (dashed).
            parts.append(
                f'<line class="mgmt" x1="{width / 2:.1f}" y1="{20 + box_h}" '
                f'x2="{x + box_w / 2:.1f}" y2="{y:.1f}"/>'
            )
        for wire in self.wires:
            ax, ay = positions[wire.node_a]
            bx, by = positions[wire.node_b]
            parts.append(
                f'<line class="wire" x1="{ax + box_w / 2:.1f}" '
                f'y1="{ay + box_h:.1f}" x2="{bx + box_w / 2:.1f}" '
                f'y2="{by + box_h:.1f}" '
                f'transform="translate(0,8)"/>'
            )
        parts.append("</svg>")
        return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
