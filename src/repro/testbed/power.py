"""Out-of-band initialization interfaces (R3).

pos resets and boots servers through management APIs — IPMI in the
common case, "Intel's vPro or AMD's Pro features, or a remotely
switchable power plug" as alternatives.  The crucial property is that
these interfaces work *out of band*: they recover a host whose OS has
wedged, because they talk to the baseboard controller or the power
rail, not to the OS.

All controllers implement the :class:`PowerControl` protocol; the node
layer is indifferent to which one a device uses (R1).  A deliberately
flaky variant is provided for failure-injection tests.
"""

from __future__ import annotations


from repro.core.errors import PowerError
from repro.netsim.host import SimHost

__all__ = [
    "PowerControl",
    "IpmiController",
    "VProController",
    "AmdProController",
    "SwitchablePowerPlug",
    "FlakyPowerControl",
]


class PowerControl:
    """Common protocol for out-of-band power/initialization APIs."""

    #: Human-readable protocol name recorded in the inventory.
    protocol = "abstract"

    #: Whether the API can report chassis power status.
    supports_status = True

    def __init__(self, host: SimHost):
        self._host = host
        self.power_cycles = 0

    def power_on(self) -> None:
        """Apply power.  The node layer performs the actual image boot."""
        self._host.wedged = False
        self._host.booted = True

    def power_off(self) -> None:
        """Cut power.  Works regardless of OS state — this is the R3 path."""
        self._host.shutdown()
        self._host.wedged = False

    def power_cycle(self) -> None:
        """Hard reset: off, then on."""
        self.power_off()
        self.power_on()
        self.power_cycles += 1

    def status(self) -> str:
        """Chassis power status, 'on' or 'off'."""
        if not self.supports_status:
            raise PowerError(f"{self.protocol}: status query not supported")
        return "on" if self._host.booted else "off"

    def describe(self) -> dict:
        return {"protocol": self.protocol, "supports_status": self.supports_status}


class IpmiController(PowerControl):
    """Baseboard-management controller speaking IPMI."""

    protocol = "ipmi"


class VProController(PowerControl):
    """Intel AMT/vPro out-of-band management."""

    protocol = "intel-vpro"


class AmdProController(PowerControl):
    """AMD Pro manageability."""

    protocol = "amd-pro"


class SwitchablePowerPlug(PowerControl):
    """Remotely switchable power socket.

    The cheapest initialization interface: it can only toggle the rail
    and cannot report status, so the node layer must assume the boot
    succeeded (or verify in-band).
    """

    protocol = "power-plug"
    supports_status = False


class FlakyPowerControl(PowerControl):
    """Failure injection: the first ``failures`` operations raise.

    Models a BMC that needs retries — the controller's recovery logic
    must keep the experiment alive through transient management-plane
    errors.

    This class predates the general fault-injection plane and is kept
    as a thin compatibility shim over it: internally it is a private
    :class:`~repro.faults.plan.FaultPlan` with a single budgeted power
    fault.  New code should declare faults in a plan and instrument
    nodes with :func:`~repro.faults.injector.install_fault_plan`.
    """

    protocol = "flaky-ipmi"

    def __init__(self, host: SimHost, failures: int = 1):
        super().__init__(host)
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultSpec

        plan = FaultPlan(
            [FaultSpec(kind="power", times=failures)] if failures > 0 else []
        )
        self._injector = FaultInjector(plan)

    @property
    def _remaining_failures(self) -> int:
        spec = self._injector.plan.specs
        if not spec:
            return 0
        budget = spec[0].times or 0
        return budget - self._injector.plan.fired_counts()[0]

    def _maybe_fail(self, operation: str) -> None:
        if self._injector.fire("power", operation, None) is not None:
            raise PowerError(f"{self.protocol}: transient failure during {operation}")

    def power_on(self) -> None:
        self._maybe_fail("power_on")
        super().power_on()

    def power_off(self) -> None:
        self._maybe_fail("power_off")
        super().power_off()

    def power_cycle(self) -> None:
        # Fail atomically *before* touching the rail, so a failed cycle
        # leaves the host in its previous state.
        self._maybe_fail("power_cycle")
        super().power_cycle()
