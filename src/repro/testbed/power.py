"""Out-of-band initialization interfaces (R3).

pos resets and boots servers through management APIs — IPMI in the
common case, "Intel's vPro or AMD's Pro features, or a remotely
switchable power plug" as alternatives.  The crucial property is that
these interfaces work *out of band*: they recover a host whose OS has
wedged, because they talk to the baseboard controller or the power
rail, not to the OS.

The same property makes them the observability path of last resort:
every controller carries a small baseboard-management surface — IPMI-
style environment sensors (:meth:`PowerControl.read_sensors`) and a
System Event Log (:attr:`PowerControl.sel`) — that keeps answering
while the OS is wedged.  Both are *pure functions of observable
chassis state* (powered / wedged / core count), never of execution
history, so health artifacts derived from them stay byte-identical
under any ``--jobs N`` partition.

All controllers implement the :class:`PowerControl` protocol; the node
layer is indifferent to which one a device uses (R1).  A deliberately
flaky variant is provided for failure-injection tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.errors import PowerError
from repro.netsim.host import SimHost

__all__ = [
    "PowerControl",
    "IpmiController",
    "VProController",
    "AmdProController",
    "SwitchablePowerPlug",
    "FlakyPowerControl",
    "AMBIENT_TEMP_C",
    "TEMP_CRITICAL_C",
]

#: Sensor model of the simulated baseboard controller.  Readings depend
#: only on chassis power, wedge state and the core count, so any two
#: observations of the same chassis state are bit-identical.
AMBIENT_TEMP_C = 21.0
BASE_TEMP_C = 38.0
TEMP_PER_CORE_C = 0.5
WEDGE_TEMP_DELTA_C = 45.0
STANDBY_POWER_W = 8.0
BASE_POWER_W = 95.0
POWER_PER_CORE_W = 9.0
WEDGE_POWER_DELTA_W = 60.0
NOMINAL_FAN_RPM = 5400
MAX_FAN_RPM = 9800

#: Above this temperature the BMC logs a critical SEL record — the
#: out-of-band signature of a wedged (busy-spinning) OS.
TEMP_CRITICAL_C = 70.0


class PowerControl:
    """Common protocol for out-of-band power/initialization APIs."""

    #: Human-readable protocol name recorded in the inventory.
    protocol = "abstract"

    #: Whether the API can report chassis power status.
    supports_status = True

    def __init__(self, host: SimHost):
        self._host = host
        self.power_cycles = 0
        #: System Event Log: append-only BMC records
        #: (``{"sensor", "event", "severity"}``), one per chassis event.
        self.sel: List[Dict[str, str]] = []

    def record_event(
        self, sensor: str, event: str, severity: str = "info"
    ) -> None:
        """Append one SEL record (sensor, event text, severity)."""
        self.sel.append(
            {"sensor": sensor, "event": event, "severity": severity}
        )

    def power_on(self) -> None:
        """Apply power.  The node layer performs the actual image boot."""
        self._host.wedged = False
        self._host.booted = True
        self.record_event("chassis", "chassis power on")

    def power_off(self) -> None:
        """Cut power.  Works regardless of OS state — this is the R3 path."""
        self._host.shutdown()
        self._host.wedged = False
        self.record_event("chassis", "chassis power off")

    def power_cycle(self) -> None:
        """Hard reset: off, then on."""
        self.power_off()
        self.power_on()
        self.power_cycles += 1

    def status(self) -> str:
        """Chassis power status, 'on' or 'off'."""
        if not self.supports_status:
            raise PowerError(f"{self.protocol}: status query not supported")
        return "on" if self._host.booted else "off"

    def read_sensors(self) -> Dict[str, float]:
        """IPMI-style environment sensors, read through the BMC.

        Works while the OS is wedged — the sensors talk to the chassis,
        not to the kernel.  Deterministic: a pure function of power
        state, wedge state, and core count.
        """
        booted = bool(getattr(self._host, "booted", False))
        wedged = bool(getattr(self._host, "wedged", False))
        cores = int(getattr(self._host, "cores", 8) or 8)
        if not booted:
            return {
                "fan_rpm": 0,
                "power_w": STANDBY_POWER_W,
                "temperature_c": AMBIENT_TEMP_C,
            }
        temperature = BASE_TEMP_C + TEMP_PER_CORE_C * cores
        power = BASE_POWER_W + POWER_PER_CORE_W * cores
        fan = NOMINAL_FAN_RPM
        if wedged:
            # A wedged OS busy-spins: hot, hungry, fans pinned.
            temperature += WEDGE_TEMP_DELTA_C
            power += WEDGE_POWER_DELTA_W
            fan = MAX_FAN_RPM
        return {
            "fan_rpm": fan,
            "power_w": round(power, 1),
            "temperature_c": round(temperature, 1),
        }

    def describe(self) -> dict:
        return {"protocol": self.protocol, "supports_status": self.supports_status}


class IpmiController(PowerControl):
    """Baseboard-management controller speaking IPMI."""

    protocol = "ipmi"


class VProController(PowerControl):
    """Intel AMT/vPro out-of-band management."""

    protocol = "intel-vpro"


class AmdProController(PowerControl):
    """AMD Pro manageability."""

    protocol = "amd-pro"


class SwitchablePowerPlug(PowerControl):
    """Remotely switchable power socket.

    The cheapest initialization interface: it can only toggle the rail
    and cannot report status, so the node layer must assume the boot
    succeeded (or verify in-band).
    """

    protocol = "power-plug"
    supports_status = False


class FlakyPowerControl(PowerControl):
    """Failure injection: the first ``failures`` operations raise.

    Models a BMC that needs retries — the controller's recovery logic
    must keep the experiment alive through transient management-plane
    errors.

    This class predates the general fault-injection plane and is kept
    as a thin compatibility shim over it: internally it is a private
    :class:`~repro.faults.plan.FaultPlan` with a single budgeted power
    fault.  New code should declare faults in a plan and instrument
    nodes with :func:`~repro.faults.injector.install_fault_plan`.
    """

    protocol = "flaky-ipmi"

    def __init__(self, host: SimHost, failures: int = 1):
        super().__init__(host)
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultSpec

        plan = FaultPlan(
            [FaultSpec(kind="power", times=failures)] if failures > 0 else []
        )
        self._injector = FaultInjector(plan)

    @property
    def _remaining_failures(self) -> int:
        spec = self._injector.plan.specs
        if not spec:
            return 0
        budget = spec[0].times or 0
        return budget - self._injector.plan.fired_counts()[0]

    def _maybe_fail(self, operation: str) -> None:
        if self._injector.fire("power", operation, None) is not None:
            self.record_event(
                "power", f"transient BMC failure during {operation}", "warning"
            )
            raise PowerError(f"{self.protocol}: transient failure during {operation}")

    def power_on(self) -> None:
        self._maybe_fail("power_on")
        super().power_on()

    def power_off(self) -> None:
        self._maybe_fail("power_off")
        super().power_off()

    def power_cycle(self) -> None:
        # Fail atomically *before* touching the rail, so a failed cycle
        # leaves the host in its previous state.
        self._maybe_fail("power_cycle")
        super().power_cycle()
