"""Local experiment nodes: orchestrate real subprocesses.

pos scripts "can be any executable"; this module lets the controller
drive actual programs on the controller machine itself, which is how
the orchestration layer is exercised against reality rather than the
simulator.  Each local node owns a sandbox directory; the node's
"power cycle" wipes the sandbox — the closest local analogue of a
live-boot reset: after a reset, no file state survives (R3).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Optional

from repro.testbed.images import ImageRegistry
from repro.testbed.node import Node
from repro.testbed.power import PowerControl
from repro.testbed.transport import LocalTransport

__all__ = ["SandboxPowerControl", "make_local_node", "local_image_registry"]


class _LocalHostState:
    """Duck-typed host state for :class:`PowerControl`."""

    def __init__(self) -> None:
        self.booted = False
        self.wedged = False

    def shutdown(self) -> None:
        self.booted = False


class SandboxPowerControl(PowerControl):
    """'Power' for a local node: cycling wipes the sandbox directory."""

    protocol = "sandbox"

    def __init__(self, state: _LocalHostState, sandbox_dir: str):
        super().__init__(state)  # type: ignore[arg-type]
        self._sandbox_dir = sandbox_dir

    def power_on(self) -> None:
        # Live-boot semantics: start from an empty, well-defined state.
        if os.path.isdir(self._sandbox_dir):
            for entry in os.listdir(self._sandbox_dir):
                path = os.path.join(self._sandbox_dir, entry)
                if os.path.isdir(path):
                    shutil.rmtree(path)
                else:
                    os.unlink(path)
        else:
            os.makedirs(self._sandbox_dir, exist_ok=True)
        super().power_on()


def local_image_registry() -> ImageRegistry:
    """A registry with the pseudo-image local nodes 'boot'."""
    registry = ImageRegistry()
    registry.register(
        "local-sandbox", version="v1", kernel="host-kernel",
        packages=["sh", "coreutils"],
    )
    return registry


def make_local_node(name: str, sandbox_dir: Optional[str] = None) -> Node:
    """Build an experiment node that executes real subprocesses."""
    if sandbox_dir is None:
        sandbox_dir = tempfile.mkdtemp(prefix=f"pos-{name}-")
    state = _LocalHostState()
    return Node(
        name,
        host=None,
        power=SandboxPowerControl(state, sandbox_dir),
        transport=LocalTransport(sandbox_dir=sandbox_dir),
    )
