"""Experiment-host abstraction.

A :class:`Node` glues together the four things pos needs to know about
an experiment host:

* the host itself (a :class:`~repro.netsim.host.SimHost` or, for
  LocalTransport nodes, just a name),
* its out-of-band initialization interface (power control, R3),
* its in-band configuration interface (transport, R1/R4),
* the live image and boot parameters selected for the experiment.

The node exposes the small lifecycle the controller drives: configure
image → reset (power-cycle + live boot) → execute scripts → release.
Power operations retry transient management-plane failures, which is
what keeps experiments alive on flaky BMCs.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.core.errors import NodeError, PowerError, TransportError
from repro.netsim.host import CommandResult, SimHost
from repro.testbed.images import ImageSpec
from repro.testbed.power import PowerControl
from repro.testbed.transport import Transport

__all__ = ["NodeState", "Node"]


class NodeState(enum.Enum):
    """Lifecycle of an experiment host within one allocation."""

    FREE = "free"
    ALLOCATED = "allocated"
    READY = "ready"
    FAILED = "failed"


class Node:
    """One experiment host managed by the testbed controller."""

    #: How often power operations are retried before giving up.
    POWER_RETRIES = 3

    def __init__(
        self,
        name: str,
        host: Optional[SimHost] = None,
        power: Optional[PowerControl] = None,
        transport: Optional[Transport] = None,
    ):
        self.name = name
        self.host = host
        self.power = power
        self.transport = transport
        self.state = NodeState.FREE
        self.owner: Optional[str] = None
        self.image: Optional[ImageSpec] = None
        self.boot_parameters: Dict[str, str] = {}
        self.reset_count = 0

    # -- allocation bookkeeping (driven by repro.core.allocation) -----------

    def mark_allocated(self, owner: str) -> None:
        if self.state is not NodeState.FREE:
            raise NodeError(f"{self.name}: cannot allocate node in state {self.state}")
        self.state = NodeState.ALLOCATED
        self.owner = owner

    def release(self) -> None:
        """Return the node to the free pool; in-band session is closed."""
        if self.transport is not None:
            self.transport.close()
        self.state = NodeState.FREE
        self.owner = None
        self.image = None
        self.boot_parameters = {}

    # -- image & boot configuration -----------------------------------------

    def set_image(self, image: ImageSpec) -> None:
        """Pin the live image this node boots for the experiment."""
        self.image = image

    def set_boot_parameters(self, parameters: Dict[str, str]) -> None:
        """Kernel command-line parameters for the next boot."""
        self.boot_parameters = dict(parameters)

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Power-cycle out of band and live-boot the pinned image.

        This works from *any* prior state — fully configured,
        misconfigured, or wedged (R3) — because the power path does not
        depend on the OS.  Transient power failures are retried.
        """
        if self.image is None:
            raise NodeError(f"{self.name}: no image selected before reset")
        if self.power is None:
            raise NodeError(f"{self.name}: node has no power control")
        last_error: Optional[PowerError] = None
        for __ in range(self.POWER_RETRIES):
            try:
                self.power.power_cycle()
                last_error = None
                break
            except PowerError as exc:
                last_error = exc
        if last_error is not None:
            self.state = NodeState.FAILED
            raise NodeError(
                f"{self.name}: power cycle failed after "
                f"{self.POWER_RETRIES} attempts: {last_error}"
            )
        if self.host is not None:
            self.host.boot(
                image=self.image.name,
                image_version=self.image.version,
                kernel_version=self.image.kernel,
                boot_parameters=self.boot_parameters,
            )
        self.reset_count += 1
        if self.transport is not None:
            try:
                self.transport.connect()
            except TransportError as exc:
                self.state = NodeState.FAILED
                raise NodeError(f"{self.name}: unreachable after boot: {exc}") from exc
        self.state = NodeState.READY

    # -- script/command surface ----------------------------------------------

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        """Run one command over the configuration interface."""
        if self.transport is None:
            raise NodeError(f"{self.name}: node has no transport")
        return self.transport.execute(command, timeout_s=timeout_s)

    def put_file(self, path: str, content: str) -> None:
        if self.transport is None:
            raise NodeError(f"{self.name}: node has no transport")
        self.transport.put_file(path, content)

    def get_file(self, path: str) -> str:
        if self.transport is None:
            raise NodeError(f"{self.name}: node has no transport")
        return self.transport.get_file(path)

    # -- inventory ----------------------------------------------------------------

    def describe(self) -> dict:
        """Full node description for the experiment's artifact record."""
        info: dict = {"name": self.name, "state": self.state.value}
        if self.host is not None:
            info["hardware"] = self.host.describe()
        if self.power is not None:
            info["power"] = self.power.describe()
        if self.transport is not None:
            info["transport"] = self.transport.describe()
        if self.image is not None:
            info["image"] = self.image.describe()
        if self.boot_parameters:
            info["boot_parameters"] = dict(self.boot_parameters)
        return info
