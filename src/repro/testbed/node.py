"""Experiment-host abstraction.

A :class:`Node` glues together the four things pos needs to know about
an experiment host:

* the host itself (a :class:`~repro.netsim.host.SimHost` or, for
  LocalTransport nodes, just a name),
* its out-of-band initialization interface (power control, R3),
* its in-band configuration interface (transport, R1/R4),
* the live image and boot parameters selected for the experiment.

The node exposes the small lifecycle the controller drives: configure
image → reset (power-cycle + live boot) → execute scripts → release.
Every management-plane operation — power cycling, the post-boot
transport connect, command execution — retries transient failures
through the unified :class:`~repro.faults.retry.RetryPolicy`, with
backoff driven by an injectable clock.  That is what keeps experiments
alive on flaky BMCs and lossy management networks.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional


from repro.core.errors import (
    NodeError,
    PowerError,
    RetryExhausted,
    TransportError,
)
from repro.faults.clock import Clock, SimClock
from repro.faults.retry import RetryPolicy
from repro.netsim.host import CommandResult, SimHost
from repro.testbed.images import ImageSpec
from repro.testbed.power import PowerControl
from repro.testbed.transport import Transport

__all__ = ["NodeState", "Node", "DEFAULT_NODE_RETRY_POLICY"]


class NodeState(enum.Enum):
    """Lifecycle of an experiment host within one allocation."""

    FREE = "free"
    ALLOCATED = "allocated"
    READY = "ready"
    FAILED = "failed"


#: The stock management-plane policy: 3 attempts, capped exponential
#: backoff with deterministic jitter.
DEFAULT_NODE_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0
)


class Node:
    """One experiment host managed by the testbed controller."""

    #: Attempt budget of the default policy (kept for compatibility with
    #: the original bare retry loop).
    POWER_RETRIES = DEFAULT_NODE_RETRY_POLICY.max_attempts

    def __init__(
        self,
        name: str,
        host: Optional[SimHost] = None,
        power: Optional[PowerControl] = None,
        transport: Optional[Transport] = None,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.name = name
        self.host = host
        self.power = power
        self.transport = transport
        self.retry_policy = retry_policy or DEFAULT_NODE_RETRY_POLICY
        self.clock = clock or SimClock()
        self.state = NodeState.FREE
        self.owner: Optional[str] = None
        self.image: Optional[ImageSpec] = None
        self.boot_parameters: Dict[str, str] = {}
        self.reset_count = 0

    # -- allocation bookkeeping (driven by repro.core.allocation) -----------

    def mark_allocated(self, owner: str) -> None:
        if self.state is not NodeState.FREE:
            raise NodeError(f"{self.name}: cannot allocate node in state {self.state}")
        self.state = NodeState.ALLOCATED
        self.owner = owner

    def release(self) -> None:
        """Return the node to the free pool; in-band session is closed.

        Idempotent: releasing an already-free node is a no-op, so the
        BMC event log records exactly one release per allocation no
        matter how many paths (allocator teardown, campaign cleanup,
        error handlers) call it.
        """
        if self.state is NodeState.FREE and self.owner is None:
            return
        owner = self.owner
        if self.transport is not None:
            self.transport.close()
        self.state = NodeState.FREE
        self.owner = None
        self.image = None
        self.boot_parameters = {}
        record_event = getattr(self.power, "record_event", None)
        if record_event is not None:
            record_event("release", f"node released from owner {owner}")

    # -- image & boot configuration -----------------------------------------

    def set_image(self, image: ImageSpec) -> None:
        """Pin the live image this node boots for the experiment."""
        self.image = image

    def set_boot_parameters(self, parameters: Dict[str, str]) -> None:
        """Kernel command-line parameters for the next boot."""
        self.boot_parameters = dict(parameters)

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Power-cycle out of band and live-boot the pinned image.

        This works from *any* prior state — fully configured,
        misconfigured, or wedged (R3) — because the power path does not
        depend on the OS.  Transient power failures are retried under
        the node's :class:`RetryPolicy`; so is the post-boot transport
        connect (a host that is slow to come up is not a dead host).
        """
        if self.image is None:
            raise NodeError(f"{self.name}: no image selected before reset")
        if self.power is None:
            raise NodeError(f"{self.name}: node has no power control")
        try:
            self.retry_policy.call(
                self.power.power_cycle,
                retry_on=(PowerError,),
                clock=self.clock,
                describe=f"{self.name}: power cycle",
            )
        except RetryExhausted as exc:
            self.state = NodeState.FAILED
            raise NodeError(
                f"{self.name}: power cycle failed after "
                f"{exc.attempts} attempts: {exc.last_error}"
            ) from exc
        if self.host is not None:
            self.host.boot(
                image=self.image.name,
                image_version=self.image.version,
                kernel_version=self.image.kernel,
                boot_parameters=self.boot_parameters,
            )
        record_event = getattr(self.power, "record_event", None)
        if record_event is not None:
            record_event(
                "boot",
                f"live image {self.image.name}@{self.image.version} booted",
            )
        self.reset_count += 1
        if self.transport is not None:
            try:
                self.retry_policy.call(
                    self.transport.connect,
                    retry_on=(TransportError,),
                    clock=self.clock,
                    describe=f"{self.name}: connect",
                )
            except RetryExhausted as exc:
                self.state = NodeState.FAILED
                raise NodeError(
                    f"{self.name}: unreachable after boot "
                    f"({exc.attempts} attempts): {exc.last_error}"
                ) from exc
        self.state = NodeState.READY

    # -- script/command surface ----------------------------------------------

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        """Run one command over the configuration interface.

        Transient transport failures (including injected slow-command
        timeouts) are retried under the node's policy; when the budget
        is exhausted the *last* underlying transport error propagates,
        so callers keep seeing the native error types.
        """
        if self.transport is None:
            raise NodeError(f"{self.name}: node has no transport")
        try:
            return self.retry_policy.call(
                lambda: self.transport.execute(command, timeout_s=timeout_s),
                retry_on=(TransportError,),
                clock=self.clock,
                describe=f"{self.name}: execute {command!r}",
            )
        except RetryExhausted as exc:
            raise exc.last_error

    def put_file(self, path: str, content: str) -> None:
        if self.transport is None:
            raise NodeError(f"{self.name}: node has no transport")
        self.transport.put_file(path, content)

    def get_file(self, path: str) -> str:
        if self.transport is None:
            raise NodeError(f"{self.name}: node has no transport")
        return self.transport.get_file(path)

    # -- health ----------------------------------------------------------------

    def probe(self) -> bool:
        """One cheap in-band liveness check, without retries.

        The controller's watchdog calls this after a failed run: a node
        whose transport still answers is healthy (the failure was the
        script's); a node that does not is wedged and needs the
        out-of-band path.  Nodes without a transport cannot be probed
        and are assumed healthy.
        """
        if self.transport is None:
            return True
        try:
            self.transport.execute("true")
        except (TransportError, NodeError):
            return False
        return True

    # -- inventory ----------------------------------------------------------------

    def describe(self) -> dict:
        """Full node description for the experiment's artifact record."""
        info: dict = {"name": self.name, "state": self.state.value}
        if self.host is not None:
            info["hardware"] = self.host.describe()
        if self.power is not None:
            info["power"] = self.power.describe()
        if self.transport is not None:
            info["transport"] = self.transport.describe()
        if self.image is not None:
            info["image"] = self.image.describe()
        if self.boot_parameters:
            info["boot_parameters"] = dict(self.boot_parameters)
        info["retry_policy"] = self.retry_policy.describe()
        return info
