"""Canonical testbed setups for the paper's case study.

Two builders mirror the two platforms of Section 5:

* :func:`build_pos_pair` — the hardware testbed: MoonGen on *riga*
  drives the bare-metal Linux router *tartu* over directly wired
  10 GbE ports (Intel 82599 class), managed by the controller *kaunas*.
* :func:`build_vpos_pair` — the virtual clone: the same logical
  experiment runs in KVM guests (*vriga*, *vtartu*) pinned to fixed
  cores on the physical DuT hardware, connected by Linux bridges, and
  managed by *vkaunas*.

Both return a :class:`TestbedSetup` exposing the same surface, which is
the property the paper highlights: "the underlying experiment scripts,
result file format, and subsequent processing scripts are the same for
both setups".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ExperimentError
from repro.loadgen.moongen import MoonGen
from repro.netsim.bridge import LinuxBridge
from repro.netsim.engine import Simulator
from repro.netsim.host import SimHost
from repro.netsim.link import DirectWire
from repro.netsim.nic import HardwareNic, Nic, VirtioNic
from repro.netsim.router import LinuxRouter
from repro.netsim.vm import Hypervisor, VirtualizedLinuxRouter
from repro.testbed.images import ImageRegistry, default_registry
from repro.testbed.node import Node
from repro.testbed.power import IpmiController

from repro.testbed.topology import Topology
from repro.testbed.transport import SshTransport

__all__ = [
    "TestbedSetup",
    "build_pos_pair",
    "build_vpos_pair",
    "RUN_EPOCH_BASE",
    "RUN_EPOCH_STRIDE",
    "RUN_SEED_STRIDE",
]

#: Simulated time each run's clock is aligned to: run *k* always starts
#: at exactly ``RUN_EPOCH_BASE + k * RUN_EPOCH_STRIDE`` seconds.  Pinning
#: runs to canonical absolute epochs makes every timestamp inside a run a
#: bit-identical float regardless of which runs (on which worker) came
#: before it — the keystone of ``--jobs N`` determinism.
RUN_EPOCH_BASE = 1000.0
RUN_EPOCH_STRIDE = 100.0

#: Stride between per-run seed blocks (a prime, so run seeds never
#: collide with the small hand-picked component offsets within a block).
RUN_SEED_STRIDE = 7919


@dataclass
class TestbedSetup:
    """Everything an experiment script needs to drive a testbed."""

    platform: str
    sim: Simulator
    topology: Topology
    nodes: Dict[str, Node]
    loadgen: MoonGen
    router: LinuxRouter
    images: ImageRegistry
    hypervisor: Optional[Hypervisor] = None
    bridges: List[LinuxBridge] = field(default_factory=list)
    #: Base seed all per-run component seeds are derived from.
    seed: int = 0
    #: Statistics snapshot taken at the start of the current run; the
    #: DuT measurement script reports per-run deltas against it.
    run_baseline: Optional[dict] = None

    def begin_run(self, run_index: int) -> None:
        """Isolate the upcoming run from all execution history.

        Called by the controller before each measurement run (the
        *run-isolation hook*).  Three steps:

        1. **Epoch alignment** — fast-forward the simulator to the
           run's canonical epoch (``RUN_EPOCH_BASE + index * STRIDE``),
           draining every leftover event (in-flight frames, backlogs,
           pause releases) of the previous run along the way.  Every
           run thus starts at the same absolute simulated time under
           any job partition, so float arithmetic inside the run is
           bit-identical.
        2. **Reseeding** — every stochastic component restarts from a
           seed derived only from the testbed seed and the run index.
        3. **Baseline snapshot** — cumulative DuT counters are recorded
           so measurement scripts can report this run's deltas.
        """
        epoch = RUN_EPOCH_BASE + RUN_EPOCH_STRIDE * run_index
        if self.hypervisor is not None:
            # Stop the quantum timer first so the fast-forward does not
            # grind through thousands of idle preemption events; the
            # reseed below restarts it phase-aligned to the epoch.
            self.hypervisor.stop()
        if self.sim.now > epoch:
            raise ExperimentError(
                f"run {run_index}: simulated time {self.sim.now:.3f}s is "
                f"already past the run epoch {epoch:.3f}s; increase "
                f"RUN_EPOCH_STRIDE"
            )
        if self.sim.now < epoch:
            self.sim.run(until=epoch)
        seed0 = self.seed + RUN_SEED_STRIDE * (run_index + 1)
        reseed_router = getattr(self.router, "reseed", None)
        if reseed_router is not None:
            reseed_router(seed0)
        if self.hypervisor is not None:
            self.hypervisor.reseed(seed0 + 1)
        self.loadgen.reseed(seed0 + 2)
        self.run_baseline = {
            "router": self.router.stats.snapshot(),
            "nics": {
                port.name: port.stats.snapshot() for port in self.router.ports
            },
        }

    @property
    def loadgen_node(self) -> Node:
        """The node acting as load generator."""
        return self.nodes[self._role_names()[0]]

    @property
    def dut_node(self) -> Node:
        """The node acting as device under test."""
        return self.nodes[self._role_names()[1]]

    def _role_names(self):
        if self.platform == "pos":
            return ("riga", "tartu")
        return ("vriga", "vtartu")

    def describe(self) -> dict:
        """Full setup record for the experiment artifacts."""
        info = {
            "platform": self.platform,
            "topology": self.topology.describe(),
            "nodes": {name: node.describe() for name, node in self.nodes.items()},
            "dut_model": self.router.describe(),
        }
        if self.bridges:
            info["bridges"] = [bridge.describe() for bridge in self.bridges]
        return info


def _make_host_with_nics(
    sim: Simulator,
    name: str,
    nic_class,
    interfaces=("eno1", "eno2"),
    line_rate_bps: float = 10e9,
    **host_kwargs,
) -> SimHost:
    host = SimHost(name, interfaces=list(interfaces), **host_kwargs)
    for iface_name, iface in host.interfaces.items():
        iface.nic = nic_class(sim, f"{name}.{iface_name}", line_rate_bps=line_rate_bps)
    return host


def _install_moongen_command(host: SimHost, sim: Simulator, moongen: MoonGen) -> None:
    """Expose MoonGen as a shell command on the load generator.

    Lets pure command-script experiments (the exportable artifact-folder
    form) drive the generator::

        moongen --rate 100000 --size 64 --duration 0.3 [--flows N]

    The command blocks until the run (plus drain time) completed and
    prints the MoonGen report, which the capture machinery stores and
    the evaluation parser understands.
    """

    def handler(args):
        from repro.loadgen.moongen import format_report

        options = {"rate": None, "size": None, "duration": None,
                   "flows": "1", "interval": None}
        index = 0
        while index < len(args):
            flag = args[index]
            if not flag.startswith("--") or flag[2:] not in options:
                return 2, f"moongen: unknown argument {flag!r}"
            if index + 1 >= len(args):
                return 2, f"moongen: {flag} expects a value"
            options[flag[2:]] = args[index + 1]
            index += 2
        missing = [key for key in ("rate", "size", "duration")
                   if options[key] is None]
        if missing:
            return 2, "moongen: missing " + ", ".join(f"--{m}" for m in missing)
        try:
            rate = float(options["rate"])
            size = int(options["size"])
            duration = float(options["duration"])
            flows = int(options["flows"])
            interval = (
                float(options["interval"]) if options["interval"] else duration / 5
            )
        except ValueError as exc:
            return 2, f"moongen: bad value: {exc}"
        try:
            job = moongen.start(
                rate_pps=rate, frame_size=size, duration_s=duration,
                interval_s=interval, flows=flows,
            )
        except Exception as exc:  # noqa: BLE001 - report as command failure
            return 1, f"moongen: {exc}"
        sim.run(until=sim.now + duration + 0.05)
        return 0, format_report(job).rstrip("\n")

    host.register_command("moongen", handler)


def _make_node(name: str, host: SimHost, power_class=IpmiController) -> Node:
    return Node(
        name,
        host=host,
        power=power_class(host),
        transport=SshTransport(host),
    )


def build_pos_pair(
    sim: Optional[Simulator] = None,
    images: Optional[ImageRegistry] = None,
    link_kind: str = "direct",
    link_kwargs: Optional[dict] = None,
    seed: int = 0,
) -> TestbedSetup:
    """The hardware testbed of the case study (Fig. 3a).

    ``link_kind`` selects the interconnect between LoadGen and DuT —
    the default direct wiring, or the optical-L1 / cut-through switch
    models for the isolation experiments of Sec. 7.
    """
    sim = sim or Simulator()
    images = images or default_registry()
    loadgen_host = _make_host_with_nics(sim, "riga", HardwareNic)
    dut_host = _make_host_with_nics(sim, "tartu", HardwareNic)

    router = LinuxRouter(sim, name="tartu-router")
    router.add_port(dut_host.interfaces["eno1"].nic)
    router.add_port(dut_host.interfaces["eno2"].nic)
    router.gate = lambda: dut_host.forwarding_enabled

    moongen = MoonGen(
        sim,
        tx_nic=loadgen_host.interfaces["eno1"].nic,
        rx_nic=loadgen_host.interfaces["eno2"].nic,
        seed=seed + 2,
    )
    _install_moongen_command(loadgen_host, sim, moongen)

    topology = Topology(sim, controller_name="kaunas")
    nodes = {
        "riga": topology.add_node(_make_node("riga", loadgen_host)),
        "tartu": topology.add_node(_make_node("tartu", dut_host)),
    }
    topology.wire("riga", "eno1", "tartu", "eno1", kind=link_kind, **(link_kwargs or {}))
    topology.wire("tartu", "eno2", "riga", "eno2", kind=link_kind, **(link_kwargs or {}))
    topology.validate()
    return TestbedSetup(
        platform="pos",
        sim=sim,
        topology=topology,
        nodes=nodes,
        loadgen=moongen,
        router=router,
        images=images,
        seed=seed,
    )


def build_vpos_pair(
    sim: Optional[Simulator] = None,
    images: Optional[ImageRegistry] = None,
    seed: int = 0,
) -> TestbedSetup:
    """The virtual testbed of the case study (Fig. 3b).

    Two KVM guests with virtio NICs, joined by two Linux bridges on the
    physical host, a hypervisor preempting the DuT guest's vCPU, and a
    virtualization cost model on the forwarding path.  ``seed`` makes
    each measurement run's stochastic behaviour reproducible.
    """
    sim = sim or Simulator()
    images = images or default_registry()
    loadgen_host = _make_host_with_nics(
        sim, "vriga", VirtioNic, cpu_model="KVM vCPU (pinned)", cores=4, memory_gb=8
    )
    dut_host = _make_host_with_nics(
        sim, "vtartu", VirtioNic, cpu_model="KVM vCPU (pinned)", cores=4, memory_gb=8
    )

    router = VirtualizedLinuxRouter(sim, name="vtartu-router", seed=seed)
    router.add_port(dut_host.interfaces["eno1"].nic)
    router.add_port(dut_host.interfaces["eno2"].nic)
    router.gate = lambda: dut_host.forwarding_enabled

    hypervisor = Hypervisor(sim, seed=seed + 1)
    hypervisor.attach(router)

    moongen = MoonGen(
        sim,
        tx_nic=loadgen_host.interfaces["eno1"].nic,
        rx_nic=loadgen_host.interfaces["eno2"].nic,
        seed=seed + 2,
    )
    _install_moongen_command(loadgen_host, sim, moongen)

    # Two Linux bridges on the physical host connect the guests: one for
    # the forward direction, one for the return path, mirroring the
    # direct wiring of the hardware testbed.
    bridges: List[LinuxBridge] = []
    for index, (a_host, a_port, b_host, b_port) in enumerate(
        [
            (loadgen_host, "eno1", dut_host, "eno1"),
            (dut_host, "eno2", loadgen_host, "eno2"),
        ]
    ):
        bridge = LinuxBridge(sim, name=f"br{index}")
        side_a = Nic(sim, f"br{index}.vnet0")
        side_b = Nic(sim, f"br{index}.vnet1")
        bridge.add_port(side_a)
        bridge.add_port(side_b)
        DirectWire(sim, a_host.interfaces[a_port].nic, side_a, length_m=0.0)
        DirectWire(sim, side_b, b_host.interfaces[b_port].nic, length_m=0.0)
        bridges.append(bridge)

    topology = Topology(sim, controller_name="vkaunas")
    nodes = {
        "vriga": topology.add_node(_make_node("vriga", loadgen_host)),
        "vtartu": topology.add_node(_make_node("vtartu", dut_host)),
    }
    # Node-level wiring is through the bridges (recorded in describe()),
    # so no direct Topology wires are added here.
    return TestbedSetup(
        platform="vpos",
        sim=sim,
        topology=topology,
        nodes=nodes,
        loadgen=moongen,
        router=router,
        images=images,
        hypervisor=hypervisor,
        bridges=bridges,
        seed=seed,
    )
