"""Live-image registry with snapshot pinning.

pos boots experiment hosts from live images so that every run starts
from a clean, *versioned* state: "Utilizing the Debian snapshot
project, we can create live images with specific version numbers for
the kernel and the installed packages."

The registry models exactly that: named images, each available in one
or more snapshot versions carrying a kernel version and a package set.
An experiment pins ``(image, version)``; booting resolves the pin and
records it in the run's inventory, so a published experiment states
precisely which software it ran on.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict, List, Optional

from repro.core.errors import ImageError

__all__ = ["ImageSpec", "ImageRegistry", "default_registry"]


@dataclass(frozen=True)
class ImageSpec:
    """One concrete, immutable live image."""

    name: str
    version: str
    kernel: str
    packages: tuple = ()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "kernel": self.kernel,
            "packages": list(self.packages),
        }


class ImageRegistry:
    """Named live images, each with ordered snapshot versions."""

    def __init__(self) -> None:
        self._images: Dict[str, List[ImageSpec]] = {}

    def register(
        self,
        name: str,
        version: str,
        kernel: str,
        packages: Optional[List[str]] = None,
    ) -> ImageSpec:
        """Add a snapshot version of an image.  Versions must be unique."""
        versions = self._images.setdefault(name, [])
        if any(spec.version == version for spec in versions):
            raise ImageError(f"image {name}@{version} already registered")
        spec = ImageSpec(
            name=name, version=version, kernel=kernel, packages=tuple(packages or ())
        )
        versions.append(spec)
        return spec

    def resolve(self, name: str, version: str = "latest") -> ImageSpec:
        """Look up an image pin; 'latest' resolves to the newest snapshot."""
        versions = self._images.get(name)
        if not versions:
            raise ImageError(f"unknown image {name!r}")
        if version == "latest":
            return versions[-1]
        for spec in versions:
            if spec.version == version:
                return spec
        known = ", ".join(spec.version for spec in versions)
        raise ImageError(f"image {name} has no version {version!r} (known: {known})")

    def names(self) -> List[str]:
        """All registered image names."""
        return sorted(self._images)

    def versions(self, name: str) -> List[str]:
        """All snapshot versions of ``name``, oldest first."""
        if name not in self._images:
            raise ImageError(f"unknown image {name!r}")
        return [spec.version for spec in self._images[name]]


def default_registry() -> ImageRegistry:
    """The image set of the paper's testbed (Debian Buster era)."""
    registry = ImageRegistry()
    registry.register(
        "debian-buster",
        version="20200908T000000Z",
        kernel="4.19.0-10",
        packages=["linux-image-4.19", "iproute2", "ethtool"],
    )
    registry.register(
        "debian-buster",
        version="20201012T000000Z",
        kernel="4.19.0-11",
        packages=["linux-image-4.19", "iproute2", "ethtool", "moongen"],
    )
    registry.register(
        "debian-bullseye",
        version="20211024T000000Z",
        kernel="5.10.0-8",
        packages=["linux-image-5.10", "iproute2", "ethtool"],
    )
    return registry
