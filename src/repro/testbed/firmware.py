"""BIOS/firmware configuration — the paper's stated limitation, built.

Section 7: "there may be configurations that influence the packet
processing performance, such as BIOS settings or NIC firmware.  Setting
these configurations via pos would be possible.  However, BIOS
configurations or flashing firmware differs across different
manufacturers.  Currently, due to the lack of standardized interfaces,
pos does not support automated configurations."

This module supplies what the paper describes as future work: a
*vendor-adapter* layer.  Each manufacturer exposes its own incompatible
dialect (modelled faithfully: different command names, different value
spellings); the :class:`FirmwareManager` maps a vendor-neutral setting
name onto whichever adapter a node's hardware has — and reports
*unsupported* rather than silently skipping when no adapter exists,
because an unmanaged BIOS knob is precisely the hidden state that
breaks reproducibility.

Unlike OS state, firmware settings survive live-boot reboots (they live
in NVRAM) — the property that makes them dangerous and worth managing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import PosError

__all__ = [
    "FirmwareError",
    "BiosAdapter",
    "DellBiosAdapter",
    "SupermicroBiosAdapter",
    "FirmwareManager",
    "NEUTRAL_SETTINGS",
]


class FirmwareError(PosError):
    """A firmware setting is unknown, unsupported, or rejected."""


#: Vendor-neutral setting names and their allowed values.
NEUTRAL_SETTINGS: Dict[str, Tuple[str, ...]] = {
    "turbo_boost": ("enabled", "disabled"),
    "hyper_threading": ("enabled", "disabled"),
    "c_states": ("enabled", "disabled"),
    "sr_iov": ("enabled", "disabled"),
}


class BiosAdapter:
    """Base vendor adapter: translates neutral names to the dialect.

    Firmware state is stored on the adapter (NVRAM), *not* on the
    simulated host — a live-boot reset does not touch it.
    """

    vendor = "generic"
    #: neutral name → (vendor token, {neutral value → vendor value})
    dialect: Dict[str, Tuple[str, Dict[str, str]]] = {}

    def __init__(self, defaults: Optional[Dict[str, str]] = None):
        self._nvram: Dict[str, str] = {}
        for neutral, values in NEUTRAL_SETTINGS.items():
            if neutral in self.dialect:
                self._nvram[neutral] = (defaults or {}).get(neutral, values[0])

    def supports(self, neutral_name: str) -> bool:
        return neutral_name in self.dialect

    def set(self, neutral_name: str, neutral_value: str) -> str:
        """Apply a setting; returns the vendor command line issued."""
        if neutral_name not in NEUTRAL_SETTINGS:
            raise FirmwareError(f"unknown firmware setting {neutral_name!r}")
        if neutral_value not in NEUTRAL_SETTINGS[neutral_name]:
            allowed = ", ".join(NEUTRAL_SETTINGS[neutral_name])
            raise FirmwareError(
                f"{neutral_name}: invalid value {neutral_value!r} "
                f"(allowed: {allowed})"
            )
        if not self.supports(neutral_name):
            raise FirmwareError(
                f"{self.vendor}: no interface for setting {neutral_name!r}"
            )
        token, value_map = self.dialect[neutral_name]
        self._nvram[neutral_name] = neutral_value
        return self._format_command(token, value_map[neutral_value])

    def get(self, neutral_name: str) -> str:
        if neutral_name not in self._nvram:
            raise FirmwareError(
                f"{self.vendor}: no interface for setting {neutral_name!r}"
            )
        return self._nvram[neutral_name]

    def snapshot(self) -> Dict[str, str]:
        """All managed settings (recorded in the experiment inventory)."""
        return dict(self._nvram)

    def _format_command(self, token: str, value: str) -> str:
        raise NotImplementedError


class DellBiosAdapter(BiosAdapter):
    """Dell's racadm-style dialect."""

    vendor = "dell"
    dialect = {
        "turbo_boost": ("BIOS.ProcSettings.ProcTurboMode", {
            "enabled": "Enabled", "disabled": "Disabled",
        }),
        "hyper_threading": ("BIOS.ProcSettings.LogicalProc", {
            "enabled": "Enabled", "disabled": "Disabled",
        }),
        "c_states": ("BIOS.SysProfileSettings.ProcCStates", {
            "enabled": "Enabled", "disabled": "Disabled",
        }),
        "sr_iov": ("BIOS.IntegratedDevices.SriovGlobalEnable", {
            "enabled": "Enabled", "disabled": "Disabled",
        }),
    }

    def _format_command(self, token: str, value: str) -> str:
        return f"racadm set {token} {value}"


class SupermicroBiosAdapter(BiosAdapter):
    """Supermicro's sum-style dialect (no SR-IOV knob exposed)."""

    vendor = "supermicro"
    dialect = {
        "turbo_boost": ("Turbo_Mode", {
            "enabled": "Enable", "disabled": "Disable",
        }),
        "hyper_threading": ("Hyper_Threading", {
            "enabled": "Enable", "disabled": "Disable",
        }),
        "c_states": ("CPU_C_States", {
            "enabled": "Enable", "disabled": "Disable",
        }),
        # sr_iov deliberately absent: real vendor coverage is spotty.
    }

    def _format_command(self, token: str, value: str) -> str:
        return f"sum -c ChangeBiosCfg --setting {token}={value}"


@dataclass
class FirmwareReport:
    """Outcome of applying a firmware profile to a set of nodes."""

    applied: Dict[str, Dict[str, str]] = field(default_factory=dict)
    unsupported: Dict[str, List[str]] = field(default_factory=dict)
    commands: List[str] = field(default_factory=list)

    @property
    def fully_applied(self) -> bool:
        return not self.unsupported


class FirmwareManager:
    """Applies vendor-neutral firmware profiles across heterogeneous nodes."""

    def __init__(self) -> None:
        self._adapters: Dict[str, BiosAdapter] = {}
        self._power: Dict[str, object] = {}

    def register(
        self, node_name: str, adapter: BiosAdapter, power=None
    ) -> None:
        """Attach a vendor adapter (and optionally the node's power
        controller, so firmware changes land in its System Event Log —
        NVRAM writes are chassis events a BMC records)."""
        self._adapters[node_name] = adapter
        if power is not None:
            self._power[node_name] = power

    def adapter_for(self, node_name: str) -> Optional[BiosAdapter]:
        return self._adapters.get(node_name)

    def apply_profile(
        self,
        profile: Dict[str, str],
        node_names: List[str],
        strict: bool = True,
    ) -> FirmwareReport:
        """Apply the neutral profile to every node.

        ``strict`` raises when any node lacks an interface for a
        requested setting — silently unmanaged firmware is the failure
        mode this layer exists to prevent.  ``strict=False`` records
        the gaps in the report instead.
        """
        report = FirmwareReport()
        for node_name in node_names:
            adapter = self._adapters.get(node_name)
            if adapter is None:
                if strict:
                    raise FirmwareError(
                        f"node {node_name!r} has no firmware adapter; "
                        "its BIOS state is unmanaged"
                    )
                report.unsupported[node_name] = sorted(profile)
                continue
            for neutral_name, neutral_value in profile.items():
                try:
                    command = adapter.set(neutral_name, neutral_value)
                except FirmwareError:
                    if strict:
                        raise
                    report.unsupported.setdefault(node_name, []).append(
                        neutral_name
                    )
                    continue
                report.applied.setdefault(node_name, {})[neutral_name] = (
                    neutral_value
                )
                report.commands.append(f"{node_name}: {command}")
                record_event = getattr(
                    self._power.get(node_name), "record_event", None
                )
                if record_event is not None:
                    record_event(
                        "firmware",
                        f"BIOS setting {neutral_name} -> {neutral_value}",
                    )
        return report

    def inventory(self) -> Dict[str, Dict[str, str]]:
        """Firmware snapshot of every managed node (published as R5
        artifact metadata)."""
        return {
            node_name: adapter.snapshot()
            for node_name, adapter in sorted(self._adapters.items())
        }
