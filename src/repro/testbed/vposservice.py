"""The vpos web service (Sec. 8 / Appendix A.1).

"We operate a virtual testbed as a service to enable other researchers
to try out pos in their browsers … This web service allows the
creation of separate vpos instances with a single click.  After booting
one of these instances, a connection to this instance can be
established with a second click that starts the web shell of our
virtual testbed controller host called vkaunas."

:class:`VposService` models that provisioning layer: per-user isolated
vpos instances (each with its own simulator, nodes, calendar, allocator
and controller), lifecycle management (create → connect → destroy),
and a per-service instance quota.  The "web shell" is the returned
:class:`~repro.casestudy.experiment.CaseStudyEnvironment`, ready to run
experiments.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass

from typing import TYPE_CHECKING, Dict, List


from repro.core.errors import PosError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoided at runtime
    from repro.casestudy.experiment import CaseStudyEnvironment

__all__ = ["VposInstance", "VposService"]


class VposServiceError(PosError):
    """Instance lifecycle violation (quota, unknown id, double destroy)."""


@dataclass
class VposInstance:
    """One provisioned virtual testbed."""

    instance_id: str
    owner: str
    environment: "CaseStudyEnvironment"
    booted: bool = True
    destroyed: bool = False

    def describe(self) -> dict:
        return {
            "id": self.instance_id,
            "owner": self.owner,
            "booted": self.booted,
            "destroyed": self.destroyed,
            "nodes": sorted(self.environment.setup.nodes),
            "controller": self.environment.setup.topology.controller_name,
        }


class VposService:
    """Provision isolated vpos instances on demand."""

    def __init__(
        self,
        result_root: str,
        max_instances_per_user: int = 3,
        seed: int = 0,
    ):
        self._result_root = result_root
        self._max_per_user = max_instances_per_user
        self._seed = seed
        self._counter = itertools.count(1)
        self._instances: Dict[str, VposInstance] = {}

    # -- lifecycle ---------------------------------------------------------

    def create_instance(self, owner: str) -> VposInstance:
        """The "first click": boot a fresh vpos for ``owner``.

        Every instance is fully isolated — its own simulator, nodes,
        calendar, and result store subtree — so experiments of
        different users can never interact.
        """
        active = [
            instance
            for instance in self._instances.values()
            if instance.owner == owner and not instance.destroyed
        ]
        if len(active) >= self._max_per_user:
            raise VposServiceError(
                f"user {owner!r} already has {len(active)} active instances "
                f"(limit {self._max_per_user})"
            )
        # Imported lazily: the case-study module builds on the testbed
        # package, so a module-level import would be circular.
        from repro.casestudy.experiment import build_environment

        number = next(self._counter)
        instance_id = f"vpos-{number:04d}"
        environment = build_environment(
            "vpos",
            os.path.join(self._result_root, instance_id),
            seed=self._seed + number,
        )
        instance = VposInstance(
            instance_id=instance_id, owner=owner, environment=environment
        )
        self._instances[instance_id] = instance
        return instance

    def connect(self, instance_id: str) -> "CaseStudyEnvironment":
        """The "second click": the instance's controller shell."""
        instance = self._get(instance_id)
        if instance.destroyed:
            raise VposServiceError(f"instance {instance_id} was destroyed")
        return instance.environment

    def destroy_instance(self, instance_id: str) -> None:
        """Tear an instance down; its hypervisor stops scheduling.

        The nodes are powered off through their out-of-band interface
        — the teardown is visible in each BMC's System Event Log, like
        any other chassis lifecycle event.
        """
        instance = self._get(instance_id)
        if instance.destroyed:
            raise VposServiceError(f"instance {instance_id} already destroyed")
        if instance.environment.setup.hypervisor is not None:
            instance.environment.setup.hypervisor.stop()
        for name in sorted(instance.environment.setup.nodes):
            node = instance.environment.setup.nodes[name]
            if node.power is not None:
                node.power.power_off()
                record_event = getattr(node.power, "record_event", None)
                if record_event is not None:
                    record_event(
                        "chassis", f"vpos instance {instance_id} destroyed"
                    )
        instance.destroyed = True
        instance.booted = False

    def health(self, instance_id: str) -> dict:
        """Live out-of-band health view of one instance's nodes.

        Polls sensors and chassis state through the power plane — the
        web service's per-instance monitoring endpoint works even when
        a guest OS inside the instance is wedged.
        """
        from repro.testbed.health import HealthMonitor

        instance = self._get(instance_id)
        return HealthMonitor(instance.environment.setup.nodes).sample()

    # -- queries ---------------------------------------------------------------

    def instances_for(self, owner: str) -> List[VposInstance]:
        """Active instances of one user, oldest first."""
        return [
            instance
            for instance in self._instances.values()
            if instance.owner == owner and not instance.destroyed
        ]

    def describe(self) -> dict:
        """Service state (for a `pos vpos list`-style view)."""
        return {
            "instances": [
                instance.describe() for instance in self._instances.values()
            ]
        }

    def _get(self, instance_id: str) -> VposInstance:
        instance = self._instances.get(instance_id)
        if instance is None:
            raise VposServiceError(f"unknown instance {instance_id!r}")
        return instance
