"""Testbed substrate: nodes, power control, transports, images,
topology, and the canonical pos/vpos scenario builders."""

from repro.testbed.health import (
    ExperimentHealth,
    HealthMonitor,
    HealthStateMachine,
    health_enabled,
)
from repro.testbed.images import ImageRegistry, ImageSpec, default_registry
from repro.testbed.node import Node, NodeState
from repro.testbed.power import (
    AmdProController,
    FlakyPowerControl,
    IpmiController,
    PowerControl,
    SwitchablePowerPlug,
    VProController,
)
from repro.testbed.scenarios import TestbedSetup, build_pos_pair, build_vpos_pair
from repro.testbed.topology import Topology, Wire
from repro.testbed.firmware import (
    DellBiosAdapter,
    FirmwareManager,
    SupermicroBiosAdapter,
)
from repro.testbed.local import make_local_node
from repro.testbed.vposservice import VposInstance, VposService
from repro.testbed.transport import (
    HttpTransport,
    LocalTransport,
    SnmpTransport,
    SshTransport,
    Transport,
)

__all__ = [
    "ExperimentHealth",
    "HealthMonitor",
    "HealthStateMachine",
    "health_enabled",
    "ImageRegistry",
    "ImageSpec",
    "default_registry",
    "Node",
    "NodeState",
    "AmdProController",
    "FlakyPowerControl",
    "IpmiController",
    "PowerControl",
    "SwitchablePowerPlug",
    "VProController",
    "TestbedSetup",
    "build_pos_pair",
    "build_vpos_pair",
    "Topology",
    "Wire",
    "make_local_node",
    "VposInstance",
    "VposService",
    "DellBiosAdapter",
    "FirmwareManager",
    "SupermicroBiosAdapter",
    "HttpTransport",
    "LocalTransport",
    "SnmpTransport",
    "SshTransport",
    "Transport",
]
