"""In-band configuration interfaces (R1, R4).

After a host has been initialized out of band, pos configures it and
runs experiment scripts over a *configuration interface* — "for a
typical Linux server, we use SSH".  SNMP and HTTP are supported for
devices that speak those instead, and new protocols can be added by
implementing the same small surface.

Four transports are provided:

* :class:`SshTransport` — command execution and file transfer against a
  simulated :class:`~repro.netsim.host.SimHost`.
* :class:`SnmpTransport` — OID get/set mapped onto the host's sysctl
  tree, for switch-like devices that only expose management variables.
* :class:`HttpTransport` — a REST-style endpoint map, for appliances
  managed through an HTTP API (e.g. a Tofino switch's runtime agent).
* :class:`LocalTransport` — *real* subprocess execution on the machine
  running the controller, so the orchestration layer can be exercised
  against actual processes, not just the simulator.
"""

from __future__ import annotations

import subprocess
from typing import Callable, Dict, Optional, Tuple

from repro.core.errors import TransportError, TransportTimeout
from repro.netsim.host import CommandResult, SimHost

__all__ = [
    "Transport",
    "SshTransport",
    "SnmpTransport",
    "HttpTransport",
    "LocalTransport",
]


def _simulated_duration(command: str) -> Optional[float]:
    """Wall-clock a simulated command would take, when it is knowable.

    The simulated shell executes instantly, so ``timeout_s`` could never
    fire against a :class:`SimHost` — only ``sleep`` declares a duration
    on its command line.  This keeps slow-command timeouts testable
    against the simulator, with the same semantics as
    :class:`LocalTransport` enforcing them on real subprocesses.
    """
    parts = command.split()
    if len(parts) == 2 and parts[0] == "sleep":
        try:
            return float(parts[1])
        except ValueError:
            return None
    return None


class Transport:
    """Common protocol for in-band configuration interfaces."""

    protocol = "abstract"

    def connect(self) -> None:
        """Establish the session; raises TransportError if unreachable."""
        raise NotImplementedError

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        """Run a command and capture exit code and output."""
        raise NotImplementedError

    def put_file(self, path: str, content: str) -> None:
        """Upload a file to the device."""
        raise NotImplementedError

    def get_file(self, path: str) -> str:
        """Download a file from the device."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the session down.  Idempotent."""

    def describe(self) -> dict:
        return {"protocol": self.protocol}


class SshTransport(Transport):
    """SSH to a simulated live-booted Linux host."""

    protocol = "ssh"

    def __init__(self, host: SimHost):
        self._host = host
        self._connected = False

    def connect(self) -> None:
        if not self._host.reachable:
            raise TransportError(
                f"ssh: connect to host {self._host.name} port 22: No route to host"
            )
        self._connected = True

    def _require_session(self) -> None:
        if not self._connected:
            raise TransportError(f"ssh: no session to {self._host.name}")
        if not self._host.reachable:
            self._connected = False
            raise TransportError(
                f"ssh: connection to {self._host.name} lost (host down or wedged)"
            )

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        self._require_session()
        if timeout_s is not None:
            duration = _simulated_duration(command)
            if duration is not None and duration > timeout_s:
                raise TransportTimeout(
                    f"ssh: command {command!r} on {self._host.name} "
                    f"exceeded {timeout_s}s"
                )
        return self._host.run_command(command)

    def put_file(self, path: str, content: str) -> None:
        self._require_session()
        self._host.write_file(path, content)

    def get_file(self, path: str) -> str:
        self._require_session()
        return self._host.read_file(path)

    def close(self) -> None:
        self._connected = False


class SnmpTransport(Transport):
    """SNMP-style management: typed get/set on an OID tree.

    Commands take the form ``get OID`` / ``set OID VALUE``; the OID tree
    is backed by the host's sysctl dictionary plus a read-only system
    group, which is all a managed switch exposes.
    """

    protocol = "snmp"

    SYSTEM_GROUP = "1.3.6.1.2.1.1"

    def __init__(self, host: SimHost, community: str = "public"):
        self._host = host
        self.community = community
        self._connected = False

    def connect(self) -> None:
        if not self._host.reachable:
            raise TransportError(f"snmp: timeout contacting {self._host.name}")
        self._connected = True

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        if not self._connected:
            raise TransportError(f"snmp: no session to {self._host.name}")
        parts = command.split()
        if not parts:
            return CommandResult(command, 1, "snmp: empty request")
        verb = parts[0]
        if verb == "get" and len(parts) == 2:
            oid = parts[1]
            if oid == f"{self.SYSTEM_GROUP}.5.0":  # sysName
                return CommandResult(command, 0, self._host.name)
            value = self._host.sysctl.get(oid)
            if value is None:
                return CommandResult(command, 2, f"snmp: no such OID {oid}")
            return CommandResult(command, 0, value)
        if verb == "set" and len(parts) >= 3:
            oid, value = parts[1], " ".join(parts[2:])
            if oid.startswith(self.SYSTEM_GROUP):
                return CommandResult(command, 2, f"snmp: {oid} is read-only")
            self._host.sysctl[oid] = value
            return CommandResult(command, 0, value)
        return CommandResult(command, 1, f"snmp: bad request {command!r}")

    def put_file(self, path: str, content: str) -> None:
        raise TransportError("snmp: file transfer not supported")

    def get_file(self, path: str) -> str:
        raise TransportError("snmp: file transfer not supported")

    def close(self) -> None:
        self._connected = False


class HttpTransport(Transport):
    """REST-style management endpoint map.

    Commands take the form ``GET /path`` / ``POST /path BODY``; the
    endpoint table maps paths to handler callables.  Used for devices
    like ASIC switches whose runtime is driven over HTTP.
    """

    protocol = "http"

    def __init__(self, host: SimHost):
        self._host = host
        self._connected = False
        self._endpoints: Dict[Tuple[str, str], Callable[[str], Tuple[int, str]]] = {}
        self.register("GET", "/status", lambda body: (200, "ok"))
        self.register("GET", "/hostname", lambda body: (200, self._host.name))

    def register(
        self, method: str, path: str, handler: Callable[[str], Tuple[int, str]]
    ) -> None:
        """Expose an endpoint; handlers return (http_status, body)."""
        self._endpoints[(method.upper(), path)] = handler

    def connect(self) -> None:
        if not self._host.reachable:
            raise TransportError(f"http: connection refused by {self._host.name}")
        self._connected = True

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        if not self._connected:
            raise TransportError(f"http: no session to {self._host.name}")
        parts = command.split(None, 2)
        if len(parts) < 2:
            return CommandResult(command, 1, "http: expected 'METHOD /path [body]'")
        method, path = parts[0].upper(), parts[1]
        body = parts[2] if len(parts) > 2 else ""
        handler = self._endpoints.get((method, path))
        if handler is None:
            return CommandResult(command, 4, f"404 Not Found: {method} {path}")
        status, response = handler(body)
        exit_code = 0 if 200 <= status < 300 else status // 100
        return CommandResult(command, exit_code, response)

    def put_file(self, path: str, content: str) -> None:
        self._host.write_file(path, content)

    def get_file(self, path: str) -> str:
        return self._host.read_file(path)

    def close(self) -> None:
        self._connected = False


class LocalTransport(Transport):
    """Real subprocess execution on the controller machine.

    This is what makes the orchestration layer testable against actual
    programs: scripts run through ``/bin/sh``, files live under a
    sandbox directory, and timeouts map to killed processes.
    """

    protocol = "local"

    def __init__(self, sandbox_dir: Optional[str] = None):
        import os
        import tempfile

        self._connected = False
        if sandbox_dir is None:
            sandbox_dir = tempfile.mkdtemp(prefix="pos-local-")
        os.makedirs(sandbox_dir, exist_ok=True)
        self.sandbox_dir = sandbox_dir

    def connect(self) -> None:
        self._connected = True

    def execute(self, command: str, timeout_s: Optional[float] = None) -> CommandResult:
        if not self._connected:
            raise TransportError("local: transport not connected")
        try:
            completed = subprocess.run(
                command,
                shell=True,
                cwd=self.sandbox_dir,
                capture_output=True,
                text=True,
                timeout=timeout_s,
            )
        except subprocess.TimeoutExpired as exc:
            raise TransportTimeout(
                f"local: command {command!r} exceeded {timeout_s}s"
            ) from exc
        output = completed.stdout
        if completed.stderr:
            output = output + completed.stderr
        return CommandResult(command, completed.returncode, output.rstrip("\n"))

    def _resolve(self, path: str) -> str:
        import os

        resolved = os.path.normpath(os.path.join(self.sandbox_dir, path.lstrip("/")))
        if not resolved.startswith(os.path.abspath(self.sandbox_dir)):
            raise TransportError(f"local: path {path!r} escapes the sandbox")
        return resolved

    def put_file(self, path: str, content: str) -> None:
        import os

        resolved = self._resolve(path)
        os.makedirs(os.path.dirname(resolved), exist_ok=True)
        with open(resolved, "w", encoding="utf-8") as handle:
            handle.write(content)

    def get_file(self, path: str) -> str:
        try:
            with open(self._resolve(path), "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError as exc:
            raise TransportError(f"local: no such file {path}") from exc

    def close(self) -> None:
        self._connected = False
