"""Out-of-band node health plane (R3 observability).

The paper's testbed manages nodes through IPMI-class interfaces
precisely because they keep working when the OS does not.  This module
turns that management path into an observability path: a
:class:`HealthMonitor` polls every node's baseboard sensors and System
Event Log *through the power-control plane* (never the transport), so
a wedged host is still fully observable, classifies each node per run
(healthy / degraded / wedged), and produces a per-run health payload
that travels through the scheduler's reorder buffer like any other
run artifact.

Determinism contract (the same one every artifact obeys): the payload
of run *k* is a pure function of the run index — SEL records are
sliced per run against baselines captured at run start and renumbered
run-locally, and sensors depend only on observable chassis state — so
``run-NNN/health.json`` and the experiment-level ``health.json`` are
byte-identical for any ``--jobs N`` and across crash + resume.

The cross-run health *state machine* is evaluated only in the parent,
in run order (:class:`ExperimentHealth`): worsening observations jump
the state immediately, recovery steps it back one level per clean run.

This module deliberately imports nothing from :mod:`repro.telemetry`
(the telemetry plane imports *it*); the kill switch is ``POS_HEALTH=0``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.core.envcache import EnvSwitch
from repro.core.errors import PowerError
from repro.testbed.power import STANDBY_POWER_W, TEMP_CRITICAL_C

__all__ = [
    "HEALTH_NAME",
    "HEALTHY",
    "DEGRADED",
    "WEDGED",
    "UNMONITORED",
    "health_enabled",
    "advance_state",
    "HealthStateMachine",
    "HealthMonitor",
    "ExperimentHealth",
]

#: File name of both the per-run snapshot (``run-NNN/health.json``) and
#: the experiment-level aggregate.
HEALTH_NAME = "health.json"

HEALTHY = "healthy"
DEGRADED = "degraded"
WEDGED = "wedged"
#: The node has no pollable BMC surface (e.g. a bare power plug with a
#: controller that predates sensors) — absence of evidence, recorded as
#: such rather than guessed at.
UNMONITORED = "unmonitored"

_LEVEL = {HEALTHY: 0, DEGRADED: 1, WEDGED: 2}
_ORDER = (HEALTHY, DEGRADED, WEDGED)


#: Whether the health plane is on (``POS_HEALTH`` != 0).  Resolved once
#: per world (:mod:`repro.core.envcache`), not per run.
health_enabled = EnvSwitch("POS_HEALTH")


def advance_state(state: str, observation: str) -> str:
    """One step of the per-node health state machine.

    Worsening evidence moves the state immediately (a single wedged
    observation makes the node wedged); improving evidence recovers
    one level per clean run (a wedged node must look healthy twice to
    be trusted again).  An unmonitored observation makes the state
    unmonitored; the first real observation afterwards restores it.
    """
    if observation == UNMONITORED:
        return UNMONITORED
    if state not in _LEVEL:
        return observation
    if _LEVEL[observation] >= _LEVEL[state]:
        return observation
    return _ORDER[_LEVEL[state] - 1]


class HealthStateMachine:
    """healthy → degraded → wedged, per node, driven by observations."""

    def __init__(self, state: str = HEALTHY):
        self.state = state

    def observe(self, observation: str) -> str:
        self.state = advance_state(self.state, observation)
        return self.state


def _monitorable(power) -> bool:
    return power is not None and hasattr(power, "read_sensors") \
        and hasattr(power, "sel")


class HealthMonitor:
    """Polls node health out of band, through the power-control plane.

    Construction captures each node's SEL length as the baseline for
    the upcoming run; :meth:`collect_run` slices every record appended
    since, renumbers the slice run-locally from 0, reads the sensors,
    and classifies the node.  Cumulative per-controller state (total
    SEL length, boot counts) therefore never leaks into a run payload
    — the property that keeps health artifacts identical between a
    sequential execution and any worker sharding.
    """

    def __init__(self, nodes: Dict[str, Any]):
        self._nodes = {name: nodes[name] for name in sorted(nodes)}
        self._sel_base: Dict[str, int] = {}
        for name, node in self._nodes.items():
            power = getattr(node, "power", None)
            if _monitorable(power):
                self._sel_base[name] = len(power.sel)

    @classmethod
    def for_experiment(cls, experiment, node_of) -> "HealthMonitor":
        """Monitor every node the experiment's roles run on."""
        names = dict.fromkeys(role.node for role in experiment.roles)
        return cls({name: node_of(name) for name in names})

    def sample(self) -> Dict[str, Dict[str, Any]]:
        """One live out-of-band poll of every node (no SEL slicing).

        This is the ``pos watch``-style instantaneous view: chassis
        power, sensors, and the observation the sensors alone support.
        Works while the OS is wedged — only the power plane is touched.
        """
        view: Dict[str, Dict[str, Any]] = {}
        for name, node in self._nodes.items():
            power = getattr(node, "power", None)
            if not _monitorable(power):
                view[name] = {"observation": UNMONITORED}
                continue
            sensors = power.read_sensors()
            chassis = self._chassis(power, sensors)
            if chassis != "on":
                observation = WEDGED
            elif sensors["temperature_c"] >= TEMP_CRITICAL_C:
                observation = WEDGED
            else:
                observation = HEALTHY
            view[name] = {
                "chassis": chassis,
                "observation": observation,
                "sensors": sensors,
                "sel_records": len(power.sel),
            }
        return view

    def collect_run(self, run_index: int) -> Dict[str, Any]:
        """Close out one run: slice SELs, read sensors, classify nodes.

        The BMC logs threshold crossings at poll time (a critical-
        temperature record for a host still wedged at run end), so the
        record lands inside this run's slice in every execution mode.
        """
        nodes: Dict[str, Any] = {}
        for name, node in self._nodes.items():
            power = getattr(node, "power", None)
            if not _monitorable(power):
                nodes[name] = {"observation": UNMONITORED, "sel": []}
                continue
            sensors = power.read_sensors()
            if sensors["temperature_c"] >= TEMP_CRITICAL_C:
                power.record_event(
                    "temperature",
                    f"temperature {sensors['temperature_c']:.1f} C above "
                    f"critical threshold {TEMP_CRITICAL_C:.1f} C",
                    "critical",
                )
            base = self._sel_base.get(name, len(power.sel))
            sel = [
                dict(record, id=position)
                for position, record in enumerate(power.sel[base:])
            ]
            chassis = self._chassis(power, sensors)
            nodes[name] = {
                "chassis": chassis,
                "observation": self._classify(chassis, sensors, sel),
                "sel": sel,
                "sensors": sensors,
            }
        return {"run": run_index, "nodes": nodes}

    @staticmethod
    def _chassis(power, sensors: Dict[str, float]) -> str:
        try:
            return power.status()
        except PowerError:
            # Status-less plugs: infer the rail from the power draw.
            return "on" if sensors["power_w"] > 2 * STANDBY_POWER_W else "off"

    @staticmethod
    def _classify(
        chassis: str, sensors: Dict[str, float], sel: List[dict]
    ) -> str:
        if chassis != "on" or sensors["temperature_c"] >= TEMP_CRITICAL_C:
            return WEDGED
        # Any non-routine SEL activity inside the run — a fault record,
        # a threshold crossing, or a mid-run chassis power event (the
        # signature of an R3 recovery cycle) — marks the node degraded.
        for record in sel:
            if record["severity"] != "info" or record["sensor"] == "chassis":
                return DEGRADED
        return HEALTHY


def _new_node_state() -> Dict[str, Any]:
    return {
        "state": HEALTHY,
        "observations": {
            HEALTHY: 0, DEGRADED: 0, WEDGED: 0, UNMONITORED: 0,
        },
        "sel_records": 0,
        "sensors": None,
        "transitions": [],
    }


class ExperimentHealth:
    """Parent-side fold of per-run health payloads, in run order.

    Mirrors the telemetry plane's merge/adopt/finalize triple: executed
    runs are merged (snapshotting ``run-NNN/health.json`` first),
    adopted runs are replayed from their snapshots, and finalization
    writes the experiment-level ``health.json``.  Because folding
    happens strictly in run order (the scheduler's reorder buffer
    guarantees it), the cross-run state machine is deterministic under
    any job count.
    """

    def __init__(self, experiment_path: Optional[str] = None):
        self.path = experiment_path
        self._runs = 0
        self._nodes: Dict[str, Dict[str, Any]] = {}

    # -- folding -----------------------------------------------------------

    def fold(self, payload: Optional[dict]) -> None:
        """Account one run's health payload into the experiment state."""
        if not payload:
            return
        run = int(payload.get("run", self._runs))
        self._runs += 1
        for name in sorted(payload.get("nodes", {})):
            entry = payload["nodes"][name]
            node = self._nodes.setdefault(name, _new_node_state())
            observation = entry.get("observation", UNMONITORED)
            counts = node["observations"]
            counts[observation] = counts.get(observation, 0) + 1
            node["sel_records"] += len(entry.get("sel", []))
            if entry.get("sensors") is not None:
                node["sensors"] = dict(entry["sensors"])
            new_state = advance_state(node["state"], observation)
            if new_state != node["state"]:
                node["transitions"].append(
                    {"run": run, "from": node["state"], "to": new_state}
                )
                node["state"] = new_state

    def merge_run(
        self, index: int, payload: Optional[dict],
        run_dir_path: Optional[str],
    ) -> None:
        """Snapshot one executed run's payload, then fold it."""
        if payload is None:
            return
        if run_dir_path is not None:
            with open(
                os.path.join(run_dir_path, HEALTH_NAME), "w", encoding="utf-8"
            ) as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=2))
                handle.write("\n")
        self.fold(payload)

    def adopt_run(self, index: int, run_dir_path: str) -> None:
        """Replay an adopted (journalled, resumed) run from its snapshot."""
        snapshot_path = os.path.join(run_dir_path, HEALTH_NAME)
        if not os.path.isfile(snapshot_path):
            return  # pre-health artifact: nothing to replay
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            self.fold(json.load(handle))

    # -- results -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The folded state as plain data (used by the live monitor)."""
        return {
            "runs": self._runs,
            "nodes": {
                name: {
                    "state": node["state"],
                    "observations": dict(node["observations"]),
                    "sel_records": node["sel_records"],
                    "sensors": (
                        None if node["sensors"] is None
                        else dict(node["sensors"])
                    ),
                    "transitions": [dict(t) for t in node["transitions"]],
                }
                for name, node in sorted(self._nodes.items())
            },
        }

    def finalize(self, experiment: str) -> None:
        """Write the experiment-level ``health.json``."""
        if self.path is None:
            return
        payload = dict(self.snapshot(), experiment=experiment)
        with open(
            os.path.join(self.path, HEALTH_NAME), "w", encoding="utf-8"
        ) as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2))
            handle.write("\n")
