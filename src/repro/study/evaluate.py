"""Statistical evaluation of a completed study tree (``study.json``).

The evaluation never trusts the runner's in-memory state: every
measurement is parsed back out of the captured artifacts (the
``commands.log`` a cell's measurement script produced, cross-checked
against the run's ``metadata.yml``), exactly as an external reader
would.  On top sit the two statistical planes the ISSUE asks for:

* **per-factor main effects** — every non-baseline level is paired
  against the factor's first level across all matching cells and
  replications, summarized by the seeded-bootstrap
  :func:`~repro.evaluation.tendencies.factorial_effects`;
* **cross-replication consistency** — every cell's N samples get a
  :func:`~repro.evaluation.replication.sample_consistency` verdict
  against the spec's tolerance.

The aggregate is a pure function of (tree, spec): serialized with
sorted keys and a pinned layout, byte-identical for any execution
schedule that produced the same tree.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Tuple

from repro.campaign.admission import plan_admission
from repro.campaign.workload import expected_result_dir
from repro.core import yamlite
from repro.core.errors import StudyError
from repro.evaluation.replication import sample_consistency
from repro.evaluation.tendencies import factorial_effects
from repro.study.design import (
    derive_seed,
    expand_cells,
    replication_campaign,
    replication_dir,
)
from repro.study.spec import RESPONSE_VARIABLE, StudySpec

__all__ = [
    "STUDY_JSON_NAME",
    "cell_measurement",
    "collect_measurements",
    "evaluate_study",
    "write_study_json",
    "render_study",
]

#: File name of the statistical aggregate inside a study directory.
STUDY_JSON_NAME = "study.json"

_RESPONSE_RE = re.compile(
    re.escape(RESPONSE_VARIABLE) + r"=([0-9+\-.eE]+)"
)


def cell_measurement(experiment_dir: str) -> float:
    """Parse one cell's measured response from its captured logs.

    A cell experiment has exactly one measurement run; its role's
    ``commands.log`` carries the echoed assignment line including
    ``measured_mpps=<value>``.
    """
    run_dir = os.path.join(experiment_dir, "run-000")
    if not os.path.isdir(run_dir):
        raise StudyError(f"no run directory under {experiment_dir}")
    for name in sorted(os.listdir(run_dir)):
        log_path = os.path.join(run_dir, name, "commands.log")
        if not name.startswith("role-") or not os.path.isfile(log_path):
            continue
        with open(log_path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("$"):
                    continue  # the command echoing itself, not its output
                match = _RESPONSE_RE.search(line)
                if match:
                    return float(match.group(1))
    raise StudyError(
        f"no {RESPONSE_VARIABLE} measurement in the logs of "
        f"{experiment_dir}"
    )


def _run_assignment(experiment_dir: str) -> Optional[dict]:
    """The loop instance ``metadata.yml`` recorded for the cell's run."""
    path = os.path.join(experiment_dir, "run-000", "metadata.yml")
    if not os.path.isfile(path):
        return None
    loaded = yamlite.load_file(path)
    if not isinstance(loaded, dict):
        return None
    loop = loaded.get("loop")
    return loop if isinstance(loop, dict) else None


def collect_measurements(
    study_dir: str, spec: StudySpec
) -> List[Tuple[Dict[str, object], int, float]]:
    """Every ``(assignment, replication, value)`` triple in the tree.

    Walks the deterministic expected layout (recomputed from the spec,
    never from runner state) and cross-checks each measurement's
    factor assignment against the run's persisted metadata.
    """
    cells = expand_cells(spec.factors)
    rows: List[Tuple[Dict[str, object], int, float]] = []
    for replication in range(spec.replications):
        campaign = replication_campaign(spec, replication)
        rep_dir = replication_dir(study_dir, replication)
        plan = plan_admission(campaign)
        for placement in plan.admitted:
            index = placement.spec.submit_index
            assignment = dict(cells[index])
            experiment_dir = expected_result_dir(
                rep_dir, campaign.base_epoch, placement
            )
            value = cell_measurement(experiment_dir)
            recorded = _run_assignment(experiment_dir)
            if recorded is not None:
                for factor, level in assignment.items():
                    if recorded.get(factor) != level:
                        raise StudyError(
                            f"replication {replication} cell {index}: "
                            f"metadata records {factor}="
                            f"{recorded.get(factor)!r}, the design expects "
                            f"{level!r}"
                        )
            rows.append((assignment, replication, value))
    return rows


def evaluate_study(study_dir: str, spec: StudySpec) -> dict:
    """Fold a complete study tree into the statistical aggregate."""
    rows = collect_measurements(study_dir, spec)
    cells = expand_cells(spec.factors)
    cell_index = {
        tuple(sorted(cell.items())): position
        for position, cell in enumerate(cells)
    }
    samples_by_cell: Dict[int, Dict[int, float]] = {}
    for assignment, replication, value in rows:
        position = cell_index[tuple(sorted(assignment.items()))]
        samples_by_cell.setdefault(position, {})[replication] = value
    cell_reports: List[dict] = []
    for position, cell in enumerate(cells):
        samples_map = samples_by_cell.get(position, {})
        samples = [
            samples_map[replication]
            for replication in sorted(samples_map)
        ]
        cell_reports.append({
            "assignment": dict(cell),
            "samples": samples,
            "consistency": sample_consistency(
                samples, tolerance=spec.tolerance
            ),
        })
    effects = factorial_effects(rows, spec.factors, seed=spec.seed)
    consistent = all(
        report["consistency"]["consistent"] for report in cell_reports
    )
    return {
        "study": spec.name,
        "design": {
            "factors": {
                factor: list(levels)
                for factor, levels in spec.factors.items()
            },
            "replications": spec.replications,
            "seed": spec.seed,
            "replication_seeds": [
                derive_seed(spec.seed, replication)
                for replication in range(spec.replications)
            ],
            "noise": spec.noise,
            "tolerance": spec.tolerance,
        },
        "cells": cell_reports,
        "effects": effects,
        "consistent": consistent,
        "verdict": "consistent" if consistent else "inconsistent",
    }


def write_study_json(study_dir: str, aggregate: dict) -> str:
    """Write the aggregate atomically with a pinned serialization."""
    path = os.path.join(study_dir, STUDY_JSON_NAME)
    rendered = json.dumps(aggregate, sort_keys=True, indent=2) + "\n"
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(rendered)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def render_study(aggregate: dict) -> str:
    """Human-readable study summary for the CLI."""
    design = aggregate["design"]
    lines = [
        f"study: {aggregate['study']}",
        f"design: "
        + " x ".join(
            f"{factor}({len(levels)})"
            for factor, levels in design["factors"].items()
        )
        + f", {design['replications']} replication(s), "
          f"root seed {design['seed']}",
    ]
    lines.append("cells:")
    for report in aggregate["cells"]:
        assignment = " ".join(
            f"{factor}={report['assignment'][factor]}"
            for factor in sorted(report["assignment"])
        )
        consistency = report["consistency"]
        verdict = (
            "consistent" if consistency["consistent"] else "INCONSISTENT"
        )
        lines.append(
            f"  {assignment}: median {consistency['reference']:.4f} Mpps, "
            f"max deviation {consistency['max_deviation'] * 100:.2f}% "
            f"-> {verdict}"
        )
    lines.append("main effects (vs first level, HL estimate [95% CI]):")
    for factor in sorted(aggregate["effects"]):
        summary = aggregate["effects"][factor]
        for level in sorted(summary["levels"]):
            effect = summary["levels"][level]
            lines.append(
                f"  {factor}: {summary['baseline']} -> {level}: "
                f"{effect['hl_estimate']:+.4f} "
                f"[{effect['ci_low']:+.4f}, {effect['ci_high']:+.4f}] "
                f"(n={int(effect['n'])})"
            )
    lines.append(f"verdict: {aggregate['verdict']}")
    return "\n".join(lines) + "\n"
