"""Study tree validation (``pos study audit``).

The auditor recomputes the *expected* shape of the whole tree from
``study.yml`` alone — replication directories, campaign journals,
per-cell experiment directories, run directories, recorded factor
assignments, and the statistical aggregate — and diffs the actual tree
against it.  Two result classes come out:

* **holes** — structural damage that ``pos study repair`` can fix by
  re-executing exactly the affected work: missing replications,
  missing or incomplete campaign journals, missing experiments or
  runs, assignment mismatches, torn study journals, stale aggregates.
  Machine-readable, deterministically ordered.
* **findings** — advisory diagnostics that need no re-execution:
  per-experiment ``pos doctor`` verdicts, schema violations, and
  reproducibility-fingerprint drift across the study's experiments.

The report is a pure function of the tree, so auditing the same bytes
always yields the same holes in the same order.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.campaign.admission import plan_admission
from repro.campaign.workload import expected_result_dir
from repro.core import yamlite
from repro.core.errors import StudyError
from repro.core.journal import JOURNAL_NAME
from repro.core.variables import expand_loop_variables
from repro.study.design import replication_campaign, replication_dir
from repro.study.evaluate import STUDY_JSON_NAME, evaluate_study
from repro.study.journal import STUDY_JOURNAL_NAME
from repro.study.spec import STUDY_SPEC_NAME, StudySpec, load_study_file

__all__ = ["audit_study", "render_audit"]

#: Hole ordering: structural damage first, derived artifacts last.
_KIND_RANK = {
    "missing-replication": 0,
    "missing-campaign-journal": 1,
    "incomplete-campaign": 2,
    "missing-experiment": 3,
    "missing-experiment-journal": 4,
    "missing-run": 5,
    "assignment-mismatch": 6,
    "missing-study-journal": 7,
    "study-journal-mismatch": 8,
    "unjournaled-replication": 9,
    "incomplete-study": 10,
    "missing-aggregate": 11,
    "stale-aggregate": 12,
}


def _read_jsonl_tolerant(path: str) -> List[dict]:
    """Parse a journal's complete records; a torn tail is dropped."""
    entries: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except ValueError:
                break
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def _hole(kind: str, **details: Any) -> Dict[str, Any]:
    hole = {"kind": kind}
    hole.update(details)
    return hole


def _finding(severity: str, code: str, message: str, **details: Any) -> dict:
    finding = {"severity": severity, "code": code, "message": message}
    finding.update(details)
    return finding


def _audit_experiment(
    experiment_dir: str,
    replication: int,
    index: int,
    cell: str,
    expected_runs: List[dict],
    holes: List[dict],
    findings: List[dict],
    provenance: Dict[str, List[str]],
) -> None:
    """Check one cell's experiment tree against its expected design."""
    relative = {"replication": replication, "experiment": index, "cell": cell}
    if not os.path.isdir(experiment_dir):
        holes.append(_hole("missing-experiment", **relative))
        return
    if not os.path.isfile(os.path.join(experiment_dir, JOURNAL_NAME)):
        holes.append(_hole("missing-experiment-journal", **relative))
        return
    for run_index, instance in enumerate(expected_runs):
        run_dir = os.path.join(experiment_dir, f"run-{run_index:03d}")
        if not os.path.isdir(run_dir):
            holes.append(_hole("missing-run", run=run_index, **relative))
            continue
        metadata_path = os.path.join(run_dir, "metadata.yml")
        if not os.path.isfile(metadata_path):
            holes.append(_hole("missing-run", run=run_index, **relative))
            continue
        metadata = yamlite.load_file(metadata_path)
        recorded = (
            metadata.get("loop") if isinstance(metadata, dict) else None
        )
        if recorded != instance:
            holes.append(_hole(
                "assignment-mismatch", run=run_index,
                expected=instance, recorded=recorded, **relative,
            ))

    # Advisory layers: doctor verdict, schemas, fingerprint drift.
    from repro.telemetry.doctor import DoctorError, diagnose

    try:
        diagnosis = diagnose(experiment_dir)
    except DoctorError as exc:
        findings.append(_finding(
            "warning", "undiagnosable",
            f"replication {replication} {cell}: {exc}", **relative,
        ))
    else:
        if diagnosis["verdict"] != "healthy":
            codes = sorted({f["code"] for f in diagnosis["findings"]})
            findings.append(_finding(
                "warning" if diagnosis["verdict"] == "degraded"
                else "critical",
                "doctor-" + diagnosis["verdict"],
                f"replication {replication} {cell}: pos doctor reports "
                f"{diagnosis['verdict']} ({', '.join(codes)})",
                **relative,
            ))
        fingerprint = diagnosis.get("provenance")
        if isinstance(fingerprint, dict):
            key = json.dumps(
                {k: v for k, v in sorted(fingerprint.items())
                 if k not in ("seed",)},
                sort_keys=True,
            )
            provenance.setdefault(key, []).append(
                f"rep-{replication:03d}/{cell}"
            )

    from repro.telemetry.schema import SchemaError, validate_experiment

    try:
        validate_experiment(experiment_dir)
    except SchemaError as exc:
        findings.append(_finding(
            "critical", "schema-violation",
            f"replication {replication} {cell}: {exc}", **relative,
        ))


def audit_study(study_dir: str) -> dict:
    """Validate an entire study tree; returns the machine-readable report."""
    study_dir = os.path.abspath(study_dir)
    spec_path = os.path.join(study_dir, STUDY_SPEC_NAME)
    if not os.path.isfile(spec_path):
        raise StudyError(
            f"no {STUDY_SPEC_NAME} in {study_dir} (not a study tree?)"
        )
    spec = load_study_file(spec_path)
    holes: List[dict] = []
    findings: List[dict] = []
    provenance: Dict[str, List[str]] = {}

    for replication in range(spec.replications):
        rep_dir = replication_dir(study_dir, replication)
        if not os.path.isdir(rep_dir):
            holes.append(_hole(
                "missing-replication", replication=replication,
            ))
            continue
        campaign = replication_campaign(spec, replication)
        plan = plan_admission(campaign)
        journal_path = os.path.join(rep_dir, JOURNAL_NAME)
        if not os.path.isfile(journal_path):
            holes.append(_hole(
                "missing-campaign-journal", replication=replication,
            ))
            continue
        entries = _read_jsonl_tolerant(journal_path)
        recorded = {
            int(entry["index"]): entry
            for entry in entries
            if entry.get("event") == "experiment" and entry.get("ok")
        }
        complete = any(
            entry.get("event") == "complete" and entry.get("ok")
            for entry in entries
        )
        if not complete or len(recorded) < len(plan.admitted):
            holes.append(_hole(
                "incomplete-campaign", replication=replication,
                recorded=len(recorded), expected=len(plan.admitted),
            ))
        for placement in plan.admitted:
            _audit_experiment(
                expected_result_dir(
                    rep_dir, campaign.base_epoch, placement
                ),
                replication,
                placement.execution_index,
                placement.spec.name,
                expand_loop_variables(placement.spec.loop or {}),
                holes,
                findings,
                provenance,
            )

    # -- the study journal ------------------------------------------------
    damaged = {
        hole["replication"] for hole in holes if "replication" in hole
    }
    journal_path = os.path.join(study_dir, STUDY_JOURNAL_NAME)
    if not os.path.isfile(journal_path):
        holes.append(_hole("missing-study-journal"))
    else:
        entries = _read_jsonl_tolerant(journal_path)
        header = entries[0] if entries else {}
        if (
            header.get("event") != "study"
            or header.get("name") != spec.name
            or header.get("total_replications") != spec.replications
        ):
            holes.append(_hole(
                "study-journal-mismatch",
                header={k: header.get(k) for k in ("event", "name",
                                                   "total_replications")},
            ))
        else:
            journaled = {
                int(entry["index"])
                for entry in entries
                if entry.get("event") == "replication" and entry.get("ok")
            }
            for replication in range(spec.replications):
                if replication in journaled or replication in damaged:
                    continue
                holes.append(_hole(
                    "unjournaled-replication", replication=replication,
                ))
            if not any(
                entry.get("event") == "complete" and entry.get("ok")
                for entry in entries
            ) and not damaged:
                holes.append(_hole("incomplete-study"))

    # -- the statistical aggregate ----------------------------------------
    # Only checkable on a structurally sound tree: recomputing the
    # expected aggregate needs every measurement present.
    aggregate_path = os.path.join(study_dir, STUDY_JSON_NAME)
    if not holes:
        expected_bytes = (
            json.dumps(
                evaluate_study(study_dir, spec), sort_keys=True, indent=2
            ) + "\n"
        )
        if not os.path.isfile(aggregate_path):
            holes.append(_hole("missing-aggregate"))
        else:
            with open(aggregate_path, "r", encoding="utf-8") as handle:
                actual = handle.read()
            if actual != expected_bytes:
                holes.append(_hole("stale-aggregate"))
            else:
                from repro.telemetry.schema import (
                    SchemaError,
                    validate_study,
                )

                try:
                    validate_study(study_dir)
                except SchemaError as exc:
                    findings.append(_finding(
                        "critical", "schema-violation",
                        f"{STUDY_JSON_NAME}: {exc}",
                    ))

    # -- fingerprint drift across the whole study --------------------------
    if len(provenance) > 1:
        groups = {
            key: sorted(members)[0] for key, members in provenance.items()
        }
        findings.append(_finding(
            "warning", "fingerprint-drift",
            f"{len(provenance)} distinct reproducibility fingerprints "
            f"across the study's experiments (e.g. "
            f"{', '.join(sorted(groups.values()))}) — the replications "
            f"did not all run the same code/platform",
        ))

    holes.sort(key=_hole_key)
    findings.sort(key=lambda f: (f["severity"], f["code"], f["message"]))
    return {
        "path": study_dir,
        "study": spec.name,
        "replications": spec.replications,
        "holes": holes,
        "findings": findings,
        "complete": not holes,
    }


def _hole_key(hole: dict) -> tuple:
    return (
        hole.get("replication", -1) if isinstance(
            hole.get("replication"), int
        ) else -1,
        _KIND_RANK.get(hole["kind"], 99),
        hole.get("experiment", -1),
        hole.get("run", -1),
    )


def render_audit(report: dict) -> str:
    """Human-readable audit report for the CLI."""
    lines = [
        f"pos study audit: {report['path']}",
        f"study {report['study']} | {report['replications']} "
        f"replication(s) | {len(report['holes'])} hole(s) | "
        f"{len(report['findings'])} finding(s)",
        "",
    ]
    if report["holes"]:
        lines.append(f"holes ({len(report['holes'])}):")
        for hole in report["holes"]:
            where: List[str] = []
            if "replication" in hole:
                where.append(f"rep {hole['replication']}")
            if "cell" in hole:
                where.append(str(hole["cell"]))
            if "run" in hole:
                where.append(f"run {hole['run']}")
            location = " ".join(where) or "study"
            lines.append(f"  [{hole['kind']}] {location}")
    else:
        lines.append("no holes: the tree matches its expanded design")
    if report["findings"]:
        lines.append("")
        lines.append(f"findings ({len(report['findings'])}):")
        for finding in report["findings"]:
            lines.append(
                f"  [{finding['severity']:<8}] {finding['code']}: "
                f"{finding['message']}"
            )
    lines.append("")
    lines.append(
        "verdict: " + ("complete" if report["complete"] else "INCOMPLETE")
    )
    return "\n".join(lines) + "\n"
