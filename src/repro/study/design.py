"""Deterministic study expansion: cells, seeds, campaigns.

Everything here is a pure function of ``(StudySpec, replication
index)`` — no clocks, no randomness beyond seeded hashes — so the
expanded study tree is byte-identical however and whenever it is
produced, and audit can recompute the expected shape of every artifact
from ``study.yml`` alone.

The factorial cells ride the campaign plane: each replication becomes
one :class:`~repro.campaign.spec.CampaignSpec` whose experiments are
the design's cells, each carrying its factor assignment (plus the
replication's synthetic response) as singleton loop variables.  The
measured value therefore flows through the ordinary script → transport
→ persist pipeline and is parsed *back out of the captured artifacts*
by the evaluation stage — the statistics never shortcut the testbed.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from typing import Dict, List

from repro.campaign.spec import CampaignSpec, ExperimentSpec
from repro.study.spec import RESPONSE_VARIABLE, StudySpec

__all__ = [
    "REPLICATIONS_SUBDIR",
    "STUDY_USER",
    "derive_seed",
    "expand_cells",
    "synthetic_response",
    "cell_name",
    "replication_name",
    "replication_dir",
    "replication_campaign",
]

#: Where per-replication campaign trees live inside a study directory.
REPLICATIONS_SUBDIR = "replications"

#: The user every study cell is submitted under on the campaign plane.
STUDY_USER = "study"


def derive_seed(root_seed: int, replication: int) -> int:
    """Split one replication seed off the study's root seed.

    The high 32 bits diffuse the root seed through SHA-256 so sibling
    replications land far apart in seed space; the low 32 bits carry the
    replication index verbatim, which makes the split *provably*
    injective for any replication count below 2**32 — no two
    replications of a study can ever share a seed.
    """
    digest = hashlib.sha256(
        f"{root_seed}:{replication}".encode("utf-8")
    ).digest()
    return (int.from_bytes(digest[:4], "big") << 32) | replication


def expand_cells(factors: Dict[str, List[object]]) -> List[Dict[str, object]]:
    """The ordered factorial cells: full cross product of the levels.

    Mirrors :func:`repro.core.variables.expand_loop_variables` — the
    *last* declared factor varies fastest — so cell order is stable for
    a given spec and familiar from loop-variable expansion.
    """
    names = list(factors)
    return [
        dict(zip(names, combination))
        for combination in itertools.product(
            *(list(factors[name]) for name in names)
        )
    ]


def _unit_hash(token: str) -> float:
    """A deterministic sample from [0, 1) keyed by ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def synthetic_response(
    assignment: Dict[str, object], seed: int, noise: float
) -> float:
    """The simulated testbed's throughput for one cell and seed.

    The cell's *true* response depends only on the factor assignment
    (so replications agree up to noise and main effects are real);
    the replication seed contributes a bounded relative jitter of
    amplitude ``noise``.  Rounded so the value survives the round trip
    through script substitution and log parsing bit-exactly.
    """
    key = ",".join(f"{name}={assignment[name]!r}" for name in sorted(assignment))
    base = 1.0 + 9.0 * _unit_hash(f"cell|{key}")
    jitter = (2.0 * _unit_hash(f"rep|{seed}|{key}") - 1.0) * noise
    return round(base * (1.0 + jitter), 6)


def cell_name(index: int) -> str:
    """The campaign experiment name of cell ``index``."""
    return f"cell-{index:03d}"


def replication_name(spec: StudySpec, replication: int) -> str:
    """The campaign name of one replication."""
    return f"{spec.name}-rep-{replication:03d}"


def replication_dir(study_dir: str, replication: int) -> str:
    """Where one replication's campaign tree lives."""
    return os.path.join(
        study_dir, REPLICATIONS_SUBDIR, f"rep-{replication:03d}"
    )


def replication_campaign(spec: StudySpec, replication: int) -> CampaignSpec:
    """Expand one replication into a validated campaign.

    One experiment per factorial cell; each experiment's ``loop`` pins
    every factor to the cell's level (a singleton list) and adds the
    replication's synthetic response under :data:`RESPONSE_VARIABLE` —
    exactly one measurement run per cell, with the full assignment
    echoed into the captured logs.
    """
    seed = derive_seed(spec.seed, replication)
    experiments: List[ExperimentSpec] = []
    for index, assignment in enumerate(expand_cells(spec.factors)):
        loop: Dict[str, List[object]] = {
            factor: [assignment[factor]] for factor in spec.factors
        }
        loop[RESPONSE_VARIABLE] = [
            synthetic_response(assignment, seed, spec.noise)
        ]
        experiments.append(
            ExperimentSpec(
                name=cell_name(index),
                user=STUDY_USER,
                nodes=1,
                duration=spec.duration,
                submit_index=index,
                loop=loop,
            )
        )
    campaign = CampaignSpec(
        name=replication_name(spec, replication),
        pool=list(spec.pool),
        experiments=experiments,
        base_epoch=spec.base_epoch,
    )
    campaign.validate()
    return campaign
