"""Study specification: a factorial design replicated N times.

A study file is a YAML document (parsed by the built-in
:mod:`repro.core.yamlite` subset) one level above a campaign::

    name: router-study
    factors:
      pkt_size: [64, 1500]
      burst: [1, 8]
    replications: 3
    seed: 42
    pool: [alpha, beta]
    duration: 10
    noise: 0.01
    tolerance: 0.05

The design is the full cross product of the factor levels (the *cells*);
every replication re-measures every cell under a replication seed split
deterministically off the root ``seed``.  Everything that feeds
expansion is explicit and ordered, so the expanded study — N campaigns,
one experiment per cell — is a pure function of this file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.campaign.spec import DEFAULT_BASE_EPOCH
from repro.core import yamlite
from repro.core.errors import StudyError

__all__ = [
    "RESPONSE_VARIABLE",
    "StudySpec",
    "load_study",
    "load_study_file",
    "STUDY_SPEC_NAME",
]

#: File name the canonical study spec lands under inside the study tree.
STUDY_SPEC_NAME = "study.yml"

#: The loop variable carrying the measured response through the script
#: pipeline; factor names must not collide with it.
RESPONSE_VARIABLE = "measured_mpps"

#: Replication indices are folded into the low bits of derived seeds, so
#: the split stays provably collision-free below this bound.
MAX_REPLICATIONS = 2 ** 32


@dataclass
class StudySpec:
    """One replicated factorial study: design, seeds, and testbed."""

    name: str
    factors: Dict[str, List[object]]
    replications: int
    seed: int = 0
    pool: List[str] = field(default_factory=lambda: ["alpha", "beta"])
    duration: float = 10.0
    base_epoch: float = DEFAULT_BASE_EPOCH
    #: Relative amplitude of the per-replication measurement jitter the
    #: simulated workload applies to each cell's response.
    noise: float = 0.01
    #: Relative tolerance of the cross-replication consistency verdict.
    tolerance: float = 0.05

    @property
    def cell_count(self) -> int:
        count = 1
        for levels in self.factors.values():
            count *= len(levels)
        return count

    def validate(self) -> None:
        if not self.name:
            raise StudyError("study needs a name")
        if not self.factors:
            raise StudyError("study needs at least one factor")
        for factor, levels in self.factors.items():
            if not isinstance(factor, str) or not factor.isidentifier():
                raise StudyError(
                    f"factor name {factor!r} is not a valid identifier"
                )
            if factor == RESPONSE_VARIABLE:
                raise StudyError(
                    f"factor name {RESPONSE_VARIABLE!r} is reserved for "
                    f"the measured response"
                )
            if not isinstance(levels, list) or len(levels) < 1:
                raise StudyError(
                    f"factor {factor!r} needs a non-empty level list"
                )
            for level in levels:
                if isinstance(level, bool) or not isinstance(
                    level, (int, float, str)
                ):
                    raise StudyError(
                        f"factor {factor!r} has non-scalar level {level!r}"
                    )
            if len(set(map(repr, levels))) != len(levels):
                raise StudyError(f"factor {factor!r} has duplicate levels")
        if (
            isinstance(self.replications, bool)
            or not isinstance(self.replications, int)
            or self.replications < 1
        ):
            raise StudyError(
                f"replications must be a positive integer, "
                f"got {self.replications!r}"
            )
        if self.replications >= MAX_REPLICATIONS:
            raise StudyError(
                f"replications must stay below {MAX_REPLICATIONS} for the "
                f"seed split to remain collision-free"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise StudyError(f"seed must be an integer, got {self.seed!r}")
        if not self.pool:
            raise StudyError("study needs a non-empty node pool")
        if len(set(self.pool)) != len(self.pool):
            raise StudyError(f"duplicate nodes in pool: {self.pool}")
        if self.duration <= 0:
            raise StudyError("duration must be positive")
        if self.noise < 0:
            raise StudyError("noise must be non-negative")
        if self.tolerance <= 0:
            raise StudyError("tolerance must be positive")

    def describe(self) -> dict:
        """Canonical serializable form (stored as ``study.yml``)."""
        return {
            "name": self.name,
            "factors": {
                factor: list(levels)
                for factor, levels in self.factors.items()
            },
            "replications": self.replications,
            "seed": self.seed,
            "pool": list(self.pool),
            "duration": self.duration,
            "base_epoch": self.base_epoch,
            "noise": self.noise,
            "tolerance": self.tolerance,
        }


def _as_float(value, what: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise StudyError(f"{what} must be a number, got {value!r}") from None


def _as_int(value, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise StudyError(f"{what} must be an integer, got {value!r}")
    return value


def load_study(document) -> StudySpec:
    """Build a validated :class:`StudySpec` from a parsed document."""
    if not isinstance(document, dict):
        raise StudyError("study file must be a mapping at the top level")
    raw_factors = document.get("factors")
    if not isinstance(raw_factors, dict):
        raise StudyError("study file needs a 'factors' mapping")
    factors: Dict[str, List[object]] = {
        str(factor): (list(levels) if isinstance(levels, list) else [levels])
        for factor, levels in raw_factors.items()
    }
    pool = document.get("pool", ["alpha", "beta"])
    if not isinstance(pool, list):
        raise StudyError("'pool' must be a list of node names")
    spec = StudySpec(
        name=str(document.get("name", "")),
        factors=factors,
        replications=_as_int(
            document.get("replications", 1), "replications"
        ),
        seed=_as_int(document.get("seed", 0), "seed"),
        pool=[str(node) for node in pool],
        duration=_as_float(document.get("duration", 10.0), "duration"),
        base_epoch=_as_float(
            document.get("base_epoch", DEFAULT_BASE_EPOCH), "base_epoch"
        ),
        noise=_as_float(document.get("noise", 0.01), "noise"),
        tolerance=_as_float(document.get("tolerance", 0.05), "tolerance"),
    )
    spec.validate()
    return spec


def load_study_file(path: str) -> StudySpec:
    """Parse and validate a study YAML file."""
    try:
        document = yamlite.load_file(path)
    except OSError as exc:
        raise StudyError(f"cannot read study file {path}: {exc}") from exc
    return load_study(document)
