"""Crash-safe study journal (``study.jsonl``).

Same mechanics as the run and campaign journals (append-only JSON
lines, flushed and fsynced per record, torn tails truncated on open),
another level up: a header describing the study, then one record per
*replication* as its campaign completes — replications execute in
index order, so the journal is trivially ordered and a crash at any
instant leaves a prefix that ``pos study run --resume`` understands.
The file is named ``study.jsonl`` (not the shared ``journal.jsonl``)
because a study directory also *contains* campaign directories with
journals of their own; the distinct name keeps tooling that walks a
tree from confusing the layers.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.errors import JournalError
from repro.core.journal import JsonlJournal

__all__ = ["STUDY_JOURNAL_NAME", "StudyJournal"]

STUDY_JOURNAL_NAME = "study.jsonl"


class StudyJournal(JsonlJournal):
    """Append-only, fsync'd record of finished study replications."""

    @classmethod
    def create(cls, study_dir: str, study: str, total: int) -> "StudyJournal":
        """Start a fresh journal for a new study execution."""
        journal = cls(os.path.join(study_dir, STUDY_JOURNAL_NAME))
        journal._open("w")
        journal._append(
            {"event": "study", "name": study, "total_replications": total}
        )
        return journal

    @classmethod
    def open(cls, study_dir: str) -> "StudyJournal":
        """Load an existing study journal, keeping it appendable."""
        path = os.path.join(study_dir, STUDY_JOURNAL_NAME)
        journal = cls._load(path)
        if not journal.entries or journal.entries[0].get("event") != "study":
            raise JournalError(f"journal {path} has no study header")
        return journal

    # -- writing -------------------------------------------------------------

    def record_replication(
        self,
        index: int,
        seed: int,
        ok: bool,
        result_dir: Optional[str] = None,
        experiments_completed: int = 0,
        experiments_failed: int = 0,
        error: Optional[str] = None,
    ) -> None:
        """Record one finished replication durably."""
        entry: Dict[str, Any] = {
            "event": "replication",
            "index": index,
            "seed": seed,
            "ok": ok,
            "experiments_completed": experiments_completed,
            "experiments_failed": experiments_failed,
        }
        if result_dir is not None:
            entry["dir"] = result_dir
        if error is not None:
            entry["error"] = error
        self._append(entry)

    # -- reading -------------------------------------------------------------

    def replication_entries(self) -> List[dict]:
        return [
            entry for entry in self.entries
            if entry.get("event") == "replication"
        ]

    def completed(self) -> Dict[int, dict]:
        """Latest journal entry per replication index that finished ok."""
        latest: Dict[int, dict] = {}
        for entry in self.replication_entries():
            latest[int(entry["index"])] = entry
        return {
            index: entry
            for index, entry in latest.items()
            if entry.get("ok", False)
        }

    def validate_against(self, study: str, total: int) -> None:
        """Refuse to resume a journal written by a different study."""
        header = self.header
        if header.get("name") != study:
            raise JournalError(
                f"journal belongs to study {header.get('name')!r}, "
                f"not {study!r}"
            )
        if header.get("total_replications") != total:
            raise JournalError(
                f"journal expects {header.get('total_replications')} "
                f"replications, the spec defines {total} — refusing to resume"
            )
