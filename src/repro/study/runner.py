"""Study execution: expand, run N campaigns, journal, evaluate.

Replications execute strictly in index order; *within* each
replication the campaign scheduler parallelizes freely (``--jobs``,
``--agents``), so the study tree inherits the campaign plane's
byte-identity guarantee for any concurrency level — the study layer
itself introduces no new scheduling nondeterminism at all.

Resume replays ``study.jsonl``: replications recorded ok are adopted
outright; a replication with a campaign journal on disk resumes
through :func:`repro.campaign.scheduler.run_campaign` (a no-op on a
complete tree, rewriting the derived artifacts byte-identically);
anything else is wiped and re-run.  The statistical aggregate
(``study.json``) and the summary page are pure functions of the
artifact tree and are regenerated on every completion, so they can
never go stale on a tree the runner finished.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.campaign.scheduler import run_campaign
from repro.core import yamlite
from repro.core.errors import StudyError
from repro.core.journal import JOURNAL_NAME
from repro.study.design import derive_seed, replication_campaign, replication_dir
from repro.study.journal import StudyJournal
from repro.study.spec import STUDY_SPEC_NAME, StudySpec, load_study_file

__all__ = ["StudyResult", "run_study", "write_spec_file"]


@dataclass
class StudyResult:
    """What a finished study returns."""

    name: str
    path: str
    replications: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.get("ok") for entry in self.replications)

    @property
    def completed_replications(self) -> int:
        return sum(1 for entry in self.replications if entry.get("ok"))

    @property
    def failed_replications(self) -> int:
        return sum(1 for entry in self.replications if not entry.get("ok"))


def write_spec_file(study_dir: str, spec: StudySpec) -> str:
    """Write the canonical ``study.yml`` atomically.

    The canonical form is a pure function of the spec, so re-running a
    study over an existing tree rewrites identical bytes; the
    tmp-then-rename keeps a crash from ever leaving a torn spec behind
    (audit and repair both start from this file).
    """
    path = os.path.join(study_dir, STUDY_SPEC_NAME)
    rendered = yamlite.dumps(spec.describe())
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(rendered)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def run_study(
    study: Union[str, StudySpec],
    results_dir: str,
    jobs: Optional[int] = None,
    agents: Optional[int] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
) -> StudyResult:
    """Run (or resume) a replicated factorial study.

    ``jobs``/``agents`` are passed through to every replication's
    campaign execution and change nothing about the artifact bytes.
    """
    spec = load_study_file(study) if isinstance(study, str) else study
    spec.validate()
    study_dir = os.path.abspath(results_dir)
    os.makedirs(study_dir, exist_ok=True)

    spec_path = os.path.join(study_dir, STUDY_SPEC_NAME)
    if resume and os.path.isfile(spec_path):
        existing = load_study_file(spec_path)
        if existing.describe() != spec.describe():
            raise StudyError(
                f"study tree {study_dir} was expanded from a different "
                f"spec ({existing.name!r}); refusing to resume"
            )
    write_spec_file(study_dir, spec)

    if resume:
        journal = StudyJournal.open(study_dir)
        try:
            journal.validate_against(spec.name, spec.replications)
            journaled = journal.completed()
        except Exception:
            journal.close()
            raise
    else:
        journal = StudyJournal.create(study_dir, spec.name, spec.replications)
        journaled = {}

    result = StudyResult(name=spec.name, path=study_dir)
    try:
        for index in range(spec.replications):
            seed = derive_seed(spec.seed, index)
            rep_dir = replication_dir(study_dir, index)
            if index in journaled:
                entry = journaled[index]
                outcome = {
                    "index": index,
                    "seed": int(entry.get("seed", seed)),
                    "ok": True,
                    "dir": entry.get("dir"),
                    "experiments_completed": int(
                        entry.get("experiments_completed", 0)
                    ),
                    "experiments_failed": int(
                        entry.get("experiments_failed", 0)
                    ),
                    "adopted": True,
                }
            else:
                campaign = replication_campaign(spec, index)
                has_journal = os.path.isfile(
                    os.path.join(rep_dir, JOURNAL_NAME)
                )
                if resume and has_journal:
                    campaign_result = run_campaign(
                        campaign, rep_dir, jobs=jobs, agents=agents,
                        resume=True,
                    )
                else:
                    # A tree without a trustworthy campaign journal is
                    # wiped so a re-run can never duplicate directories.
                    if os.path.isdir(rep_dir):
                        shutil.rmtree(rep_dir)
                    campaign_result = run_campaign(
                        campaign, rep_dir, jobs=jobs, agents=agents,
                    )
                outcome = {
                    "index": index,
                    "seed": seed,
                    "ok": campaign_result.ok,
                    "dir": os.path.relpath(campaign_result.path, study_dir),
                    "experiments_completed":
                        campaign_result.completed_experiments,
                    "experiments_failed": campaign_result.failed_experiments,
                    "adopted": False,
                }
                journal.record_replication(
                    index,
                    seed,
                    ok=outcome["ok"],
                    result_dir=outcome["dir"],
                    experiments_completed=outcome["experiments_completed"],
                    experiments_failed=outcome["experiments_failed"],
                )
            result.replications.append(outcome)
            if progress is not None:
                progress(len(result.replications), spec.replications)
        completion = {"event": "complete", "ok": result.ok}
        # Resuming a study that already finished must leave the journal
        # byte-identical — never stack a second completion.
        if completion not in journal.entries:
            journal.record_event("complete", ok=result.ok)
    finally:
        journal.close()

    if result.ok:
        from repro.study.evaluate import evaluate_study, write_study_json

        write_study_json(study_dir, evaluate_study(study_dir, spec))
        from repro.publication.website import generate_study_page

        generate_study_page(study_dir)
    return result
