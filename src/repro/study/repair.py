"""Targeted re-execution of audited holes (``pos study repair``).

Repair never re-implements execution.  It *normalizes* the damaged
tree into a state indistinguishable from a crash at the right instant,
then hands the tree to the ordinary resume machinery — whose
byte-identity across crash schedules is already proven one layer down:

* a damaged experiment (missing run, mismatched assignment, lost
  journal) is deleted outright, and its replication's campaign journal
  is truncated to the record prefix *before* that experiment — because
  campaign journal entries land strictly in execution-index order,
  that prefix is exactly what an interrupted campaign would have left;
* a damaged replication (missing directory, lost campaign journal) is
  wiped, and ``study.jsonl`` is truncated to the prefix before its
  replication record;
* truncations keep the original bytes verbatim (raw line prefix, no
  re-serialization), so the repaired journals are byte-identical to
  uninterrupted ones after resume re-appends the re-executed work.

Intact runs are never touched: resume adopts them from their journals
and trees, and only the normalized-away work re-executes.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List, Optional, Set

from repro.campaign.admission import plan_admission
from repro.campaign.workload import expected_result_dir
from repro.core.errors import StudyError
from repro.core.journal import JOURNAL_NAME
from repro.study.audit import audit_study
from repro.study.design import replication_campaign, replication_dir
from repro.study.journal import STUDY_JOURNAL_NAME, StudyJournal
from repro.study.runner import StudyResult, run_study
from repro.study.spec import STUDY_SPEC_NAME, load_study_file

__all__ = ["repair_study"]

#: Hole kinds that damage a single experiment inside a replication.
_EXPERIMENT_KINDS = {
    "missing-experiment",
    "missing-experiment-journal",
    "missing-run",
    "assignment-mismatch",
}

#: Hole kinds that damage a whole replication beyond experiment-level
#: normalization.
_REPLICATION_KINDS = {"missing-replication", "missing-campaign-journal"}

#: Hole kinds resume fixes with no normalization at all.
_RESUMABLE_KINDS = {
    "incomplete-study",
    "missing-aggregate",
    "stale-aggregate",
}


def _truncate_journal_before(
    path: str, stop_index: Optional[int], index_event: str
) -> None:
    """Truncate a journal to the raw-byte prefix before ``stop_index``.

    Keeps every original line verbatim up to (excluding) the first
    ``index_event`` record with ``index >= stop_index`` — and always
    excluding the completion marker, which must be re-earned by resume.
    """
    import json

    kept: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped:
                try:
                    entry = json.loads(stripped)
                except ValueError:
                    break  # torn tail: drop it, like journal open would
                if isinstance(entry, dict):
                    if entry.get("event") == "complete":
                        break
                    if (
                        entry.get("event") == index_event
                        and stop_index is not None
                        and int(entry.get("index", -1)) >= stop_index
                    ):
                        break
            kept.append(line)
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(kept)
        handle.flush()
        os.fsync(handle.fileno())


def _normalize(study_dir: str, holes: List[dict]) -> None:
    """Rewrite the damaged tree into a crash-equivalent resumable state."""
    spec = load_study_file(os.path.join(study_dir, STUDY_SPEC_NAME))
    wiped_reps: Set[int] = set()
    experiment_damage: Dict[int, Set[int]] = {}
    affected_reps: Set[int] = set()
    study_journal_damaged = False

    for hole in holes:
        kind = hole["kind"]
        replication = hole.get("replication")
        if kind in _REPLICATION_KINDS:
            wiped_reps.add(replication)
            affected_reps.add(replication)
        elif kind in _EXPERIMENT_KINDS:
            experiment_damage.setdefault(replication, set()).add(
                hole["experiment"]
            )
            affected_reps.add(replication)
        elif kind in ("incomplete-campaign", "unjournaled-replication"):
            affected_reps.add(replication)
        elif kind in ("missing-study-journal", "study-journal-mismatch"):
            study_journal_damaged = True
        elif kind not in _RESUMABLE_KINDS:
            raise StudyError(f"cannot repair unknown hole kind {kind!r}")

    for replication in sorted(wiped_reps):
        rep_dir = replication_dir(study_dir, replication)
        if os.path.isdir(rep_dir):
            shutil.rmtree(rep_dir)

    for replication in sorted(set(experiment_damage) - wiped_reps):
        rep_dir = replication_dir(study_dir, replication)
        campaign = replication_campaign(spec, replication)
        plan = plan_admission(campaign)
        damaged = experiment_damage[replication]
        for placement in plan.admitted:
            if placement.execution_index in damaged:
                experiment_dir = expected_result_dir(
                    rep_dir, campaign.base_epoch, placement
                )
                if os.path.isdir(experiment_dir):
                    shutil.rmtree(experiment_dir)
        _truncate_journal_before(
            os.path.join(rep_dir, JOURNAL_NAME), min(damaged), "experiment"
        )

    journal_path = os.path.join(study_dir, STUDY_JOURNAL_NAME)
    if study_journal_damaged or not os.path.isfile(journal_path):
        # Rebuild a header-only journal: every intact replication is
        # re-adopted through its campaign journal on resume, so nothing
        # re-executes — only the study-level records are re-earned.
        StudyJournal.create(
            study_dir, spec.name, spec.replications
        ).close()
    elif affected_reps:
        _truncate_journal_before(
            journal_path, min(affected_reps), "replication"
        )
    else:
        # Only derived artifacts or the completion marker are damaged;
        # drop the completion marker so resume re-runs finalization.
        _truncate_journal_before(journal_path, None, "replication")


def repair_study(
    study_dir: str,
    jobs: Optional[int] = None,
    agents: Optional[int] = None,
) -> dict:
    """Audit, normalize, resume, and re-audit one study tree.

    Returns ``{"repaired": [holes…], "result": StudyResult, "audit":
    report}``; raises :class:`StudyError` if holes survive the repair.
    """
    study_dir = os.path.abspath(study_dir)
    before = audit_study(study_dir)
    result: Optional[StudyResult] = None
    if before["holes"]:
        _normalize(study_dir, before["holes"])
        result = run_study(
            os.path.join(study_dir, STUDY_SPEC_NAME),
            study_dir,
            jobs=jobs,
            agents=agents,
            resume=True,
        )
    after = audit_study(study_dir)
    if after["holes"]:
        kinds = ", ".join(sorted({h["kind"] for h in after["holes"]}))
        raise StudyError(
            f"repair left {len(after['holes'])} hole(s) behind: {kinds}"
        )
    return {
        "repaired": before["holes"],
        "result": result,
        "audit": after,
    }
