"""Replicated factorial studies: one level above campaigns.

A *study* is the first-class object for "the same factorial design,
replicated N times with distinct seeds, then analyzed as one
statistical unit".  The package expands a study spec into N campaigns
(:mod:`repro.study.design`), executes them crash-safely
(:mod:`repro.study.runner` + the ``study.jsonl`` journal), folds the
resulting tree into per-factor main effects and cross-replication
consistency verdicts (:mod:`repro.study.evaluate`), and validates or
repairs whole result trees (:mod:`repro.study.audit`,
:mod:`repro.study.repair`).
"""

from repro.study.audit import audit_study, render_audit
from repro.study.design import (
    derive_seed,
    expand_cells,
    replication_campaign,
    replication_dir,
    synthetic_response,
)
from repro.study.evaluate import (
    STUDY_JSON_NAME,
    collect_measurements,
    evaluate_study,
    render_study,
    write_study_json,
)
from repro.study.journal import STUDY_JOURNAL_NAME, StudyJournal
from repro.study.repair import repair_study
from repro.study.runner import StudyResult, run_study
from repro.study.spec import (
    RESPONSE_VARIABLE,
    STUDY_SPEC_NAME,
    StudySpec,
    load_study,
    load_study_file,
)

__all__ = [
    "RESPONSE_VARIABLE",
    "STUDY_JOURNAL_NAME",
    "STUDY_JSON_NAME",
    "STUDY_SPEC_NAME",
    "StudyJournal",
    "StudyResult",
    "StudySpec",
    "audit_study",
    "collect_measurements",
    "derive_seed",
    "evaluate_study",
    "expand_cells",
    "load_study",
    "load_study_file",
    "render_audit",
    "render_study",
    "repair_study",
    "replication_campaign",
    "replication_dir",
    "run_study",
    "synthetic_response",
    "write_study_json",
]
