"""Content-addressed run cache.

A measurement run in this testbed is a *pure function* of its inputs:
the run-isolation hook (:meth:`repro.testbed.scenarios.TestbedSetup.
begin_run`) aligns the world clock to a canonical per-index epoch and
reseeds every stochastic component from the experiment seed and the run
index, which is the property the parallel and distributed executors
already rely on for byte-identical artifact trees.  The same property
makes run outcomes cacheable: executing the same (scenario, variable
assignment, seed) point twice performs identical work and produces an
identical :class:`~repro.core.scheduler.RunOutcome`.

:class:`RunCache` stores those outcomes content-addressed: the cache
key is the SHA-256 of a canonical JSON fingerprint covering

* the **code epoch** — a constant bumped whenever the simulation or
  workflow semantics change (scripts are Python callables, so their
  behaviour cannot be content-hashed; the epoch is the conservative
  stand-in),
* the **scenario content** — the experiment's full ``describe()``
  (roles, images, boot parameters, script identities) and the testbed
  topology ``describe()``,
* the **variable assignment** — the run's loop instance and its index
  in the cross product (the index determines the run's epoch and
  reseed, so it is an input, not bookkeeping),
* the **seed**.

A hit replays the pickled outcome through the exact persistence path an
executed run takes (:func:`~repro.core.scheduler.persist_outcome`,
``merge_run``, the journal), so the artifact tree of a warm execution
is byte-identical to a cold one *by construction* — with zero simulator
events spent.  Only boring outcomes are stored: single-attempt, ``ok``,
no fault events; anything involving recovery, failure or injected
faults always re-executes.

The cache is off unless a directory is configured (``--cache DIR`` or
``POS_RUN_CACHE_DIR``), and ``POS_RUN_CACHE=0`` is the kill switch that
wins over both.  Evidence of hits and misses goes to the
``cache.jsonl`` sidecar (the ``dispatch.jsonl`` precedent), which is
deliberately outside the byte-identity contract.

Storage layout, one directory per entry, atomically populated::

    <root>/objects/<key[:2]>/<key>/manifest.json   # provenance + outcome hash
    <root>/objects/<key[:2]>/<key>/outcome.pkl     # pickled RunOutcome

Loads verify the pickle against the manifest's hash; a corrupt or
truncated entry behaves as a miss.  ``pos cache ls|verify|gc`` inspects
and maintains a cache directory offline.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.core.envcache import EnvSwitch

__all__ = [
    "CODE_EPOCH",
    "CacheEntry",
    "RunCache",
    "cache_enabled",
    "resolve_cache_dir",
]

#: Bumped whenever simulation or workflow semantics change in a way
#: that affects run artifacts.  Part of every cache key: entries from
#: older code are unreachable (and ``pos cache gc`` removes them).
CODE_EPOCH = 1

#: Kill switch: ``POS_RUN_CACHE=0`` disables the cache even when a
#: directory is configured.  Resolved once per world.
cache_enabled = EnvSwitch("POS_RUN_CACHE")

MANIFEST_NAME = "manifest.json"
OUTCOME_NAME = "outcome.pkl"


def resolve_cache_dir(explicit: Optional[str] = None) -> Optional[str]:
    """The configured cache directory, or None when caching is off.

    Precedence: kill switch (``POS_RUN_CACHE=0``) > explicit ``--cache``
    directory > ``POS_RUN_CACHE_DIR``.  Read once per world, alongside
    the other kill switches.
    """
    if not cache_enabled():
        return None
    return explicit or os.environ.get("POS_RUN_CACHE_DIR") or None


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class CacheEntry:
    """One stored run, as seen by the offline tools."""

    key: str
    path: str
    manifest: Dict[str, Any]

    @property
    def ok(self) -> bool:
        """Whether the stored outcome matches the manifest's hash."""
        outcome_path = os.path.join(self.path, OUTCOME_NAME)
        try:
            with open(outcome_path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return False
        return hashlib.sha256(blob).hexdigest() == self.manifest.get("outcome_sha256")


class RunCache:
    """Content-addressed store of :class:`RunOutcome` payloads.

    ``scope`` is the per-world half of the fingerprint (code epoch,
    seed, testbed topology); the per-run half (experiment describe,
    index, loop instance) is supplied to :meth:`key`.
    """

    def __init__(self, root: str, scope: Optional[Dict[str, Any]] = None):
        self.root = root
        self.scope = dict(scope or {})
        self.scope.setdefault("code_epoch", CODE_EPOCH)
        #: Optional evidence sink ``(event, **fields)`` — the controller
        #: wires it to the telemetry plane's ``cache_event`` so silent
        #: corrupt-as-miss degradations still leave a ``cache.jsonl``
        #: record for ``pos report`` and the critical-path profiler.
        self.evidence: Optional[Callable[..., None]] = None

    # -- keys -----------------------------------------------------------------

    def key(
        self,
        experiment_describe: Dict[str, Any],
        index: int,
        loop_instance: Dict[str, Any],
    ) -> str:
        """SHA-256 fingerprint of one (scenario, assignment, seed) point."""
        fingerprint = {
            "scope": self.scope,
            "experiment": experiment_describe,
            "index": index,
            "loop": dict(loop_instance),
        }
        return hashlib.sha256(_canonical(fingerprint).encode("utf-8")).hexdigest()

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], key)

    # -- hot path -------------------------------------------------------------

    def lookup(self, key: str):
        """The stored outcome for ``key``, or None (corrupt = miss)."""
        entry_dir = self._entry_dir(key)
        manifest_path = os.path.join(entry_dir, MANIFEST_NAME)
        outcome_path = os.path.join(entry_dir, OUTCOME_NAME)
        if not os.path.isdir(entry_dir):
            return None
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            with open(outcome_path, "rb") as handle:
                blob = handle.read()
        except (OSError, ValueError):
            self._corrupt(key)
            return None
        if hashlib.sha256(blob).hexdigest() != manifest.get("outcome_sha256"):
            self._corrupt(key)
            return None
        try:
            return pickle.loads(blob)
        except Exception:  # noqa: BLE001 - any unpickling failure is a miss
            self._corrupt(key)
            return None

    def _corrupt(self, key: str) -> None:
        """An entry exists but cannot be trusted: degrade to a miss, loudly."""
        if self.evidence is not None:
            self.evidence("cache.corrupt", key=key)

    @staticmethod
    def storable(outcome) -> bool:
        """Only boring outcomes are cacheable: one attempt, ok, no faults."""
        return (
            len(outcome.attempts) == 1
            and outcome.attempts[0].ok
            and not outcome.fault_events
        )

    def store(self, key: str, outcome, provenance: Optional[Dict[str, Any]] = None) -> bool:
        """Persist one eligible outcome; returns whether it was written.

        Idempotent and atomic: an existing entry is left untouched, a
        new one appears via temp-dir rename so readers never observe a
        half-written entry.
        """
        if not self.storable(outcome):
            return False
        entry_dir = self._entry_dir(key)
        if os.path.isdir(entry_dir):
            return False
        blob = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = {
            "key": key,
            "code_epoch": self.scope.get("code_epoch"),
            "index": outcome.index,
            "loop": dict(outcome.loop_instance),
            "outcome_sha256": hashlib.sha256(blob).hexdigest(),
            "outcome_bytes": len(blob),
            "scope": self.scope,
        }
        manifest.update(provenance or {})
        parent = os.path.dirname(entry_dir)
        os.makedirs(parent, exist_ok=True)
        staging = tempfile.mkdtemp(prefix=".staging-", dir=parent)
        try:
            with open(os.path.join(staging, OUTCOME_NAME), "wb") as handle:
                handle.write(blob)
            with open(
                os.path.join(staging, MANIFEST_NAME), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, sort_keys=True, indent=2)
                handle.write("\n")
            os.rename(staging, entry_dir)
        except OSError:
            shutil.rmtree(staging, ignore_errors=True)
            # A concurrent writer racing us to the same key stored the
            # same content; losing the rename race is success.
            return os.path.isdir(entry_dir)
        return True

    # -- offline tools (pos cache ls|verify|gc) ------------------------------

    def entries(self) -> Iterator[CacheEntry]:
        """Every entry in the cache, in deterministic key order."""
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return
        for prefix in sorted(os.listdir(objects)):
            prefix_dir = os.path.join(objects, prefix)
            if not os.path.isdir(prefix_dir):
                continue
            for key in sorted(os.listdir(prefix_dir)):
                if key.startswith("."):
                    continue  # an abandoned staging dir
                entry_dir = os.path.join(prefix_dir, key)
                manifest_path = os.path.join(entry_dir, MANIFEST_NAME)
                try:
                    with open(manifest_path, "r", encoding="utf-8") as handle:
                        manifest = json.load(handle)
                except (OSError, ValueError):
                    manifest = {}
                yield CacheEntry(key=key, path=entry_dir, manifest=manifest)

    def verify(self) -> Dict[str, List[str]]:
        """Hash-check every entry; returns ``{"ok": [...], "corrupt": [...]}``."""
        report: Dict[str, List[str]] = {"ok": [], "corrupt": []}
        for entry in self.entries():
            report["ok" if entry.ok else "corrupt"].append(entry.key)
        return report

    def gc(self) -> Dict[str, List[str]]:
        """Remove corrupt entries and entries from older code epochs.

        Returns ``{"removed": [...], "kept": [...]}``.  Also sweeps
        abandoned staging directories.
        """
        result: Dict[str, List[str]] = {"removed": [], "kept": []}
        current = self.scope.get("code_epoch")
        for entry in self.entries():
            stale = entry.manifest.get("code_epoch") != current
            if stale or not entry.ok:
                shutil.rmtree(entry.path, ignore_errors=True)
                result["removed"].append(entry.key)
            else:
                result["kept"].append(entry.key)
        objects = os.path.join(self.root, "objects")
        if os.path.isdir(objects):
            for prefix in os.listdir(objects):
                prefix_dir = os.path.join(objects, prefix)
                if not os.path.isdir(prefix_dir):
                    continue
                for name in os.listdir(prefix_dir):
                    if name.startswith("."):
                        shutil.rmtree(
                            os.path.join(prefix_dir, name), ignore_errors=True
                        )
                if not os.listdir(prefix_dir):
                    os.rmdir(prefix_dir)
        return result
