"""Result-tree loader.

Walks the central result layout written by
:mod:`repro.core.results` and joins every run's captured outputs with
its loop-parameter metadata: "pos creates separate result files for
each measurement run.  Additionally, pos creates metadata for each run
… Based on this metadata, the evaluation script can filter or
aggregate specific parameters and values."
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core import yamlite
from repro.core.errors import ResultError
from repro.evaluation.moongen_parser import MoonGenOutput, parse_moongen_output

__all__ = [
    "RunResult",
    "ExperimentResults",
    "load_experiment",
    "extract_command_output",
]


def extract_command_output(commands_log: str, command_name: str) -> Optional[str]:
    """Pull one command's captured output out of a ``commands.log``.

    The capture format interleaves ``$ <command>``, the output lines,
    and ``(exit N)``.  Returns the output of the *first* successful
    invocation whose command line starts with ``command_name``, or None.
    """
    lines = commands_log.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index]
        if line.startswith("$ ") and line[2:].split(None, 1)[0] == command_name:
            body: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].startswith("(exit "):
                body.append(lines[index])
                index += 1
            exit_ok = index < len(lines) and lines[index] == "(exit 0)"
            if exit_ok and body:
                return "\n".join(body) + "\n"
        index += 1
    return None


@dataclass
class RunResult:
    """One measurement run: metadata plus everything each role uploaded."""

    index: int
    loop: Dict[str, Any]
    #: retry attempt this capture belongs to (0 = the original folder,
    #: 1 = ``run-NNN-retry``, …)
    attempt: int = 0
    #: role → filename → content
    outputs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: role → parsed status.yml
    status: Dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """A run is good when every recorded role reported ok."""
        return all(entry.get("ok", False) for entry in self.status.values())

    def output(self, role: str, name: str) -> str:
        """Fetch one captured file; raises with a helpful message."""
        files = self.outputs.get(role)
        if files is None:
            raise ResultError(
                f"run {self.index}: no outputs for role {role!r} "
                f"(roles: {', '.join(sorted(self.outputs)) or 'none'})"
            )
        if name not in files:
            raise ResultError(
                f"run {self.index}: role {role!r} has no file {name!r} "
                f"(files: {', '.join(sorted(files))})"
            )
        return files[name]

    def moongen(self, role: str = "loadgen", name: str = "moongen.log") -> MoonGenOutput:
        """Parse the run's MoonGen log.

        Python-scripted experiments upload ``moongen.log`` explicitly;
        pure command-script experiments run the ``moongen`` command,
        whose output lands in the captured ``commands.log`` — when the
        named file is absent, the MoonGen block is extracted from there.
        """
        files = self.outputs.get(role, {})
        if name in files:
            return parse_moongen_output(files[name])
        if "commands.log" in files:
            block = extract_command_output(files["commands.log"], "moongen")
            if block is not None:
                return parse_moongen_output(block)
        # Fall through to the precise missing-file error.
        return parse_moongen_output(self.output(role, name))


@dataclass
class ExperimentResults:
    """A fully loaded experiment result folder."""

    path: str
    metadata: Dict[str, Any]
    variables: Dict[str, Any]
    inventory: Dict[str, Any]
    runs: List[RunResult] = field(default_factory=list)
    #: Earlier attempts of runs that were later retried (failure
    #: evidence from recovery/resume); never mixed into :attr:`runs`.
    superseded: List[RunResult] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.metadata.get("name", os.path.basename(self.path)))

    def successful_runs(self) -> List[RunResult]:
        return [run for run in self.runs if run.ok]

    def filter(self, **loop_values: Any) -> List[RunResult]:
        """Runs whose loop parameters match every given value."""
        matched = []
        for run in self.runs:
            if all(run.loop.get(key) == value for key, value in loop_values.items()):
                matched.append(run)
        return matched

    def loop_values(self, key: str) -> List[Any]:
        """Distinct values a loop parameter took, in first-seen order."""
        seen: List[Any] = []
        for run in self.runs:
            value = run.loop.get(key)
            if value not in seen:
                seen.append(value)
        return seen


def _load_yaml_if_present(path: str) -> dict:
    if not os.path.isfile(path):
        return {}
    loaded = yamlite.load_file(path)
    return loaded if isinstance(loaded, dict) else {}


def _load_role_dirs(run_path: str, run: RunResult) -> None:
    for entry in sorted(os.listdir(run_path)):
        role_path = os.path.join(run_path, entry)
        if not os.path.isdir(role_path):
            continue
        files: Dict[str, str] = {}
        for filename in sorted(os.listdir(role_path)):
            file_path = os.path.join(role_path, filename)
            if not os.path.isfile(file_path):
                continue
            if filename == "status.yml":
                run.status[entry] = _load_yaml_if_present(file_path)
                continue
            with open(file_path, "r", encoding="utf-8") as handle:
                files[filename] = handle.read()
        run.outputs[entry] = files


def load_experiment(path: str) -> ExperimentResults:
    """Load one experiment result folder (the ``[timestamp]`` directory)."""
    if not os.path.isdir(path):
        raise ResultError(f"no such result folder: {path}")
    results = ExperimentResults(
        path=path,
        metadata=_load_yaml_if_present(os.path.join(path, "experiment.yml")),
        variables=_load_yaml_if_present(os.path.join(path, "variables.yml")),
        inventory=_load_yaml_if_present(os.path.join(path, "inventory.yml")),
    )
    run_entries = sorted(
        entry for entry in os.listdir(path)
        if entry.startswith("run-") and os.path.isdir(os.path.join(path, entry))
    )
    # A retried run leaves several folders for the same index
    # (``run-003``, ``run-003-retry``, …).  Only the newest attempt
    # counts as *the* run; earlier attempts are kept as superseded
    # failure evidence so an evaluation never double-counts an index.
    by_index: Dict[int, List[RunResult]] = {}
    for entry in run_entries:
        run_path = os.path.join(path, entry)
        metadata = _load_yaml_if_present(os.path.join(run_path, "metadata.yml"))
        index = int(metadata.get("run", _index_from_name(entry)))
        attempt = int(metadata.get("attempt", _attempt_from_name(entry)))
        run = RunResult(
            index=index, loop=dict(metadata.get("loop", {})), attempt=attempt
        )
        _load_role_dirs(run_path, run)
        by_index.setdefault(index, []).append(run)
    for index in sorted(by_index):
        attempts = sorted(by_index[index], key=lambda run: run.attempt)
        results.runs.append(attempts[-1])
        results.superseded.extend(attempts[:-1])
    return results


def _index_from_name(name: str) -> int:
    """Parse the run index out of a folder name like ``run-003-retry``."""
    return int(name.split("-")[1])


def _attempt_from_name(name: str) -> int:
    if "-retry" not in name:
        return 0
    suffix = name.rsplit("-retry", 1)[1]
    return int(suffix) if suffix else 1
