"""Evaluation phase: parsers, result loading, aggregation, plotting."""

from repro.evaluation.aggregate import (
    HdrHistogram,
    Stats,
    describe,
    group_runs,
    percentile,
    series_from_runs,
)
from repro.evaluation.iperf_parser import IperfOutput, parse_iperf_output
from repro.evaluation.loader import (
    ExperimentResults,
    RunResult,
    extract_command_output,
    load_experiment,
)
from repro.evaluation.replication import (
    ReplicationReport,
    RunComparison,
    compare_experiments,
)
from repro.evaluation.robustness import (
    Cliff,
    find_cliffs,
    robustness_report,
    scan,
)
from repro.evaluation.tendencies import (
    CurveFeatures,
    extract_features,
    tendencies_agree,
    tendency_report,
)
from repro.evaluation.moongen_parser import (
    DeviceSummary,
    LatencySummary,
    MoonGenOutput,
    parse_histogram_csv,
    parse_moongen_output,
)
from repro.evaluation.plotter import (
    latency_samples_us,
    plot_experiment,
    throughput_figure,
)

__all__ = [
    "HdrHistogram",
    "Stats",
    "describe",
    "group_runs",
    "percentile",
    "series_from_runs",
    "IperfOutput",
    "parse_iperf_output",
    "ExperimentResults",
    "RunResult",
    "extract_command_output",
    "load_experiment",
    "Cliff",
    "find_cliffs",
    "robustness_report",
    "scan",
    "ReplicationReport",
    "RunComparison",
    "compare_experiments",
    "CurveFeatures",
    "extract_features",
    "tendencies_agree",
    "tendency_report",
    "DeviceSummary",
    "LatencySummary",
    "MoonGenOutput",
    "parse_histogram_csv",
    "parse_moongen_output",
    "latency_samples_us",
    "plot_experiment",
    "throughput_figure",
]
