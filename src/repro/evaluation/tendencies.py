"""Cross-platform tendency comparison.

Section 5 asks: "With a decrease in the maximum forwarding throughput
by a factor of up to 44 … how can both setups be compared?  While the
raw performance figures cannot be compared, the underlying tendencies
stay the same."

This module turns that argument into a computation.  Two platforms'
throughput curves are normalized (rate relative to the platform's own
drop-free ceiling) and compared on their *qualitative* features:

* where the drop-free region ends (the knee),
* whether the knee depends on packet size,
* the ordering of configurations (which packet size wins, where).

Two platforms "agree in tendency" when those features match even
though absolute rates differ by orders of magnitude.
"""

from __future__ import annotations

import random

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.core.errors import EvaluationError

__all__ = [
    "CurveFeatures",
    "extract_features",
    "tendencies_agree",
    "tendency_report",
    "median",
    "mad",
    "robust_z",
    "hodges_lehmann",
    "paired_effect",
    "factorial_effects",
]

Point = Tuple[float, float]  # (offered, achieved)


# --------------------------------------------------------------------------
# robust location / dispersion / effect-size estimators
#
# The comparative tooling (`pos diff`, `pos doctor`, the perf-history
# regression plane) reasons about small, possibly contaminated samples:
# a handful of repeated runs, one of which may be an outlier caused by a
# retry storm or a wedged node.  Means and standard deviations are
# useless there — a single bad run drags both — so everything below is
# median/MAD-based, and every randomized step is seeded so reports stay
# pure functions of their inputs.
# --------------------------------------------------------------------------

#: Consistency constant making the MAD comparable to a standard
#: deviation under normality (1 / Phi^-1(3/4)).
_MAD_SCALE = 1.4826


def median(samples: Sequence[float]) -> float:
    """The sample median (average-of-two for even sizes)."""
    if not samples:
        raise EvaluationError("median of an empty sample")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(samples: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation, scaled to be sigma-comparable."""
    if not samples:
        raise EvaluationError("MAD of an empty sample")
    mid = median(samples) if center is None else center
    return _MAD_SCALE * median([abs(value - mid) for value in samples])


def robust_z(value: float, samples: Sequence[float]) -> float:
    """How many robust sigmas ``value`` sits from the sample's median.

    With a degenerate spread (MAD == 0, e.g. all-identical samples) the
    score is 0 for values equal to the median and infinite otherwise —
    any deviation from a perfectly concentrated sample is anomalous.
    """
    mid = median(samples)
    spread = mad(samples, center=mid)
    if spread == 0.0:
        return 0.0 if value == mid else float("inf")
    return (value - mid) / spread


def hodges_lehmann(samples: Sequence[float]) -> float:
    """Hodges–Lehmann one-sample estimator: median of pairwise means.

    The classic robust location estimate for paired differences —
    resistant to outliers yet far more efficient than the plain median.
    """
    if not samples:
        raise EvaluationError("Hodges-Lehmann of an empty sample")
    walsh = [
        (samples[i] + samples[j]) / 2.0
        for i in range(len(samples))
        for j in range(i, len(samples))
    ]
    return median(walsh)


def paired_effect(
    before: Sequence[float],
    after: Sequence[float],
    confidence: float = 0.95,
    bootstrap: int = 400,
    seed: int = 0,
) -> Dict[str, float]:
    """Robust effect summary of paired samples (``after - before``).

    Returns the Hodges–Lehmann estimate of the paired difference, the
    median difference, and a seeded-bootstrap confidence interval on
    the HL estimate — deterministic for identical inputs, so reports
    built on it stay byte-stable.
    """
    if len(before) != len(after):
        raise EvaluationError(
            f"paired samples differ in length: {len(before)} vs {len(after)}"
        )
    if not before:
        raise EvaluationError("paired effect of empty samples")
    diffs = [b - a for a, b in zip(before, after)]
    estimate = hodges_lehmann(diffs)
    rng = random.Random(seed)
    replicates: List[float] = []
    for _ in range(bootstrap):
        resample = [diffs[rng.randrange(len(diffs))] for _ in diffs]
        replicates.append(hodges_lehmann(resample))
    replicates.sort()
    tail = (1.0 - confidence) / 2.0
    low = replicates[int(tail * (len(replicates) - 1))]
    high = replicates[int((1.0 - tail) * (len(replicates) - 1))]
    return {
        "hl_estimate": estimate,
        "median_diff": median(diffs),
        "ci_low": low,
        "ci_high": high,
        "confidence": confidence,
        "n": float(len(diffs)),
    }


def factorial_effects(
    rows: Sequence[Tuple[Dict[str, object], int, float]],
    factors: Dict[str, Sequence[object]],
    confidence: float = 0.95,
    bootstrap: int = 400,
    seed: int = 0,
) -> Dict[str, dict]:
    """Per-factor main effects of a replicated factorial design.

    ``rows`` are the study's individual measurements: one
    ``(assignment, replication, value)`` triple per factorial cell and
    replication, where ``assignment`` maps every factor name to the
    level measured.  ``factors`` gives the design (factor -> ordered
    level list); the *first* level of each factor is its baseline.

    For every factor and every non-baseline level, measurements are
    paired on everything else — identical assignment of the remaining
    factors and identical replication index — so the estimated effect
    isolates that one level switch.  The pairs feed
    :func:`paired_effect`, inheriting its seeded-bootstrap confidence
    interval; the whole summary is a pure function of its inputs.
    """
    if not rows:
        raise EvaluationError("factorial_effects of an empty design")
    if not factors:
        raise EvaluationError("factorial_effects needs at least one factor")
    indexed: Dict[Tuple, float] = {}
    for assignment, replication, value in rows:
        missing = sorted(set(factors) - set(assignment))
        if missing:
            raise EvaluationError(
                f"measurement {assignment!r} lacks factors: {', '.join(missing)}"
            )
        key = (
            tuple(assignment[factor] for factor in sorted(factors)),
            int(replication),
        )
        indexed[key] = float(value)

    ordered_factors = sorted(factors)
    effects: Dict[str, dict] = {}
    for factor in ordered_factors:
        levels = list(factors[factor])
        if not levels:
            raise EvaluationError(f"factor {factor!r} has no levels")
        position = ordered_factors.index(factor)
        baseline = levels[0]
        level_effects: Dict[str, dict] = {}
        for level in levels[1:]:
            before: List[float] = []
            after: List[float] = []
            # Levels of one factor may mix types (64 vs "auto"), which
            # plain tuple comparison cannot order — sort on repr, which
            # is total and deterministic.
            for (cell, replication), value in sorted(
                indexed.items(),
                key=lambda item: (
                    [repr(part) for part in item[0][0]], item[0][1],
                ),
            ):
                if cell[position] != baseline:
                    continue
                partner = cell[:position] + (level,) + cell[position + 1:]
                matched = indexed.get((partner, replication))
                if matched is None:
                    continue
                before.append(value)
                after.append(matched)
            if not before:
                raise EvaluationError(
                    f"factor {factor!r}: no paired measurements between "
                    f"levels {baseline!r} and {level!r}"
                )
            level_effects[str(level)] = paired_effect(
                before, after,
                confidence=confidence, bootstrap=bootstrap, seed=seed,
            )
        effects[factor] = {
            "baseline": baseline,
            "levels": level_effects,
        }
    return effects


@dataclass
class CurveFeatures:
    """Qualitative features of one throughput curve."""

    #: Highest offered rate still forwarded without (significant) loss.
    knee_offered: float
    #: Achieved rate at the knee == the drop-free ceiling.
    ceiling: float
    #: True when the curve saturates (achieved < offered somewhere).
    saturates: bool


def extract_features(
    points: Sequence[Point], loss_tolerance: float = 0.02
) -> CurveFeatures:
    """Find the knee and ceiling of an offered-vs-achieved curve."""
    if not points:
        raise EvaluationError("cannot extract features from an empty curve")
    ordered = sorted(points)
    knee_offered = ordered[0][0]
    ceiling = ordered[0][1]
    saturates = False
    for offered, achieved in ordered:
        if offered <= 0:
            raise EvaluationError("offered rates must be positive")
        loss = 1.0 - achieved / offered
        if loss <= loss_tolerance:
            knee_offered = offered
            ceiling = max(ceiling, achieved)
        else:
            saturates = True
    return CurveFeatures(
        knee_offered=knee_offered, ceiling=ceiling, saturates=saturates
    )


def tendencies_agree(
    platform_a: Dict[object, Sequence[Point]],
    platform_b: Dict[object, Sequence[Point]],
    size_independence_tolerance: float = 0.25,
) -> Dict[str, bool]:
    """Check the paper's tendency claims across two platforms.

    Both arguments map a group key (e.g. packet size) to that group's
    throughput curve.  Returns a named verdict per tendency:

    * ``same_groups`` — both platforms measured the same configurations,
    * ``both_saturate`` — every group hits a ceiling on both platforms
      (the number of processed packets limits forwarding, not luck),
    * ``size_independence_matches`` — whether the drop-free ceiling is
      packet-size-independent agrees between platforms *per the curves
      below any bandwidth limit* (the paper: "the measured maximum
      throughput is forwarded regardless of the packet size, as long as
      no bandwidth limits are hit").
    """
    verdict: Dict[str, bool] = {}
    verdict["same_groups"] = set(platform_a) == set(platform_b)
    features_a = {key: extract_features(points) for key, points in platform_a.items()}
    features_b = {key: extract_features(points) for key, points in platform_b.items()}
    verdict["both_saturate"] = all(
        feats.saturates for feats in list(features_a.values()) + list(features_b.values())
    )

    def knees_size_independent(features: Dict[object, CurveFeatures]) -> bool:
        knees = [feats.knee_offered for feats in features.values()]
        return (max(knees) - min(knees)) <= size_independence_tolerance * max(knees)

    # vpos knees must be size-independent; pos knees differ only because
    # of the bandwidth limit, so compare *offered* knees of the groups
    # that are not line-rate-bound.  We approximate by checking the knee
    # spread and letting the caller decide which groups to include.
    verdict["size_independence_matches"] = knees_size_independent(
        features_b
    ) or knees_size_independent(features_a)
    return verdict


def tendency_report(
    platform_a_name: str,
    platform_a: Dict[object, Sequence[Point]],
    platform_b_name: str,
    platform_b: Dict[object, Sequence[Point]],
) -> str:
    """Human-readable tendency comparison between two platforms."""
    lines = [f"tendency comparison: {platform_a_name} vs {platform_b_name}"]
    for name, platform in ((platform_a_name, platform_a), (platform_b_name, platform_b)):
        for key in sorted(platform, key=str):
            feats = extract_features(platform[key])
            lines.append(
                f"  {name} [{key}]: drop-free to {feats.knee_offered:g}, "
                f"ceiling {feats.ceiling:g}, "
                f"{'saturates' if feats.saturates else 'linear throughout'}"
            )
    verdict = tendencies_agree(platform_a, platform_b)
    for tendency, agrees in verdict.items():
        lines.append(f"  {tendency}: {'agree' if agrees else 'DISAGREE'}")
    return "\n".join(lines) + "\n"
