"""Parser for iPerf interval output.

"Researchers can add their own parsers to support other packet
generators or output formats" (Sec. 4.4) — this is such an added
parser, registered alongside the MoonGen one, covering the format of
:func:`repro.loadgen.iperf.format_iperf_report`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ParseError

__all__ = ["IperfOutput", "parse_iperf_output"]

_INTERVAL_RE = re.compile(
    r"^\[\s*\d+\]\s+(?P<start>[\d.]+)-\s*(?P<end>[\d.]+) sec\s+"
    r"(?P<bytes>\d+) Bytes\s+(?P<mbits>[\d.]+) Mbits/sec$"
)
_SUMMARY_RE = re.compile(
    r"^\[\s*\d+\]\s+(?P<start>[\d.]+)-(?P<end>[\d.]+) sec\s+"
    r"(?P<bytes>\d+) Bytes\s+(?P<mbits>[\d.]+) Mbits/sec \(summary\)$"
)


@dataclass
class IperfOutput:
    """Structured view of one iPerf run."""

    interval_mbits: List[float] = field(default_factory=list)
    total_bytes: int = 0
    summary_mbits: Optional[float] = None

    @property
    def throughput_mbits(self) -> float:
        if self.summary_mbits is None:
            raise ParseError("iperf output has no summary line")
        return self.summary_mbits


def parse_iperf_output(text: str) -> IperfOutput:
    """Parse an iPerf log; banner lines are skipped, junk lines raise."""
    output = IperfOutput()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        if line.startswith("---") or line.startswith("Client connecting"):
            continue
        match = _SUMMARY_RE.match(line)
        if match:
            output.summary_mbits = float(match.group("mbits"))
            output.total_bytes = int(match.group("bytes"))
            continue
        match = _INTERVAL_RE.match(line)
        if match:
            output.interval_mbits.append(float(match.group("mbits")))
            continue
        raise ParseError(f"line {number}: unrecognized iperf output: {line!r}")
    return output
