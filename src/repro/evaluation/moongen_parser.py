"""Parser for MoonGen text output and latency histogram CSVs.

"We integrated a parser for MoonGen's output into our plotting scripts.
The MoonGen output, in conjunction with the available metadata, allows
the automated evaluation of experiments."  (Sec. 4.4)

The grammar matches what :func:`repro.loadgen.moongen.format_report`
emits (and is a faithful subset of real MoonGen throughput output):

* per-interval lines::

    [Device: id=0] TX: 0.100000 Mpps, 51.20 Mbit/s (67.20 Mbit/s with framing)

* run-summary lines::

    [Device: id=0] TX: 0.099990 Mpps (total 49995 packets with 3199680 bytes payload)

* an optional latency summary::

    [Latency] min: 0.721 us, avg: 0.812 us, max: 9.313 us, samples: 500
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ParseError

__all__ = [
    "DeviceSummary",
    "LatencySummary",
    "MoonGenOutput",
    "parse_moongen_output",
    "parse_histogram_csv",
]

_INTERVAL_RE = re.compile(
    r"^\[Device: id=(?P<dev>\d+)\] (?P<dir>TX|RX): (?P<mpps>[\d.]+) Mpps, "
    r"(?P<mbit>[\d.]+) Mbit/s \((?P<framed>[\d.]+) Mbit/s with framing\)$"
)
_SUMMARY_RE = re.compile(
    r"^\[Device: id=(?P<dev>\d+)\] (?P<dir>TX|RX): (?P<mpps>[\d.]+) Mpps "
    r"\(total (?P<packets>\d+) packets with (?P<bytes>\d+) bytes payload\)$"
)
_LATENCY_RE = re.compile(
    r"^\[Latency\] min: (?P<min>[\d.]+) us, avg: (?P<avg>[\d.]+) us, "
    r"max: (?P<max>[\d.]+) us, samples: (?P<samples>\d+)$"
)


@dataclass
class DeviceSummary:
    """Run totals for one direction (TX or RX)."""

    device: int
    direction: str
    mpps: float
    packets: int
    payload_bytes: int


@dataclass
class LatencySummary:
    """The latency footer of a run with hardware timestamping."""

    min_us: float
    avg_us: float
    max_us: float
    samples: int


@dataclass
class MoonGenOutput:
    """Structured view of one MoonGen run's output."""

    tx_interval_mpps: List[float] = field(default_factory=list)
    rx_interval_mpps: List[float] = field(default_factory=list)
    tx_summary: Optional[DeviceSummary] = None
    rx_summary: Optional[DeviceSummary] = None
    latency: Optional[LatencySummary] = None

    @property
    def tx_mpps(self) -> float:
        """Overall transmit rate; raises if the run has no TX summary."""
        if self.tx_summary is None:
            raise ParseError("MoonGen output has no TX summary line")
        return self.tx_summary.mpps

    @property
    def rx_mpps(self) -> float:
        """Overall receive rate; raises if the run has no RX summary."""
        if self.rx_summary is None:
            raise ParseError("MoonGen output has no RX summary line")
        return self.rx_summary.mpps

    @property
    def loss_fraction(self) -> float:
        """Fraction of transmitted packets that were not received back."""
        if self.tx_summary is None or self.rx_summary is None:
            raise ParseError("MoonGen output lacks TX/RX summaries")
        if self.tx_summary.packets == 0:
            return 0.0
        return 1.0 - self.rx_summary.packets / self.tx_summary.packets


def parse_moongen_output(text: str) -> MoonGenOutput:
    """Parse a MoonGen log; unknown non-blank lines raise ParseError."""
    output = MoonGenOutput()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        match = _INTERVAL_RE.match(line)
        if match:
            mpps = float(match.group("mpps"))
            if match.group("dir") == "TX":
                output.tx_interval_mpps.append(mpps)
            else:
                output.rx_interval_mpps.append(mpps)
            continue
        match = _SUMMARY_RE.match(line)
        if match:
            summary = DeviceSummary(
                device=int(match.group("dev")),
                direction=match.group("dir"),
                mpps=float(match.group("mpps")),
                packets=int(match.group("packets")),
                payload_bytes=int(match.group("bytes")),
            )
            if summary.direction == "TX":
                output.tx_summary = summary
            else:
                output.rx_summary = summary
            continue
        match = _LATENCY_RE.match(line)
        if match:
            output.latency = LatencySummary(
                min_us=float(match.group("min")),
                avg_us=float(match.group("avg")),
                max_us=float(match.group("max")),
                samples=int(match.group("samples")),
            )
            continue
        raise ParseError(f"line {number}: unrecognized MoonGen output: {line!r}")
    return output


def parse_histogram_csv(text: str) -> Dict[int, int]:
    """Parse a ``latency_ns,count`` histogram CSV into a bucket map."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ParseError("empty histogram CSV")
    if lines[0] != "latency_ns,count":
        raise ParseError(f"unexpected histogram header: {lines[0]!r}")
    buckets: Dict[int, int] = {}
    for number, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != 2:
            raise ParseError(f"line {number}: expected 'latency_ns,count'")
        try:
            bucket, count = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise ParseError(f"line {number}: non-integer field: {line!r}") from exc
        if count < 0:
            raise ParseError(f"line {number}: negative count")
        buckets[bucket] = buckets.get(bucket, 0) + count
    return buckets
