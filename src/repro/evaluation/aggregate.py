"""Filtering, grouping, and statistics over measurement runs.

The evaluation phase "can filter or aggregate specific parameters and
values" based on the per-run metadata.  Besides basic descriptive
statistics this module provides the HDR-style histogram that backs the
latency plots (log-bucketed, constant relative precision) and the
series extraction used by the throughput figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import EvaluationError
from repro.evaluation.loader import RunResult

__all__ = [
    "Stats",
    "describe",
    "percentile",
    "group_runs",
    "series_from_runs",
    "HdrHistogram",
]


@dataclass
class Stats:
    """Descriptive statistics of one sample set."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    median: float
    p95: float
    p99: float


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise EvaluationError("percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise EvaluationError(f"percentile fraction {fraction} outside [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    interpolated = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # Clamp: float rounding must not push the result outside the
    # bracketing samples (ordered[lower] <= result <= ordered[upper]).
    return min(max(interpolated, ordered[lower]), ordered[upper])


def describe(samples: Sequence[float]) -> Stats:
    """Full descriptive statistics for a sample set."""
    if not samples:
        raise EvaluationError("cannot describe an empty sample set")
    count = len(samples)
    mean = sum(samples) / count
    variance = sum((value - mean) ** 2 for value in samples) / count
    return Stats(
        count=count,
        mean=mean,
        stddev=math.sqrt(variance),
        minimum=min(samples),
        maximum=max(samples),
        median=percentile(samples, 0.5),
        p95=percentile(samples, 0.95),
        p99=percentile(samples, 0.99),
    )


def group_runs(
    runs: Iterable[RunResult], key: str
) -> Dict[Any, List[RunResult]]:
    """Group runs by one loop parameter, preserving first-seen order."""
    groups: Dict[Any, List[RunResult]] = {}
    for run in runs:
        groups.setdefault(run.loop.get(key), []).append(run)
    return groups


def series_from_runs(
    runs: Iterable[RunResult],
    x: Callable[[RunResult], float],
    y: Callable[[RunResult], float],
) -> List[Tuple[float, float]]:
    """Extract an (x, y) series from runs, sorted by x.

    Runs where either extractor raises are skipped — a failed run
    without a MoonGen log must not kill the whole evaluation, matching
    the tolerance of the original plotting scripts.
    """
    points: List[Tuple[float, float]] = []
    for run in runs:
        try:
            points.append((float(x(run)), float(y(run))))
        except Exception:  # noqa: BLE001 - tolerate partial results
            continue
    points.sort(key=lambda point: point[0])
    return points


class HdrHistogram:
    """High-dynamic-range histogram with constant relative precision.

    Buckets are spaced logarithmically: each bucket boundary is
    ``(1 + 1/precision)`` times the previous one, giving a bounded
    relative quantization error over many orders of magnitude — the
    structure behind HDR latency plots.
    """

    def __init__(self, precision: int = 32, min_value: float = 1e-9):
        if precision < 1:
            raise EvaluationError("precision must be >= 1")
        if min_value <= 0:
            raise EvaluationError("min_value must be positive")
        self.precision = precision
        self.min_value = min_value
        self._growth = 1.0 + 1.0 / precision
        self._log_growth = math.log(self._growth)
        self._counts: Dict[int, int] = {}
        self.total = 0

    def _bucket_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return int(math.log(value / self.min_value) / self._log_growth) + 1

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """(low, high) value range of a bucket."""
        if index == 0:
            return (0.0, self.min_value)
        low = self.min_value * self._growth ** (index - 1)
        return (low, low * self._growth)

    def record(self, value: float) -> None:
        if value < 0:
            raise EvaluationError(f"cannot record negative value {value}")
        index = self._bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.total += 1

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def value_at_quantile(self, quantile: float) -> float:
        """Upper bound of the bucket containing the given quantile."""
        if not 0.0 < quantile <= 1.0:
            raise EvaluationError(f"quantile {quantile} outside (0, 1]")
        if self.total == 0:
            raise EvaluationError("histogram is empty")
        target = quantile * self.total
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                return self.bucket_bounds(index)[1]
        return self.bucket_bounds(max(self._counts))[1]

    def quantile_curve(
        self, quantiles: Optional[Sequence[float]] = None
    ) -> List[Tuple[float, float]]:
        """(quantile, value) points for an HDR plot.

        The default quantile ladder approaches 1 in the characteristic
        "number of nines" steps of HDR diagrams.
        """
        if quantiles is None:
            quantiles = [
                0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999,
            ]
        return [(q, self.value_at_quantile(q)) for q in quantiles]

    def counts(self) -> Dict[int, int]:
        """Raw bucket counts, keyed by bucket index."""
        return dict(self._counts)

    def merge(self, other: "HdrHistogram") -> None:
        """Accumulate another histogram with identical parameters."""
        if (other.precision, other.min_value) != (self.precision, self.min_value):
            raise EvaluationError("cannot merge histograms with different shapes")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.total += other.total
