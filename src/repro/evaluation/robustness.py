"""Robustness scanning: detecting brittle parameter regions.

Section 2 of the paper cites Zilberman's NDP artifact study: "low
robustness, i.e., small variation from the original input, such as the
investigated packet size, could lead to a significantly different
performance."  The pos answer is full automation — sweeping the
neighbourhood of every published operating point is cheap when the
experiment is a loop variable away.

This module provides that sweep as a first-class evaluation step:
measure a metric over a parameter range, compute the discrete
sensitivity between adjacent points, and flag *cliffs* — places where a
minimal input change moves the result by more than a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.errors import EvaluationError

__all__ = ["Cliff", "scan", "find_cliffs", "robustness_report"]


@dataclass(frozen=True)
class Cliff:
    """A brittle transition between two adjacent parameter values."""

    parameter_before: float
    parameter_after: float
    value_before: float
    value_after: float

    @property
    def relative_change(self) -> float:
        """Relative change of the metric across the transition."""
        reference = max(abs(self.value_before), abs(self.value_after))
        if reference == 0:
            return 0.0
        return (self.value_after - self.value_before) / reference


def scan(
    parameters: Sequence[float],
    measure: Callable[[float], float],
) -> List[Tuple[float, float]]:
    """Measure ``measure(p)`` for every parameter, in order."""
    if not parameters:
        raise EvaluationError("robustness scan needs at least one parameter")
    return [(float(parameter), float(measure(parameter))) for parameter in parameters]


def find_cliffs(
    points: Sequence[Tuple[float, float]],
    tolerance: float = 0.10,
) -> List[Cliff]:
    """Transitions whose relative metric change exceeds ``tolerance``.

    Points must be sorted by parameter; the scan output already is.
    """
    if not 0.0 < tolerance < 1.0:
        raise EvaluationError(f"tolerance must be in (0, 1), got {tolerance}")
    cliffs: List[Cliff] = []
    for (param_a, value_a), (param_b, value_b) in zip(points, points[1:]):
        if param_b <= param_a:
            raise EvaluationError("scan points must be strictly increasing")
        reference = max(abs(value_a), abs(value_b))
        if reference == 0:
            continue
        if abs(value_b - value_a) / reference > tolerance:
            cliffs.append(Cliff(param_a, param_b, value_a, value_b))
    return cliffs


def robustness_report(
    points: Sequence[Tuple[float, float]],
    parameter_name: str = "parameter",
    metric_name: str = "metric",
    tolerance: float = 0.10,
) -> str:
    """Human-readable robustness summary of a scan."""
    cliffs = find_cliffs(points, tolerance=tolerance)
    lines = [f"robustness scan: {metric_name} over {parameter_name} "
             f"({len(points)} points, tolerance {tolerance * 100:.0f}%)"]
    for parameter, value in points:
        marker = ""
        for cliff in cliffs:
            if parameter in (cliff.parameter_before, cliff.parameter_after):
                marker = "   <-- cliff"
                break
        lines.append(f"  {parameter_name}={parameter:g}: "
                     f"{metric_name}={value:g}{marker}")
    if cliffs:
        lines.append(f"{len(cliffs)} brittle transition(s):")
        for cliff in cliffs:
            lines.append(
                f"  {parameter_name} {cliff.parameter_before:g} -> "
                f"{cliff.parameter_after:g}: {metric_name} "
                f"{cliff.value_before:g} -> {cliff.value_after:g} "
                f"({cliff.relative_change * 100:+.1f}%)"
            )
    else:
        lines.append("no brittle transitions found")
    return "\n".join(lines) + "\n"
