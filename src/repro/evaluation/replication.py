"""Replication checking: compare two result trees run by run.

The ACM ladder the paper builds on — repeatability, reproducibility,
replicability — is ultimately a *comparison* between experiment
executions.  This module performs that comparison mechanically: two
result trees (original vs. rerun) are joined on their loop-parameter
instances, each shared run's throughput metrics are diffed against a
tolerance, and the verdict states whether the rerun repeats the
original within it.

Structural differences (missing runs, different loop grids) are
reported separately from metric deviations, because they mean the
*experiment* differed, not just the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


from repro.core.errors import EvaluationError
from repro.evaluation.loader import ExperimentResults
from repro.evaluation.tendencies import median

__all__ = [
    "RunComparison",
    "ReplicationReport",
    "compare_experiments",
    "sample_consistency",
]


def _loop_key(loop: Dict) -> Tuple:
    return tuple(sorted(loop.items()))


def _relative_deviation(original: float, rerun: float) -> float:
    reference = max(abs(original), 1e-12)
    return abs(rerun - original) / reference


@dataclass
class RunComparison:
    """Metric diff of one shared loop instance."""

    loop: Dict
    original_rx_mpps: float
    rerun_rx_mpps: float
    original_tx_mpps: float
    rerun_tx_mpps: float

    @property
    def rx_deviation(self) -> float:
        """Relative RX deviation of the rerun against the original."""
        return _relative_deviation(self.original_rx_mpps, self.rerun_rx_mpps)

    @property
    def tx_deviation(self) -> float:
        """Relative TX deviation of the rerun against the original.

        Symmetric to :attr:`rx_deviation`: a rerun whose load generator
        offered a different rate differs just as much as one whose DuT
        forwarded a different rate, so the verdict gates on both.
        """
        return _relative_deviation(self.original_tx_mpps, self.rerun_tx_mpps)

    @property
    def deviation(self) -> float:
        """Worst relative deviation across both measured directions."""
        return max(self.rx_deviation, self.tx_deviation)


@dataclass
class ReplicationReport:
    """Overall verdict of a replication attempt."""

    tolerance: float
    comparisons: List[RunComparison] = field(default_factory=list)
    only_in_original: List[Dict] = field(default_factory=list)
    only_in_rerun: List[Dict] = field(default_factory=list)

    @property
    def structurally_identical(self) -> bool:
        return not self.only_in_original and not self.only_in_rerun

    @property
    def deviating_runs(self) -> List[RunComparison]:
        return [
            comparison
            for comparison in self.comparisons
            if comparison.deviation > self.tolerance
        ]

    @property
    def repeats(self) -> bool:
        """True when every shared run agrees within the tolerance and
        the loop grids match."""
        return self.structurally_identical and not self.deviating_runs

    def summary(self) -> str:
        lines = [
            f"replication check (tolerance {self.tolerance * 100:.0f}%):",
            f"  shared runs: {len(self.comparisons)}",
            f"  structural differences: "
            f"{len(self.only_in_original) + len(self.only_in_rerun)}",
            f"  deviating runs: {len(self.deviating_runs)}",
        ]
        for comparison in self.deviating_runs:
            lines.append(
                f"    {comparison.loop}: rx {comparison.original_rx_mpps:.4f}"
                f" -> {comparison.rerun_rx_mpps:.4f} Mpps "
                f"({comparison.rx_deviation * 100:.1f}%), "
                f"tx {comparison.original_tx_mpps:.4f}"
                f" -> {comparison.rerun_tx_mpps:.4f} Mpps "
                f"({comparison.tx_deviation * 100:.1f}%)"
            )
        lines.append(f"  verdict: {'REPEATS' if self.repeats else 'DIFFERS'}")
        return "\n".join(lines) + "\n"


def compare_experiments(
    original: ExperimentResults,
    rerun: ExperimentResults,
    tolerance: float = 0.05,
    role: str = "loadgen",
) -> ReplicationReport:
    """Join two result trees on loop instances and diff their metrics."""
    if tolerance <= 0:
        raise EvaluationError(f"tolerance must be positive, got {tolerance}")
    report = ReplicationReport(tolerance=tolerance)
    original_by_loop = {_loop_key(run.loop): run for run in original.runs}
    rerun_by_loop = {_loop_key(run.loop): run for run in rerun.runs}

    for key in sorted(set(original_by_loop) - set(rerun_by_loop)):
        report.only_in_original.append(dict(key))
    for key in sorted(set(rerun_by_loop) - set(original_by_loop)):
        report.only_in_rerun.append(dict(key))

    for key in sorted(set(original_by_loop) & set(rerun_by_loop)):
        run_a = original_by_loop[key]
        run_b = rerun_by_loop[key]
        try:
            moongen_a = run_a.moongen(role)
            moongen_b = run_b.moongen(role)
        except Exception as exc:  # noqa: BLE001 - missing logs are structural
            raise EvaluationError(
                f"run {dict(key)}: cannot parse MoonGen output: {exc}"
            ) from exc
        report.comparisons.append(
            RunComparison(
                loop=dict(key),
                original_rx_mpps=moongen_a.rx_mpps,
                rerun_rx_mpps=moongen_b.rx_mpps,
                original_tx_mpps=moongen_a.tx_mpps,
                rerun_tx_mpps=moongen_b.tx_mpps,
            )
        )
    return report


def sample_consistency(samples: List[float], tolerance: float = 0.05) -> dict:
    """Cross-replication consistency verdict for one measurement cell.

    Where :func:`compare_experiments` joins exactly two trees, a study
    yields N replications of every factorial cell.  The reference value
    is the (robust) median of the samples; the verdict states whether
    every replication agrees with it within the relative tolerance —
    the N-way generalization of the pairwise repeatability check.
    """
    if tolerance <= 0:
        raise EvaluationError(f"tolerance must be positive, got {tolerance}")
    if not samples:
        raise EvaluationError("sample_consistency needs at least one sample")
    values = [float(sample) for sample in samples]
    reference = median(values)
    deviations = [_relative_deviation(reference, value) for value in values]
    max_deviation = max(deviations)
    return {
        "n": len(values),
        "reference": reference,
        "max_deviation": max_deviation,
        "tolerance": tolerance,
        "consistent": max_deviation <= tolerance,
    }
