"""Out-of-the-box experiment plotting.

This is the equivalent of the paper's ``plot_scripts``: point it at a
loaded experiment and it produces throughput figures (and, when the
runs contain hardware-timestamped latency data, latency distributions)
"iterated over the defined loop parameters", exporting each figure to
svg/tex/pdf in a ``figures`` folder.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import EvaluationError
from repro.evaluation.aggregate import series_from_runs
from repro.evaluation.loader import ExperimentResults

from repro.evaluation.moongen_parser import parse_histogram_csv
from repro.evaluation.plots import cdf, export, hdr_plot, histogram, line_plot, violin

__all__ = [
    "throughput_figure",
    "loss_figure",
    "latency_samples_us",
    "plot_experiment",
]


def loss_figure(
    results: ExperimentResults,
    x_var: str = "pkt_rate",
    group_var: str = "pkt_sz",
    role: str = "loadgen",
    title: Optional[str] = None,
):
    """Packet-loss line figure: offered rate against loss percentage.

    The companion view of the throughput figure — the knee where loss
    departs from zero is the drop-free ceiling the case study reports.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for group_value in results.loop_values(group_var):
        runs = results.filter(**{group_var: group_value})
        points = series_from_runs(
            runs,
            x=lambda run: float(run.loop[x_var]) / 1e6,
            y=lambda run: run.moongen(role).loss_fraction * 100.0,
        )
        if points:
            series[f"{group_var}={group_value}"] = points
    if not series:
        raise EvaluationError(
            f"no plottable runs: no MoonGen logs found for role {role!r}"
        )
    return line_plot(
        series,
        title=title or f"{results.name}: packet loss",
        xlabel="offered rate [Mpps]",
        ylabel="loss [%]",
    )


def throughput_figure(
    results: ExperimentResults,
    x_var: str = "pkt_rate",
    group_var: str = "pkt_sz",
    role: str = "loadgen",
    direction: str = "rx",
    title: Optional[str] = None,
):
    """Throughput line figure: x = loop rate, one line per packet size.

    This is exactly the Fig. 3 layout of the paper: offered packet rate
    against achieved receive rate, grouped by frame size.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for group_value in results.loop_values(group_var):
        runs = results.filter(**{group_var: group_value})
        points = series_from_runs(
            runs,
            x=lambda run: float(run.loop[x_var]) / 1e6,
            y=lambda run: (
                run.moongen(role).rx_mpps
                if direction == "rx"
                else run.moongen(role).tx_mpps
            ),
        )
        if points:
            series[f"{group_var}={group_value}"] = points
    if not series:
        raise EvaluationError(
            f"no plottable runs: no MoonGen logs found for role {role!r}"
        )
    return line_plot(
        series,
        title=title or f"{results.name}: forwarding throughput",
        xlabel="offered rate [Mpps]",
        ylabel=f"{direction} rate [Mpps]",
    )


def latency_samples_us(
    results: ExperimentResults,
    role: str = "loadgen",
    histogram_name: str = "histogram.csv",
    **loop_filter,
) -> List[float]:
    """Latency samples (µs) reconstructed from the runs' histogram CSVs.

    Each histogram bucket contributes its midpoint, weighted by count —
    the same reconstruction the original plotting scripts perform on
    MoonGen's ``hist.csv``.
    """
    samples: List[float] = []
    runs = results.filter(**loop_filter) if loop_filter else results.runs
    for run in runs:
        files = run.outputs.get(role, {})
        if histogram_name not in files:
            continue
        for bucket_ns, count in parse_histogram_csv(files[histogram_name]).items():
            midpoint_us = (bucket_ns + 500) / 1000.0
            samples.extend([midpoint_us] * count)
    return samples


def plot_experiment(
    results: ExperimentResults,
    output_dir: Optional[str] = None,
    formats: Sequence[str] = ("svg", "tex", "pdf"),
    x_var: str = "pkt_rate",
    group_var: str = "pkt_sz",
    role: str = "loadgen",
) -> List[str]:
    """Generate every out-of-the-box figure for an experiment.

    Writes into ``<experiment>/figures`` by default and returns the
    list of files created.  Latency figures are only produced when the
    experiment actually collected latency histograms — on vpos, where
    virtio NICs lack hardware timestamping, only throughput figures
    appear, mirroring Appendix A.
    """
    output_dir = output_dir or os.path.join(results.path, "figures")
    written: List[str] = []

    figure = throughput_figure(results, x_var=x_var, group_var=group_var, role=role)
    written.extend(export(figure, os.path.join(output_dir, "throughput"), formats))
    written.extend(
        export(
            loss_figure(results, x_var=x_var, group_var=group_var, role=role),
            os.path.join(output_dir, "loss"),
            formats,
        )
    )

    groups: Dict[str, List[float]] = {}
    for group_value in results.loop_values(group_var):
        samples = latency_samples_us(
            results, role=role, **{group_var: group_value}
        )
        if samples:
            groups[f"{group_var}={group_value}"] = samples
    if groups:
        written.extend(
            export(
                cdf(groups, title=f"{results.name}: latency CDF",
                    xlabel="latency [us]"),
                os.path.join(output_dir, "latency_cdf"),
                formats,
            )
        )
        written.extend(
            export(
                hdr_plot(groups, title=f"{results.name}: latency percentiles",
                         ylabel="latency [us]"),
                os.path.join(output_dir, "latency_hdr"),
                formats,
            )
        )
        written.extend(
            export(
                violin(groups, title=f"{results.name}: latency distribution",
                       ylabel="latency [us]"),
                os.path.join(output_dir, "latency_violin"),
                formats,
            )
        )
        merged = [sample for samples in groups.values() for sample in samples]
        written.extend(
            export(
                histogram(merged, title=f"{results.name}: latency histogram",
                          xlabel="latency [us]"),
                os.path.join(output_dir, "latency_hist"),
                formats,
            )
        )
    return written
