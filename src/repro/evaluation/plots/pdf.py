"""Minimal PDF backend, written from scratch.

The pos plotting scripts export figures "to multiple formats, e.g.,
tex, svg, and pdf".  No PDF library is available offline, so this
module implements the small subset of PDF 1.4 a vector chart needs:
one page, path-painting operators for lines/polygons/rectangles, the
built-in Helvetica fonts for text, and a correct cross-reference
table.  Output validates against strict readers (object offsets are
byte-accurate).

PDF uses a bottom-left origin; the scene uses top-left, so all y
coordinates are flipped during emission.
"""

from __future__ import annotations

import zlib
from typing import List


from repro.core.errors import PlotError
from repro.evaluation.plots.scene import Line, Polygon, Polyline, Rect, Scene, Text

__all__ = ["scene_to_pdf"]


def _color_ops(color: str, stroke: bool) -> str:
    if color in ("none", ""):
        raise PlotError("cannot emit PDF color 'none'")
    value = color.lstrip("#")
    if len(value) != 6:
        raise PlotError(f"unsupported color {color!r}")
    r = int(value[0:2], 16) / 255.0
    g = int(value[2:4], 16) / 255.0
    b = int(value[4:6], 16) / 255.0
    operator = "RG" if stroke else "rg"
    return f"{r:.3f} {g:.3f} {b:.3f} {operator}"


def _dash_op(dash) -> str:
    if not dash:
        return "[] 0 d"
    return "[" + " ".join(f"{value:g}" for value in dash) + "] 0 d"


def _escape_pdf_text(text: str) -> str:
    out = []
    for char in text:
        if char in "()\\":
            out.append("\\" + char)
        elif ord(char) < 32 or ord(char) > 126:
            out.append("?")  # Helvetica WinAnsi subset only
        else:
            out.append(char)
    return "".join(out)


def _content_stream(scene: Scene) -> str:
    height = scene.height

    def fy(y: float) -> float:
        return height - y

    ops: List[str] = []
    for item in scene.items:
        if isinstance(item, Line):
            ops.append("q")
            ops.append(_color_ops(item.stroke, stroke=True))
            ops.append(f"{item.width:.2f} w")
            ops.append(_dash_op(item.dash))
            ops.append(f"{item.x1:.2f} {fy(item.y1):.2f} m {item.x2:.2f} {fy(item.y2):.2f} l S")
            ops.append("Q")
        elif isinstance(item, Polyline):
            if len(item.points) < 2:
                continue
            ops.append("q")
            ops.append(_color_ops(item.stroke, stroke=True))
            ops.append(f"{item.width:.2f} w")
            ops.append(_dash_op(item.dash))
            ops.append("1 j 1 J")  # round joins/caps
            x0, y0 = item.points[0]
            ops.append(f"{x0:.2f} {fy(y0):.2f} m")
            for x, y in item.points[1:]:
                ops.append(f"{x:.2f} {fy(y):.2f} l")
            ops.append("S")
            ops.append("Q")
        elif isinstance(item, Polygon):
            if len(item.points) < 3:
                continue
            ops.append("q")
            ops.append(_color_ops(item.fill, stroke=False))
            paint = "f"
            if item.stroke:
                ops.append(_color_ops(item.stroke, stroke=True))
                ops.append(f"{item.width:.2f} w")
                paint = "B"
            x0, y0 = item.points[0]
            ops.append(f"{x0:.2f} {fy(y0):.2f} m")
            for x, y in item.points[1:]:
                ops.append(f"{x:.2f} {fy(y):.2f} l")
            ops.append(f"h {paint}")
            ops.append("Q")
        elif isinstance(item, Rect):
            ops.append("q")
            paint = None
            if item.fill not in ("none", ""):
                ops.append(_color_ops(item.fill, stroke=False))
                paint = "f"
            if item.stroke:
                ops.append(_color_ops(item.stroke, stroke=True))
                ops.append(f"{item.width:.2f} w")
                paint = "B" if paint else "S"
            if paint is None:
                ops.append("Q")
                continue
            ops.append(
                f"{item.x:.2f} {fy(item.y) - item.h:.2f} {item.w:.2f} {item.h:.2f} re {paint}"
            )
            ops.append("Q")
        elif isinstance(item, Text):
            font = "/F2" if item.bold else "/F1"
            # Approximate Helvetica advance width for anchoring.
            advance = 0.52 * item.size * len(item.text)
            x = item.x
            if item.anchor == "middle":
                x -= advance / 2.0
            elif item.anchor == "end":
                x -= advance
            ops.append("q")
            ops.append(_color_ops(item.color, stroke=False))
            ops.append("BT")
            ops.append(f"{font} {item.size:.1f} Tf")
            if item.rotate:
                import math

                angle = math.radians(item.rotate)
                cos_a, sin_a = math.cos(angle), math.sin(angle)
                ops.append(
                    f"{cos_a:.4f} {sin_a:.4f} {-sin_a:.4f} {cos_a:.4f} "
                    f"{item.x:.2f} {fy(item.y):.2f} Tm"
                )
            else:
                ops.append(f"{x:.2f} {fy(item.y):.2f} Td")
            ops.append(f"({_escape_pdf_text(item.text)}) Tj")
            ops.append("ET")
            ops.append("Q")
        else:
            raise PlotError(f"PDF backend cannot render {type(item).__name__}")
    return "\n".join(ops)


def scene_to_pdf(scene: Scene) -> bytes:
    """Serialize a scene into a single-page PDF document."""
    content = _content_stream(scene).encode("latin-1")
    compressed = zlib.compress(content)

    objects: List[bytes] = []

    def obj(body: str) -> int:
        objects.append(body.encode("latin-1"))
        return len(objects)

    catalog = obj("<< /Type /Catalog /Pages 2 0 R >>")
    pages = obj("<< /Type /Pages /Kids [3 0 R] /Count 1 >>")
    page = obj(
        "<< /Type /Page /Parent 2 0 R "
        f"/MediaBox [0 0 {scene.width:.2f} {scene.height:.2f}] "
        "/Resources << /Font << /F1 5 0 R /F2 6 0 R >> >> "
        "/Contents 4 0 R >>"
    )
    objects.append(
        (
            f"<< /Length {len(compressed)} /Filter /FlateDecode >>\nstream\n"
        ).encode("latin-1")
        + compressed
        + b"\nendstream"
    )
    obj("<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>")
    obj("<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica-Bold >>")

    # Assemble with a byte-accurate xref table.
    out = bytearray()
    out += b"%PDF-1.4\n%\xe2\xe3\xcf\xd3\n"
    offsets: List[int] = []
    for index, body in enumerate(objects, start=1):
        offsets.append(len(out))
        out += f"{index} 0 obj\n".encode("latin-1")
        out += body
        out += b"\nendobj\n"
    xref_offset = len(out)
    out += f"xref\n0 {len(objects) + 1}\n".encode("latin-1")
    out += b"0000000000 65535 f \n"
    for offset in offsets:
        out += f"{offset:010d} 00000 n \n".encode("latin-1")
    out += (
        f"trailer\n<< /Size {len(objects) + 1} /Root {catalog} 0 R >>\n"
        f"startxref\n{xref_offset}\n%%EOF\n"
    ).encode("latin-1")
    return bytes(out)
