"""Figure builders for the five out-of-the-box representations.

"Our plotting scripts can create throughput figures and latency
distributions out-of-the-box using a set of different representations
(line plot, histogram, CDF, HDR, and violin plot)."  (Sec. 4.4)
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import PlotError
from repro.evaluation.aggregate import HdrHistogram
from repro.evaluation.plots.figure import Figure, Series

__all__ = ["line_plot", "histogram", "cdf", "hdr_plot", "violin"]


def line_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    **figure_kwargs,
) -> Figure:
    """Classic x/y line chart, one line per labelled series."""
    figure = Figure(title=title, xlabel=xlabel, ylabel=ylabel, **figure_kwargs)
    dashes = [None, (5, 3), (2, 2), (7, 2, 2, 2)]
    for index, (label, points) in enumerate(series.items()):
        figure.add(
            Series(
                label=label,
                points=[(float(x), float(y)) for x, y in points],
                kind="line",
                dash=dashes[index % len(dashes)],
            )
        )
    return figure


def histogram(
    samples: Sequence[float],
    bins: int = 30,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "count",
    density: bool = False,
    **figure_kwargs,
) -> Figure:
    """Equal-width histogram of one sample set."""
    if not samples:
        raise PlotError("histogram of an empty sample set")
    if bins < 1:
        raise PlotError(f"histogram needs at least one bin, got {bins}")
    low, high = min(samples), max(samples)
    if math.isclose(low, high):
        high = low + (abs(low) if low else 1.0)
    width = (high - low) / bins
    counts = [0] * bins
    for value in samples:
        index = min(int((value - low) / width), bins - 1)
        counts[index] += 1
    scale = 1.0 / (len(samples) * width) if density else 1.0
    points = [
        (low + (index + 0.5) * width, count * scale)
        for index, count in enumerate(counts)
    ]
    figure = Figure(
        title=title,
        xlabel=xlabel,
        ylabel="density" if density else ylabel,
        legend=False,
        **figure_kwargs,
    )
    figure.add(Series(label="", points=points, kind="bars", bar_width=width))
    return figure


def cdf(
    groups: Dict[str, Sequence[float]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "CDF",
    **figure_kwargs,
) -> Figure:
    """Empirical cumulative distribution, one step curve per group."""
    figure = Figure(
        title=title, xlabel=xlabel, ylabel=ylabel,
        ylim=(0.0, 1.02), **figure_kwargs,
    )
    for label, samples in groups.items():
        if not samples:
            raise PlotError(f"CDF group {label!r} is empty")
        ordered = sorted(samples)
        count = len(ordered)
        points = [(ordered[0], 0.0)]
        points.extend(
            (value, (index + 1) / count) for index, value in enumerate(ordered)
        )
        figure.add(Series(label=label, points=points, kind="step"))
    return figure


def hdr_plot(
    groups: Dict[str, Sequence[float]],
    title: str = "",
    ylabel: str = "latency",
    precision: int = 64,
    quantiles: Optional[Sequence[float]] = None,
    **figure_kwargs,
) -> Figure:
    """HDR-style percentile plot: x is log10(1/(1-q)) ("number of nines").

    The characteristic HDR x axis compresses the distribution head and
    stretches the tail, making the p99/p999 behaviour visible.
    """
    if quantiles is None:
        quantiles = [0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999]
    ticks = [
        (math.log10(1.0 / (1.0 - q)), f"{q * 100:g}%")
        for q in quantiles
        if q < 1.0
    ]
    figure = Figure(
        title=title,
        xlabel="percentile",
        ylabel=ylabel,
        x_ticks=ticks,
        grid=True,
        **figure_kwargs,
    )
    for label, samples in groups.items():
        if not samples:
            raise PlotError(f"HDR group {label!r} is empty")
        hist = HdrHistogram(precision=precision, min_value=max(min(samples), 1e-12))
        hist.record_many(samples)
        points = [
            (math.log10(1.0 / (1.0 - q)), hist.value_at_quantile(q))
            for q in quantiles
            if q < 1.0
        ]
        figure.add(Series(label=label, points=points, kind="line"))
    return figure


def _gaussian_kde(samples: Sequence[float], positions: Sequence[float]) -> List[float]:
    """Gaussian kernel density estimate with Silverman's bandwidth."""
    count = len(samples)
    mean = sum(samples) / count
    stddev = math.sqrt(sum((value - mean) ** 2 for value in samples) / count)
    bandwidth = 1.06 * stddev * count ** (-1 / 5) if stddev > 0 else 1.0
    bandwidth = max(bandwidth, 1e-12)
    norm = 1.0 / (count * bandwidth * math.sqrt(2 * math.pi))
    densities = []
    for position in positions:
        total = 0.0
        for value in samples:
            z = (position - value) / bandwidth
            total += math.exp(-0.5 * z * z)
        densities.append(total * norm)
    return densities


def violin(
    groups: Dict[str, Sequence[float]],
    title: str = "",
    ylabel: str = "",
    resolution: int = 40,
    **figure_kwargs,
) -> Figure:
    """Violin plot: a mirrored kernel-density silhouette per group."""
    if not groups:
        raise PlotError("violin plot needs at least one group")
    labels = list(groups)
    ticks = [(float(index), label) for index, label in enumerate(labels)]
    figure = Figure(
        title=title,
        xlabel="",
        ylabel=ylabel,
        x_ticks=ticks,
        xlim=(-0.7, len(labels) - 0.3),
        legend=False,
        **figure_kwargs,
    )
    half_width = 0.38
    for index, label in enumerate(labels):
        samples = list(groups[label])
        if not samples:
            raise PlotError(f"violin group {label!r} is empty")
        low, high = min(samples), max(samples)
        if math.isclose(low, high):
            high = low + (abs(low) if low else 1.0)
        positions = [
            low + (high - low) * step / (resolution - 1) for step in range(resolution)
        ]
        densities = _gaussian_kde(samples, positions)
        peak = max(densities) or 1.0
        center = float(index)
        right = [
            (center + half_width * density / peak, position)
            for position, density in zip(positions, densities)
        ]
        left = [
            (center - half_width * density / peak, position)
            for position, density in reversed(list(zip(positions, densities)))
        ]
        figure.add(Series(label=label, points=right + left, kind="shape"))
        # Median marker.
        ordered = sorted(samples)
        median = ordered[len(ordered) // 2]
        figure.add(
            Series(
                label="",
                points=[(center - 0.12, median), (center + 0.12, median)],
                kind="line",
                color="#000000",
                markers=False,
            )
        )
    return figure
