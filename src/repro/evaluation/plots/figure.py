"""Figure model and layout engine.

A :class:`Figure` is a backend-independent description of a chart: the
axes, the data series, and how each series should be drawn.  The
layout engine maps data coordinates onto the canvas, places axes,
ticks, grid lines and the legend, and emits a
:class:`~repro.evaluation.plots.scene.Scene` that the SVG/PDF backends
render verbatim.

Supported series kinds cover the representations the pos plotting
scripts offer out of the box: ``line`` (with markers), ``step`` (CDFs),
``bars`` (histograms), and ``shape`` (violin bodies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import PlotError
from repro.evaluation.plots.scene import (
    PALETTE,
    Line,
    Polygon,
    Polyline,
    Rect,
    Scene,
    Text,
)

__all__ = ["Series", "Figure", "nice_ticks", "log_ticks", "build_scene"]

_MARGIN_LEFT = 62.0
_MARGIN_RIGHT = 18.0
_MARGIN_TOP = 34.0
_MARGIN_BOTTOM = 48.0


@dataclass
class Series:
    """One data series of a figure."""

    label: str
    points: List[Tuple[float, float]]
    kind: str = "line"  # line | step | bars | shape
    color: Optional[str] = None
    dash: Optional[Sequence[float]] = None
    #: bar width in data units (bars), or shape polygon closed flag.
    bar_width: Optional[float] = None
    markers: bool = True


@dataclass
class Figure:
    """Backend-independent chart description."""

    title: str = ""
    xlabel: str = ""
    ylabel: str = ""
    series: List[Series] = field(default_factory=list)
    width: float = 460.0
    height: float = 300.0
    x_log: bool = False
    y_log: bool = False
    xlim: Optional[Tuple[float, float]] = None
    ylim: Optional[Tuple[float, float]] = None
    #: Explicit ticks [(position, label)]; None derives them automatically.
    x_ticks: Optional[List[Tuple[float, str]]] = None
    y_ticks: Optional[List[Tuple[float, str]]] = None
    legend: bool = True
    grid: bool = True

    def add(self, series: Series) -> Series:
        self.series.append(series)
        return series


def nice_ticks(low: float, high: float, target: int = 6) -> List[float]:
    """Nice-number tick positions covering [low, high].

    Classic Heckbert algorithm: steps are 1, 2 or 5 times a power of
    ten.
    """
    if high < low:
        low, high = high, low
    if math.isclose(high, low):
        high = low + (abs(low) if low else 1.0)
    span = high - low
    raw_step = span / max(target - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    residual = raw_step / magnitude
    if residual < 1.5:
        step = magnitude
    elif residual < 3.0:
        step = 2.0 * magnitude
    elif residual < 7.0:
        step = 5.0 * magnitude
    else:
        step = 10.0 * magnitude
    first = math.floor(low / step) * step
    ticks = []
    value = first
    while value <= high + step * 1e-9:
        if value >= low - step * 1e-9:
            ticks.append(round(value, 12))
        value += step
    return ticks


def log_ticks(low: float, high: float) -> List[float]:
    """Decade tick positions for a log axis."""
    if low <= 0:
        raise PlotError(f"log axis requires positive range, got low={low}")
    start = math.floor(math.log10(low))
    stop = math.ceil(math.log10(high))
    return [10.0 ** exponent for exponent in range(int(start), int(stop) + 1)]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 1e-3:
        return f"{value:.0e}".replace("e+0", "e").replace("e-0", "e-")
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


class _AxisMapper:
    """Maps one data axis onto a pixel interval, linear or log."""

    def __init__(self, low: float, high: float, pix_a: float, pix_b: float, log: bool):
        if log and low <= 0:
            raise PlotError("log axis with non-positive limit")
        if math.isclose(high, low):
            pad = abs(low) * 0.5 if low else 0.5
            low, high = low - pad, high + pad
            if log:
                low = max(low, high / 10.0)
        self.low = low
        self.high = high
        self.pix_a = pix_a
        self.pix_b = pix_b
        self.log = log

    def __call__(self, value: float) -> float:
        if self.log:
            if value <= 0:
                raise PlotError(f"cannot place non-positive value {value} on log axis")
            fraction = (math.log10(value) - math.log10(self.low)) / (
                math.log10(self.high) - math.log10(self.low)
            )
        else:
            fraction = (value - self.low) / (self.high - self.low)
        return self.pix_a + fraction * (self.pix_b - self.pix_a)


def _data_limits(figure: Figure) -> Tuple[float, float, float, float]:
    xs: List[float] = []
    ys: List[float] = []
    for series in figure.series:
        for x, y in series.points:
            xs.append(x)
            ys.append(y)
        if series.kind == "bars" and series.bar_width:
            half = series.bar_width / 2.0
            xs.extend([x - half for x, __ in series.points])
            xs.extend([x + half for x, __ in series.points])
    if not xs:
        raise PlotError(f"figure {figure.title!r} has no data points")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if figure.xlim:
        x_low, x_high = figure.xlim
    if figure.ylim:
        y_low, y_high = figure.ylim
    else:
        if not figure.y_log:
            # Start bar/line charts at zero when the data allows it.
            if y_low > 0 and y_low / max(y_high, 1e-30) < 0.5:
                y_low = 0.0
            pad = (y_high - y_low) * 0.06 or 1.0
            y_high += pad
    return x_low, x_high, y_low, y_high


def _marker(x: float, y: float, color: str, index: int) -> List[object]:
    """Small per-series marker shapes: square, diamond, triangle…"""
    size = 3.2
    shape = index % 3
    if shape == 0:  # square
        return [Rect(x - size / 1.4, y - size / 1.4, size * 1.4, size * 1.4,
                     fill=color, stroke=None)]
    if shape == 1:  # diamond
        return [Polygon(
            [(x, y - size * 1.2), (x + size * 1.2, y), (x, y + size * 1.2),
             (x - size * 1.2, y)], fill=color, stroke=None)]
    return [Polygon(  # triangle
        [(x, y - size * 1.2), (x + size * 1.2, y + size), (x - size * 1.2, y + size)],
        fill=color, stroke=None)]


def build_scene(figure: Figure) -> Scene:
    """Lay the figure out into canvas-space primitives."""
    if not figure.series:
        raise PlotError(f"figure {figure.title!r} has no series")
    scene = Scene(width=figure.width, height=figure.height)
    plot_left = _MARGIN_LEFT
    plot_right = figure.width - _MARGIN_RIGHT
    plot_top = _MARGIN_TOP
    plot_bottom = figure.height - _MARGIN_BOTTOM

    x_low, x_high, y_low, y_high = _data_limits(figure)

    # Tick positions (may widen the limits so ticks sit on the frame).
    if figure.x_ticks is not None:
        x_tick_list = figure.x_ticks
    elif figure.x_log:
        x_tick_list = [(t, _format_tick(t)) for t in log_ticks(x_low, x_high)]
    else:
        x_tick_list = [(t, _format_tick(t)) for t in nice_ticks(x_low, x_high)]
    if figure.y_ticks is not None:
        y_tick_list = figure.y_ticks
    elif figure.y_log:
        y_tick_list = [(t, _format_tick(t)) for t in log_ticks(max(y_low, 1e-12), y_high)]
    else:
        y_tick_list = [(t, _format_tick(t)) for t in nice_ticks(y_low, y_high)]
    if figure.xlim is None and x_tick_list:
        x_low = min(x_low, x_tick_list[0][0])
        x_high = max(x_high, x_tick_list[-1][0])
    if figure.ylim is None and y_tick_list:
        y_low = min(y_low, y_tick_list[0][0]) if not figure.y_log else y_low
        y_high = max(y_high, y_tick_list[-1][0])

    map_x = _AxisMapper(x_low, x_high, plot_left, plot_right, figure.x_log)
    map_y = _AxisMapper(y_low, y_high, plot_bottom, plot_top, figure.y_log)

    # Grid + ticks.
    for position, label in x_tick_list:
        if position < x_low - 1e-12 or position > x_high + 1e-12:
            continue
        x = map_x(position)
        if figure.grid:
            scene.add(Line(x, plot_top, x, plot_bottom, stroke="#dddddd", width=0.6))
        scene.add(Line(x, plot_bottom, x, plot_bottom + 4, width=0.9))
        scene.add(Text(x, plot_bottom + 16, label, size=10, anchor="middle"))
    for position, label in y_tick_list:
        if position < y_low - 1e-12 or position > y_high + 1e-12:
            continue
        y = map_y(position)
        if figure.grid:
            scene.add(Line(plot_left, y, plot_right, y, stroke="#dddddd", width=0.6))
        scene.add(Line(plot_left - 4, y, plot_left, y, width=0.9))
        scene.add(Text(plot_left - 7, y + 3.5, label, size=10, anchor="end"))

    # Series.
    for index, series in enumerate(figure.series):
        color = series.color or PALETTE[index % len(PALETTE)]
        if not series.points:
            raise PlotError(
                f"series {series.label!r} of figure {figure.title!r} is empty"
            )
        if series.kind == "line":
            pts = [(map_x(x), map_y(y)) for x, y in series.points]
            scene.add(Polyline(pts, stroke=color, dash=series.dash))
            if series.markers and len(pts) <= 80:
                for x, y in pts:
                    scene.extend(_marker(x, y, color, index))
        elif series.kind == "step":
            pts: List[Tuple[float, float]] = []
            previous_y: Optional[float] = None
            for x, y in series.points:
                cx, cy = map_x(x), map_y(y)
                if previous_y is not None:
                    pts.append((cx, previous_y))
                pts.append((cx, cy))
                previous_y = cy
            scene.add(Polyline(pts, stroke=color, dash=series.dash))
        elif series.kind == "bars":
            width = series.bar_width
            if width is None:
                raise PlotError(f"bar series {series.label!r} needs bar_width")
            base_y = map_y(max(y_low, 0.0) if not figure.y_log else y_low)
            for x, y in series.points:
                left = map_x(x - width / 2.0)
                right = map_x(x + width / 2.0)
                top = map_y(y)
                scene.add(Rect(left, top, right - left, base_y - top,
                               fill=color, stroke="#333333", opacity=0.85))
        elif series.kind == "shape":
            pts = [(map_x(x), map_y(y)) for x, y in series.points]
            scene.add(Polygon(pts, fill=color, stroke="#333333", opacity=0.65))
        else:
            raise PlotError(f"unknown series kind {series.kind!r}")

    # Frame on top of data.
    scene.add(Rect(plot_left, plot_top, plot_right - plot_left,
                   plot_bottom - plot_top, fill="none", stroke="#000000", width=1.2))

    # Labels & title.
    if figure.title:
        scene.add(Text(figure.width / 2, 18, figure.title, size=13,
                       anchor="middle", bold=True))
    if figure.xlabel:
        scene.add(Text((plot_left + plot_right) / 2, figure.height - 12,
                       figure.xlabel, size=11, anchor="middle"))
    if figure.ylabel:
        scene.add(Text(14, (plot_top + plot_bottom) / 2, figure.ylabel,
                       size=11, anchor="middle", rotate=-90))

    # Legend (top-left inside the frame).
    visible = [s for s in figure.series if s.label and s.kind != "shape"]
    if figure.legend and visible:
        legend_x = plot_left + 10
        legend_y = plot_top + 12
        for index, series in enumerate(figure.series):
            if not series.label or series.kind == "shape":
                continue
            color = series.color or PALETTE[index % len(PALETTE)]
            scene.add(Line(legend_x, legend_y - 3, legend_x + 18, legend_y - 3,
                           stroke=color, width=2.0, dash=series.dash))
            scene.add(Text(legend_x + 24, legend_y, series.label, size=10))
            legend_y += 15
    return scene
