"""Plotting library: figure model, chart builders, and exporters.

Build a figure with one of the chart builders, then :func:`export` it
to any combination of svg, tex, and pdf::

    from repro.evaluation.plots import line_plot, export

    fig = line_plot({"64B": points}, xlabel="offered rate", ylabel="Mpps")
    export(fig, "figures/throughput", formats=("svg", "tex", "pdf"))
"""

from __future__ import annotations

import os
from typing import Iterable, List

from repro.core.errors import PlotError
from repro.evaluation.plots.charts import cdf, hdr_plot, histogram, line_plot, violin
from repro.evaluation.plots.figure import Figure, Series, build_scene, nice_ticks
from repro.evaluation.plots.pdf import scene_to_pdf
from repro.evaluation.plots.scene import PALETTE, Scene
from repro.evaluation.plots.svg import scene_to_svg
from repro.evaluation.plots.tex import figure_to_tex

__all__ = [
    "Figure",
    "Series",
    "Scene",
    "PALETTE",
    "build_scene",
    "nice_ticks",
    "line_plot",
    "histogram",
    "cdf",
    "hdr_plot",
    "violin",
    "scene_to_svg",
    "scene_to_pdf",
    "figure_to_tex",
    "export",
]

_FORMATS = ("svg", "tex", "pdf")


def export(
    figure: Figure,
    basepath: str,
    formats: Iterable[str] = _FORMATS,
) -> List[str]:
    """Write the figure as ``basepath.<fmt>`` for each requested format.

    Returns the list of paths written.  Unknown formats raise before
    anything is written.
    """
    wanted = list(formats)
    unknown = [fmt for fmt in wanted if fmt not in _FORMATS]
    if unknown:
        raise PlotError(
            f"unknown export formats: {', '.join(unknown)} "
            f"(supported: {', '.join(_FORMATS)})"
        )
    directory = os.path.dirname(basepath)
    if directory:
        os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    scene = None
    if "svg" in wanted or "pdf" in wanted:
        scene = build_scene(figure)
    if "svg" in wanted:
        path = basepath + ".svg"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(scene_to_svg(scene))
        written.append(path)
    if "tex" in wanted:
        path = basepath + ".tex"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(figure_to_tex(figure))
        written.append(path)
    if "pdf" in wanted:
        path = basepath + ".pdf"
        with open(path, "wb") as handle:
            handle.write(scene_to_pdf(scene))
        written.append(path)
    return written
