"""SVG backend: renders a laid-out scene to an SVG document."""

from __future__ import annotations

from typing import List

from repro.core.errors import PlotError
from repro.evaluation.plots.scene import Line, Polygon, Polyline, Rect, Scene, Text

__all__ = ["scene_to_svg"]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _dash_attr(dash) -> str:
    if not dash:
        return ""
    return f' stroke-dasharray="{" ".join(f"{value:g}" for value in dash)}"'


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


def scene_to_svg(scene: Scene) -> str:
    """Serialize a scene as a standalone SVG document."""
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(scene.width)}" '
        f'height="{_fmt(scene.height)}" '
        f'viewBox="0 0 {_fmt(scene.width)} {_fmt(scene.height)}">',
        '<rect width="100%" height="100%" fill="#ffffff"/>',
    ]
    for item in scene.items:
        if isinstance(item, Line):
            parts.append(
                f'<line x1="{_fmt(item.x1)}" y1="{_fmt(item.y1)}" '
                f'x2="{_fmt(item.x2)}" y2="{_fmt(item.y2)}" '
                f'stroke="{item.stroke}" stroke-width="{_fmt(item.width)}"'
                f"{_dash_attr(item.dash)}/>"
            )
        elif isinstance(item, Polyline):
            points = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in item.points)
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{item.stroke}" stroke-width="{_fmt(item.width)}"'
                f"{_dash_attr(item.dash)}/>"
            )
        elif isinstance(item, Polygon):
            points = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in item.points)
            stroke = (
                f'stroke="{item.stroke}" stroke-width="{_fmt(item.width)}"'
                if item.stroke
                else 'stroke="none"'
            )
            parts.append(
                f'<polygon points="{points}" fill="{item.fill}" {stroke} '
                f'fill-opacity="{item.opacity:g}"/>'
            )
        elif isinstance(item, Rect):
            stroke = (
                f'stroke="{item.stroke}" stroke-width="{_fmt(item.width)}"'
                if item.stroke
                else 'stroke="none"'
            )
            parts.append(
                f'<rect x="{_fmt(item.x)}" y="{_fmt(item.y)}" '
                f'width="{_fmt(item.w)}" height="{_fmt(item.h)}" '
                f'fill="{item.fill}" {stroke} fill-opacity="{item.opacity:g}"/>'
            )
        elif isinstance(item, Text):
            anchor = {"start": "start", "middle": "middle", "end": "end"}[item.anchor]
            transform = (
                f' transform="rotate({item.rotate:g} {_fmt(item.x)} {_fmt(item.y)})"'
                if item.rotate
                else ""
            )
            weight = ' font-weight="bold"' if item.bold else ""
            parts.append(
                f'<text x="{_fmt(item.x)}" y="{_fmt(item.y)}" '
                f'font-family="Helvetica, Arial, sans-serif" '
                f'font-size="{item.size:g}" fill="{item.color}" '
                f'text-anchor="{anchor}"{weight}{transform}>'
                f"{_escape(item.text)}</text>"
            )
        else:
            raise PlotError(f"SVG backend cannot render {type(item).__name__}")
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
