"""Drawing primitives shared by the SVG and PDF backends.

A figure is first laid out into a :class:`Scene` — a flat list of
primitives in canvas coordinates (origin top-left, y growing downward,
units are points) — and each backend renders the same scene.  This
keeps the exporters trivially consistent: what the SVG shows is what
the PDF shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Line", "Polyline", "Polygon", "Rect", "Text", "Scene", "PALETTE"]

#: Default categorical palette (colour-blind friendly).
PALETTE = [
    "#1f77b4",  # blue
    "#d62728",  # red
    "#2ca02c",  # green
    "#ff7f0e",  # orange
    "#9467bd",  # purple
    "#8c564b",  # brown
]


@dataclass
class Line:
    x1: float
    y1: float
    x2: float
    y2: float
    stroke: str = "#000000"
    width: float = 1.0
    dash: Optional[Sequence[float]] = None


@dataclass
class Polyline:
    points: List[Tuple[float, float]]
    stroke: str = "#000000"
    width: float = 1.5
    dash: Optional[Sequence[float]] = None


@dataclass
class Polygon:
    points: List[Tuple[float, float]]
    fill: str = "#cccccc"
    stroke: Optional[str] = "#000000"
    width: float = 0.75
    opacity: float = 1.0


@dataclass
class Rect:
    x: float
    y: float
    w: float
    h: float
    fill: str = "#cccccc"
    stroke: Optional[str] = "#000000"
    width: float = 0.75
    opacity: float = 1.0


@dataclass
class Text:
    x: float
    y: float
    text: str
    size: float = 11.0
    anchor: str = "start"  # start | middle | end
    rotate: float = 0.0
    color: str = "#000000"
    bold: bool = False


@dataclass
class Scene:
    """A sized canvas plus its primitives, in paint order."""

    width: float
    height: float
    items: List[object] = field(default_factory=list)

    def add(self, item: object) -> None:
        self.items.append(item)

    def extend(self, items: Sequence[object]) -> None:
        self.items.extend(items)
